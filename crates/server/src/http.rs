//! Minimal HTTP/1.1 request/response handling over `std::net`.
//!
//! Scope: exactly what the questpro service needs — request line,
//! headers, `Content-Length` bodies, keep-alive — with hard limits on
//! header and body sizes so a hostile peer cannot balloon memory. No
//! chunked transfer encoding (requests carrying it are rejected with
//! `411 Length Required` semantics folded into [`ReadError::BadRequest`]),
//! no TLS, no HTTP/2: the server sits behind a user's loopback or an
//! ingress proxy, per DESIGN.md.

use std::io::{BufRead, Read, Write};

/// Cap on the request line plus all headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw query string (no leading `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Ask the peer to close the connection after this response.
    pub close: bool,
    /// Trace ID of the request that produced this response, echoed as
    /// an `X-Questpro-Trace-Id` header when set.
    pub trace_id: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            close: false,
            trace_id: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            close: false,
            trace_id: None,
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body = questpro_wire::Json::obj([("error", questpro_wire::Json::str(message))]);
        Response::json(status, body.to_text())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed before a request started — the normal end of a
    /// keep-alive connection.
    Closed,
    /// The read timeout fired before a request started: an idle
    /// keep-alive connection reclaimed by the server (counted in
    /// `/metrics` as `questpro_http_keepalive_timeouts_total`).
    IdleTimeout,
    /// The request was malformed mid-stream; no response is possible.
    Disconnected(std::io::Error),
    /// Syntactically invalid request → respond `400`.
    BadRequest(String),
    /// Headers exceeded [`MAX_HEAD_BYTES`] → respond `431`.
    HeadTooLarge,
    /// Body exceeded the configured cap → respond `413`.
    BodyTooLarge,
}

/// Incremental parse of one request from an in-memory byte buffer —
/// the event-loop counterpart of [`read_request`].
///
/// Returns `Ok(None)` while the buffer holds only a prefix of a
/// request (the caller keeps accumulating bytes), and
/// `Ok(Some((request, consumed)))` once a full request is present;
/// `consumed` is how many leading bytes the caller must drop. Calling
/// again with more bytes appended is always safe: the parse is a pure
/// function of the buffer prefix, so the result is independent of how
/// the bytes were chunked on the wire (the fuzzer asserts this).
///
/// Framing and limits match [`read_request`] exactly — same request
/// line / header / `Content-Length` rules, same [`MAX_HEAD_BYTES`] cap,
/// same `max_body` cap — with one structural difference: errors about
/// the head (malformed line, bad `Content-Length`) are reported only
/// once the head terminator has arrived, because until then the bytes
/// are still a prefix. A head that never terminates within
/// [`MAX_HEAD_BYTES`] is [`ReadError::HeadTooLarge`].
///
/// # Errors
/// [`ReadError::BadRequest`], [`ReadError::HeadTooLarge`], or
/// [`ReadError::BodyTooLarge`]; never `Closed`/`IdleTimeout`/
/// `Disconnected` (those are connection-level outcomes the event loop
/// derives from socket reads, not from bytes).
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<Option<(Request, usize)>, ReadError> {
    // Find the head terminator: an empty line, i.e. `\n` followed by an
    // optionally-CR-prefixed `\n` (accepts CRLFCRLF, LFLF, and mixes,
    // like the line-oriented reader).
    let mut head_end = None;
    for (i, pair) in buf.windows(2).enumerate() {
        if pair == b"\n\n" {
            head_end = Some((i + 1, i + 2)); // (head len incl. first \n, body start)
            break;
        }
        if pair == b"\n\r" && buf.get(i + 2) == Some(&b'\n') {
            head_end = Some((i + 1, i + 3));
            break;
        }
        if i + 2 > MAX_HEAD_BYTES {
            return Err(ReadError::HeadTooLarge);
        }
    }
    let Some((head_len, body_start)) = head_end else {
        // `windows(2)` sees up to buf.len()-1 positions; re-check the
        // cap against the whole unterminated prefix.
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(ReadError::HeadTooLarge);
    }
    let head = String::from_utf8_lossy(&buf[..head_len]);
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    if request_line.is_empty() {
        // A bare leading blank line is not a request; reject rather
        // than resynchronize (the blocking reader treats the same shape
        // as a clean close, but an event-loop peer that sent bytes at
        // all is malformed, not closing).
        return Err(ReadError::BadRequest("malformed request line".into()));
    }
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ReadError::BadRequest("malformed request line".into())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest("unsupported HTTP version".into()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminator itself
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest("malformed header".into()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::BadRequest(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }
    let len = content_length(&req)?;
    if len > max_body {
        return Err(ReadError::BodyTooLarge);
    }
    let available = buf.len() - body_start;
    if available < len {
        return Ok(None);
    }
    if len > 0 {
        req.body = buf[body_start..body_start + len].to_vec();
    }
    Ok(Some((req, body_start + len)))
}

/// Serializes `resp` into owned bytes (the event loop's write buffer).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(resp.body.len() + 128);
    // Writing into a Vec cannot fail.
    let _ = write_response(&mut out, resp);
    out
}

/// Reads one request. `max_body` bounds the accepted `Content-Length`.
///
/// # Errors
/// See [`ReadError`]; `Closed` is the clean keep-alive end.
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let line = read_line(r, &mut head_bytes)?;
    if line.is_empty() {
        return Err(ReadError::Closed);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ReadError::BadRequest("malformed request line".into())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest("unsupported HTTP version".into()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest("malformed header".into()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::BadRequest(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }
    let len = content_length(&req)?;
    if len > max_body {
        return Err(ReadError::BodyTooLarge);
    }
    if len > 0 {
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).map_err(ReadError::Disconnected)?;
        req.body = body;
    }
    Ok(req)
}

/// Resolves the request's body length from its `Content-Length`
/// header(s), treating every ambiguous framing as a hard `400`.
///
/// HTTP request smuggling lives in the gaps of lenient length parsing,
/// so each hostile shape is rejected by name rather than relying on
/// whatever `str::parse` happens to accept:
///
/// - duplicate headers with *conflicting* values (the classic smuggling
///   vector; identical repeats are allowed per RFC 9110 §8.6),
/// - values that are not pure ASCII digits — `+4`, `-4`, `4 4`, `0x10`,
///   and the empty string all fail here (`str::parse::<usize>` would
///   happily accept a leading `+`),
/// - values that overflow `u64`/`usize`.
fn content_length(req: &Request) -> Result<usize, ReadError> {
    let mut values = req
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str());
    let Some(first) = values.next() else {
        return Ok(0);
    };
    if values.any(|v| v != first) {
        return Err(ReadError::BadRequest(
            "conflicting duplicate Content-Length headers".into(),
        ));
    }
    if first.is_empty() || !first.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ReadError::BadRequest(format!(
            "Content-Length {first:?} is not a non-negative decimal integer"
        )));
    }
    let len: u64 = first.parse().map_err(|_| {
        ReadError::BadRequest(format!(
            "Content-Length {first:?} overflows the length type"
        ))
    })?;
    usize::try_from(len).map_err(|_| {
        ReadError::BadRequest(format!(
            "Content-Length {first:?} overflows the length type"
        ))
    })
}

/// Reads one CRLF/LF-terminated line as UTF-8 (lossy), enforcing the
/// head-size cap across calls via `budget`.
fn read_line(r: &mut impl BufRead, consumed: &mut usize) -> Result<String, ReadError> {
    let mut buf = Vec::new();
    let remaining = MAX_HEAD_BYTES.saturating_sub(*consumed);
    let n = r
        .take(remaining as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(|e| {
            if *consumed != 0 {
                ReadError::Disconnected(e)
            } else if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                // The socket read timeout fired while waiting for the
                // next request: an idle keep-alive connection.
                ReadError::IdleTimeout
            } else {
                // Resets before the first byte are the normal end of a
                // keep-alive connection.
                ReadError::Closed
            }
        })?;
    *consumed += n;
    if *consumed > MAX_HEAD_BYTES {
        return Err(ReadError::HeadTooLarge);
    }
    while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Serializes `resp` to the wire.
///
/// # Errors
/// Propagates the underlying write error (the connection just drops).
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    };
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len(),
        if resp.close { "close" } else { "keep-alive" },
    )?;
    if let Some(id) = resp.trace_id {
        write!(w, "X-Questpro-Trace-Id: {id}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(text: &str, max_body: usize) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(text.as_bytes()), max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = read(
            "POST /sessions?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("a"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
    }

    #[test]
    fn empty_stream_is_a_clean_close() {
        assert!(matches!(read("", 1024), Err(ReadError::Closed)));
    }

    #[test]
    fn first_byte_timeout_is_idle_not_closed() {
        /// A reader whose every read fails like an expired SO_RCVTIMEO.
        struct TimesOut;
        impl std::io::Read for TimesOut {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::ErrorKind::WouldBlock.into())
            }
        }
        let r = read_request(&mut BufReader::new(TimesOut), 1024);
        assert!(matches!(r, Err(ReadError::IdleTimeout)));
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        let r = read("POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 16);
        assert!(matches!(r, Err(ReadError::BodyTooLarge)));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut text = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            text.push_str(&format!("X-Pad-{i}: aaaaaaaaaaaaaaaa\r\n"));
        }
        text.push_str("\r\n");
        assert!(matches!(read(&text, 1024), Err(ReadError::HeadTooLarge)));
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in ["GET\r\n\r\n", "GET /\r\n\r\n", "GET / SPDY/9 X\r\n\r\n"] {
            assert!(
                matches!(read(bad, 1024), Err(ReadError::BadRequest(_))),
                "{bad:?} must be a 400"
            );
        }
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_400() {
        let r = read(
            "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!",
            1024,
        );
        match r {
            Err(ReadError::BadRequest(msg)) => assert!(msg.contains("conflicting"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // Identical repeats are legal (RFC 9110 §8.6) and framed once.
        let req = read(
            "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody",
            1024,
        )
        .unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn non_digit_content_lengths_are_400() {
        for bad in ["+4", "-4", "4x", "0x10", "4 4", "", "٤"] {
            let r = read(
                &format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nbody"),
                1024,
            );
            match r {
                Err(ReadError::BadRequest(msg)) => {
                    assert!(msg.contains("decimal"), "{bad:?}: {msg}")
                }
                other => panic!("{bad:?} must be BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn overflowing_content_lengths_are_400() {
        // One past u64::MAX: all digits, but unrepresentable.
        let r = read(
            "POST / HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n",
            1024,
        );
        match r {
            Err(ReadError::BadRequest(msg)) => assert!(msg.contains("overflow"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_reports_disconnect() {
        let r = read("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 1024);
        assert!(matches!(r, Err(ReadError::Disconnected(_))));
    }

    #[test]
    fn response_serialization_is_http11() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text(200, "hi")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
        assert!(!text.contains("X-Questpro-Trace-Id"));
    }

    #[test]
    fn trace_id_is_echoed_as_a_header() {
        let mut out = Vec::new();
        let mut resp = Response::json(200, "{}");
        resp.trace_id = Some(42);
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Questpro-Trace-Id: 42\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
