//! Named, versioned ontologies shared across sessions and requests.
//!
//! The four built-in worlds (`erdos`, `sp2b`, `bsbm`, `movies`) are
//! generated lazily on first use at their default scales — binding a
//! port stays instant — and cached as `Arc<Ontology>` so concurrent
//! requests share one immutable graph. Users can also `POST` their own
//! world as triple text (the `questpro generate` format) or as a binary
//! snapshot.
//!
//! **Live updates** (`POST /ontologies/:name/update`) never mutate an
//! ontology in place. Every named world is a short, versioned chain of
//! immutable copy-on-write snapshots: an update derives version `v+1`
//! from head `v` via [`Ontology::apply_delta`] and installs it as the
//! new head, while the last [`HISTORY`] versions stay resolvable so
//! in-flight sessions pinned to an older version keep answering against
//! the exact graph they started on. When a pinned version falls off the
//! bounded history, [`Registry::get_version`] reports
//! [`VersionLookup::Evicted`] — a named failure the session layer turns
//! into a `410` rather than a silent wrong-version answer.
//!
//! Locking discipline: one registry-wide mutex guards the name map;
//! ontology *construction* happens outside the lock so a slow build
//! (sp2b at scale) never stalls requests touching other worlds. Two
//! racing builders may both construct; the first insert wins and the
//! loser's copy is dropped — correctness over duplicated effort.
//! Updates additionally serialize on a dedicated mutex held across
//! read-head → apply-delta → install-new-head, so concurrent updates to
//! one world can never drop each other's triples; readers never touch
//! that mutex.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use questpro_data::{
    erdos_ontology, generate_bsbm, generate_movies, generate_sp2b, BsbmConfig, MoviesConfig,
    Sp2bConfig,
};
use questpro_graph::{triples, DeltaSummary, Ontology, TripleDelta};

/// Versions retained per world (head plus `HISTORY - 1` predecessors).
/// Sessions pinned further back get an honest eviction error.
pub const HISTORY: usize = 4;

/// The versioned chain of one materialized world.
struct Versioned {
    /// `(version, snapshot)` pairs, oldest first, newest = head. Never
    /// empty; version numbers start at 1 and increment per update.
    chain: VecDeque<(u64, Arc<Ontology>)>,
}

impl Versioned {
    fn new(ont: Arc<Ontology>) -> Versioned {
        let mut chain = VecDeque::with_capacity(HISTORY);
        chain.push_back((1, ont));
        Versioned { chain }
    }

    fn head(&self) -> (u64, Arc<Ontology>) {
        let (v, ont) = self.chain.back().expect("chain never empty");
        (*v, Arc::clone(ont))
    }

    fn push(&mut self, version: u64, ont: Arc<Ontology>) {
        self.chain.push_back((version, ont));
        while self.chain.len() > HISTORY {
            self.chain.pop_front();
        }
    }
}

/// How a named world comes to exist.
enum Entry {
    /// Generated on first access by the named builder.
    Lazy(fn() -> Ontology),
    /// Materialized, with bounded version history.
    Loaded(Versioned),
}

/// Outcome of resolving a `(name, version)` pin.
pub enum VersionLookup {
    /// The pinned version is still retained.
    Found(Arc<Ontology>),
    /// The version existed but live updates pushed it off the bounded
    /// history — the caller must fail loudly, not answer from head.
    Evicted {
        /// The current head version, for the error message.
        head: u64,
    },
    /// No such world, or a version number that was never assigned.
    Unknown,
}

/// A concurrent name → versioned ontology map; see the module docs.
pub struct Registry {
    inner: Mutex<BTreeMap<String, Entry>>,
    /// Serializes read-head → apply → install for updates (all worlds;
    /// updates are rare and readers never take this).
    update_serial: Mutex<()>,
}

impl Registry {
    /// A registry pre-populated with the built-in worlds.
    pub fn with_builtins() -> Registry {
        let mut map: BTreeMap<String, Entry> = BTreeMap::new();
        map.insert("erdos".into(), Entry::Lazy(erdos_ontology));
        map.insert(
            "sp2b".into(),
            Entry::Lazy(|| generate_sp2b(&Sp2bConfig::default())),
        );
        map.insert(
            "bsbm".into(),
            Entry::Lazy(|| generate_bsbm(&BsbmConfig::default())),
        );
        map.insert(
            "movies".into(),
            Entry::Lazy(|| generate_movies(&MoviesConfig::default())),
        );
        Registry {
            inner: Mutex::new(map),
            update_serial: Mutex::new(()),
        }
    }

    /// The named ontology's head version, building it first if it is a
    /// built-in that has not been touched yet. `None` for unknown names.
    pub fn get(&self, name: &str) -> Option<Arc<Ontology>> {
        self.get_versioned(name).map(|(_, ont)| ont)
    }

    /// The named ontology's head as `(version, ontology)`.
    pub fn get_versioned(&self, name: &str) -> Option<(u64, Arc<Ontology>)> {
        let builder = {
            let map = lock(&self.inner);
            match map.get(name) {
                None => return None,
                Some(Entry::Loaded(v)) => return Some(v.head()),
                Some(Entry::Lazy(f)) => *f,
            }
        };
        // Build outside the lock; racing builders are resolved by
        // whoever inserts first.
        let built = Arc::new(builder());
        let mut map = lock(&self.inner);
        match map.get(name) {
            Some(Entry::Loaded(v)) => Some(v.head()),
            _ => {
                map.insert(
                    name.to_string(),
                    Entry::Loaded(Versioned::new(Arc::clone(&built))),
                );
                Some((1, built))
            }
        }
    }

    /// Resolves a pinned `(name, version)` pair; see [`VersionLookup`].
    /// Never materializes a lazy world: a pin can only refer to a world
    /// something already materialized.
    pub fn get_version(&self, name: &str, version: u64) -> VersionLookup {
        let map = lock(&self.inner);
        match map.get(name) {
            Some(Entry::Loaded(v)) => {
                let (head, _) = v.chain.back().expect("chain never empty");
                if let Some((_, ont)) = v.chain.iter().find(|(ver, _)| *ver == version) {
                    VersionLookup::Found(Arc::clone(ont))
                } else if version >= 1 && version < *head {
                    VersionLookup::Evicted { head: *head }
                } else {
                    VersionLookup::Unknown
                }
            }
            _ => VersionLookup::Unknown,
        }
    }

    /// Applies a batched update to the named world's head, installing
    /// the result as the new head version.
    ///
    /// # Errors
    /// `Err((status, message))` with `404` for unknown names and `409`
    /// for semantic rejections (missing delete, duplicate insert) — the
    /// head is unchanged in every error case.
    pub fn update(
        &self,
        name: &str,
        delta: &TripleDelta,
    ) -> Result<(u64, Arc<Ontology>, DeltaSummary), (u16, String)> {
        // One update at a time: a racing pair applying to the same head
        // would silently drop whichever installed first.
        let _serial = lock(&self.update_serial);
        let (head_version, head) = self
            .get_versioned(name)
            .ok_or_else(|| (404, format!("no ontology named {name:?}")))?;
        // The expensive delta-apply runs outside the map lock; the
        // update mutex alone serializes it.
        let (next, summary) = head.apply_delta(delta).map_err(|e| (409, e.to_string()))?;
        let next = Arc::new(next);
        let new_version = head_version + 1;
        let mut map = lock(&self.inner);
        match map.get_mut(name) {
            Some(Entry::Loaded(v)) => v.push(new_version, Arc::clone(&next)),
            // The name existed moments ago (get_versioned materialized
            // it); it cannot regress to Lazy or vanish — entries are
            // never removed. Unreachable in practice, honest if not.
            _ => return Err((404, format!("no ontology named {name:?}"))),
        }
        Ok((new_version, next, summary))
    }

    /// Registers a user-posted world from triple text.
    ///
    /// # Errors
    /// The name being taken, or the triple text failing to parse; both
    /// as a displayable message.
    pub fn insert(&self, name: &str, triple_text: &str) -> Result<Arc<Ontology>, String> {
        check_name(name)?;
        let ont = Arc::new(triples::parse(triple_text).map_err(|e| e.to_string())?);
        self.insert_loaded(name, ont)
    }

    /// Registers a world from binary snapshot bytes (`questpro store
    /// build`). Registration is atomic: the bytes are fully validated
    /// and the ontology fully assembled *before* the name map is
    /// touched, so no failure path can leave a half-registered entry —
    /// and a name that failed to register stays free for a corrected
    /// retry.
    ///
    /// # Errors
    /// The name being taken, or the snapshot failing strict validation;
    /// both as a displayable message.
    pub fn insert_snapshot(&self, name: &str, bytes: &[u8]) -> Result<Arc<Ontology>, String> {
        check_name(name)?;
        let store = questpro_store::decode(bytes).map_err(|e| e.to_string())?;
        let ont = Arc::new(store.to_ontology().map_err(|e| e.to_string())?);
        self.insert_loaded(name, ont)
    }

    /// Inserts an already-materialized ontology under `name` as
    /// version 1.
    fn insert_loaded(&self, name: &str, ont: Arc<Ontology>) -> Result<Arc<Ontology>, String> {
        let mut map = lock(&self.inner);
        if map.contains_key(name) {
            return Err(format!("ontology {name:?} already exists"));
        }
        map.insert(
            name.to_string(),
            Entry::Loaded(Versioned::new(Arc::clone(&ont))),
        );
        Ok(ont)
    }

    /// Registered names with whether each is materialized yet.
    pub fn list(&self) -> Vec<(String, bool)> {
        lock(&self.inner)
            .iter()
            .map(|(k, v)| (k.clone(), matches!(v, Entry::Loaded(_))))
            .collect()
    }

    /// Head version of a world, if materialized (for `GET` responses).
    pub fn head_version(&self, name: &str) -> Option<u64> {
        match lock(&self.inner).get(name) {
            Some(Entry::Loaded(v)) => Some(v.head().0),
            _ => None,
        }
    }

    /// Total retained versions across all worlds (the
    /// `questpro_ontology_versions_open` gauge): how many immutable
    /// snapshots the registry is keeping alive for pinned readers.
    pub fn versions_open(&self) -> usize {
        lock(&self.inner)
            .values()
            .map(|e| match e {
                Entry::Loaded(v) => v.chain.len(),
                Entry::Lazy(_) => 0,
            })
            .sum()
    }
}

/// Poison-tolerant lock: a panic in another request must degrade that
/// request, not wedge the registry for the rest of the process.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registered names are path- and JSON-safe identifiers.
fn check_name(name: &str) -> Result<(), String> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err("ontology names must be non-empty [A-Za-z0-9_-]".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(inserts: &[(&str, &str, &str)], deletes: &[(&str, &str, &str)]) -> TripleDelta {
        let conv = |ts: &[(&str, &str, &str)]| {
            ts.iter()
                .map(|&(s, p, o)| [s.to_string(), p.to_string(), o.to_string()])
                .collect()
        };
        TripleDelta {
            inserts: conv(inserts),
            deletes: conv(deletes),
        }
    }

    #[test]
    fn builtins_materialize_lazily_and_are_shared() {
        let r = Registry::with_builtins();
        assert!(
            r.list().iter().all(|(_, loaded)| !loaded),
            "nothing is built up-front"
        );
        let a = r.get("erdos").unwrap();
        let b = r.get("erdos").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one shared instance");
        assert!(r.list().iter().any(|(n, loaded)| n == "erdos" && *loaded));
        assert!(r.get("no-such-world").is_none());
    }

    #[test]
    fn snapshots_register_and_reject_corruption() {
        let r = Registry::with_builtins();
        let ont = triples::parse("a p b\nb p c\n@type a T\n").unwrap();
        let store = questpro_store::TripleStore::from_ontology(&ont).unwrap();
        let bytes = questpro_store::encode(&store);

        let loaded = r.insert_snapshot("snap", &bytes).unwrap();
        assert_eq!(loaded.edge_count(), 2);
        assert!(r.get("snap").is_some());
        assert!(r.insert_snapshot("snap", &bytes).is_err(), "duplicate");
        assert!(r.insert_snapshot("bad name", &bytes).is_err());

        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 1;
        // The last byte lands in the osp permutation, which the store
        // validates structurally rather than by checksum (its checksum
        // deliberately stops at the pos section); either named
        // rejection proves corruption cannot register.
        let err = r.insert_snapshot("snap2", &corrupt).unwrap_err();
        assert!(
            err.contains("checksum mismatch") || err.contains("bad osp section"),
            "{err}"
        );
        assert!(r.get("snap2").is_none(), "nothing registered on error");
    }

    #[test]
    fn failed_snapshot_registration_is_atomic_and_retryable() {
        // Regression guard for the copy-on-write registry: a snapshot
        // that fails validation must leave the name map completely
        // untouched — no reserved name, no version chain, no gauge
        // movement — and the same name must then register cleanly.
        let r = Registry::with_builtins();
        let ont = triples::parse("a p b\n").unwrap();
        let store = questpro_store::TripleStore::from_ontology(&ont).unwrap();
        let bytes = questpro_store::encode(&store);
        let names_before: Vec<_> = r.list();
        let versions_before = r.versions_open();

        let mut corrupt = bytes.clone();
        corrupt[8] ^= 0xff; // header/section damage: strict decode fails
        assert!(r.insert_snapshot("world", &corrupt).is_err());
        assert_eq!(r.list(), names_before, "failed insert must not reserve");
        assert_eq!(r.versions_open(), versions_before);
        assert!(r.head_version("world").is_none());

        // The name stays free: a corrected retry succeeds and starts
        // its chain at version 1.
        r.insert_snapshot("world", &bytes).unwrap();
        assert_eq!(r.head_version("world"), Some(1));
    }

    #[test]
    fn user_worlds_parse_and_collide_loudly() {
        let r = Registry::with_builtins();
        let ont = r.insert("tiny", "a p b\nb p c\n").unwrap();
        assert_eq!(ont.node_count(), 3);
        assert!(r.get("tiny").is_some());
        assert!(r.insert("tiny", "x p y\n").is_err(), "duplicate name");
        assert!(r.insert("bad name", "x p y\n").is_err(), "bad name");
        assert!(r.insert("broken", "not a triple line\n").is_err());
    }

    #[test]
    fn updates_advance_the_head_and_pin_old_versions() {
        let r = Registry::with_builtins();
        r.insert("w", "a p b\n").unwrap();
        let (v1, ont1) = r.get_versioned("w").unwrap();
        assert_eq!(v1, 1);

        let (v2, ont2, summary) = r.update("w", &delta(&[("b", "p", "c")], &[])).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(summary.inserted, 1);
        assert!(summary.edge_ids_stable);
        assert_eq!(ont2.edge_count(), 2);
        // The old version is untouched and still resolvable.
        assert_eq!(ont1.edge_count(), 1);
        match r.get_version("w", 1) {
            VersionLookup::Found(o) => assert!(Arc::ptr_eq(&o, &ont1)),
            _ => panic!("version 1 must still be pinned"),
        }
        // Head moved.
        let (head_v, head) = r.get_versioned("w").unwrap();
        assert_eq!(head_v, 2);
        assert!(Arc::ptr_eq(&head, &ont2));
        assert_eq!(r.versions_open(), 2);
    }

    #[test]
    fn rejected_updates_leave_the_head_alone() {
        let r = Registry::with_builtins();
        r.insert("w", "a p b\n").unwrap();
        let (status, msg) = r
            .update("w", &delta(&[], &[("a", "p", "zzz")]))
            .unwrap_err();
        assert_eq!(status, 409);
        assert!(msg.contains("no such triple"), "{msg}");
        assert_eq!(r.head_version("w"), Some(1), "head unchanged");
        let (status, _) = r
            .update("nope", &delta(&[("a", "p", "b")], &[]))
            .unwrap_err();
        assert_eq!(status, 404);
    }

    #[test]
    fn history_is_bounded_and_eviction_is_named() {
        let r = Registry::with_builtins();
        r.insert("w", "a p b\n").unwrap();
        // Push HISTORY updates so version 1 falls off the chain.
        for i in 0..HISTORY {
            r.update("w", &delta(&[("a", "q", &format!("n{i}"))], &[]))
                .unwrap();
        }
        let head = (HISTORY + 1) as u64;
        assert_eq!(r.head_version("w"), Some(head));
        assert_eq!(r.versions_open(), HISTORY);
        match r.get_version("w", 1) {
            VersionLookup::Evicted { head: h } => assert_eq!(h, head),
            _ => panic!("version 1 must report eviction, not answer"),
        }
        // In-range retained versions still resolve; never-assigned and
        // future versions are Unknown, not Evicted.
        assert!(matches!(r.get_version("w", head), VersionLookup::Found(_)));
        assert!(matches!(r.get_version("w", 0), VersionLookup::Unknown));
        assert!(matches!(
            r.get_version("w", head + 1),
            VersionLookup::Unknown
        ));
        assert!(matches!(r.get_version("ghost", 1), VersionLookup::Unknown));
    }
}
