//! Named ontologies shared across sessions and requests.
//!
//! The four built-in worlds (`erdos`, `sp2b`, `bsbm`, `movies`) are
//! generated lazily on first use at their default scales — binding a
//! port stays instant — and cached as `Arc<Ontology>` so concurrent
//! requests share one immutable graph. Users can also `POST` their own
//! world as triple text (the `questpro generate` format).
//!
//! Locking discipline: one registry-wide mutex guards the name map;
//! ontology *construction* happens outside the lock so a slow build
//! (sp2b at scale) never stalls requests touching other worlds. Two
//! racing builders may both construct; the first insert wins and the
//! loser's copy is dropped — correctness over duplicated effort.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use questpro_data::{
    erdos_ontology, generate_bsbm, generate_movies, generate_sp2b, BsbmConfig, MoviesConfig,
    Sp2bConfig,
};
use questpro_graph::{triples, Ontology};

/// How a named world comes to exist.
enum Entry {
    /// Generated on first access by the named builder.
    Lazy(fn() -> Ontology),
    /// Already materialized.
    Loaded(Arc<Ontology>),
}

/// A concurrent name → ontology map; see the module docs.
pub struct Registry {
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// A registry pre-populated with the built-in worlds.
    pub fn with_builtins() -> Registry {
        let mut map: BTreeMap<String, Entry> = BTreeMap::new();
        map.insert("erdos".into(), Entry::Lazy(erdos_ontology));
        map.insert(
            "sp2b".into(),
            Entry::Lazy(|| generate_sp2b(&Sp2bConfig::default())),
        );
        map.insert(
            "bsbm".into(),
            Entry::Lazy(|| generate_bsbm(&BsbmConfig::default())),
        );
        map.insert(
            "movies".into(),
            Entry::Lazy(|| generate_movies(&MoviesConfig::default())),
        );
        Registry {
            inner: Mutex::new(map),
        }
    }

    /// The named ontology, building it first if it is a built-in that
    /// has not been touched yet. `None` for unknown names.
    pub fn get(&self, name: &str) -> Option<Arc<Ontology>> {
        let builder = {
            let map = lock(&self.inner);
            match map.get(name) {
                None => return None,
                Some(Entry::Loaded(ont)) => return Some(Arc::clone(ont)),
                Some(Entry::Lazy(f)) => *f,
            }
        };
        // Build outside the lock; racing builders are resolved by
        // whoever inserts first.
        let built = Arc::new(builder());
        let mut map = lock(&self.inner);
        match map.get(name) {
            Some(Entry::Loaded(ont)) => Some(Arc::clone(ont)),
            _ => {
                map.insert(name.to_string(), Entry::Loaded(Arc::clone(&built)));
                Some(built)
            }
        }
    }

    /// Registers a user-posted world from triple text.
    ///
    /// # Errors
    /// The name being taken, or the triple text failing to parse; both
    /// as a displayable message.
    pub fn insert(&self, name: &str, triple_text: &str) -> Result<Arc<Ontology>, String> {
        check_name(name)?;
        let ont = Arc::new(triples::parse(triple_text).map_err(|e| e.to_string())?);
        self.insert_loaded(name, ont)
    }

    /// Registers a world from binary snapshot bytes (`questpro store
    /// build`). Snapshot validation and ontology assembly both happen
    /// outside the registry lock.
    ///
    /// # Errors
    /// The name being taken, or the snapshot failing strict validation;
    /// both as a displayable message.
    pub fn insert_snapshot(&self, name: &str, bytes: &[u8]) -> Result<Arc<Ontology>, String> {
        check_name(name)?;
        let store = questpro_store::decode(bytes).map_err(|e| e.to_string())?;
        let ont = Arc::new(store.to_ontology().map_err(|e| e.to_string())?);
        self.insert_loaded(name, ont)
    }

    /// Inserts an already-materialized ontology under `name`.
    fn insert_loaded(&self, name: &str, ont: Arc<Ontology>) -> Result<Arc<Ontology>, String> {
        let mut map = lock(&self.inner);
        if map.contains_key(name) {
            return Err(format!("ontology {name:?} already exists"));
        }
        map.insert(name.to_string(), Entry::Loaded(Arc::clone(&ont)));
        Ok(ont)
    }

    /// Registered names with whether each is materialized yet.
    pub fn list(&self) -> Vec<(String, bool)> {
        lock(&self.inner)
            .iter()
            .map(|(k, v)| (k.clone(), matches!(v, Entry::Loaded(_))))
            .collect()
    }
}

/// Poison-tolerant lock: a panic in another request must degrade that
/// request, not wedge the registry for the rest of the process.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registered names are path- and JSON-safe identifiers.
fn check_name(name: &str) -> Result<(), String> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err("ontology names must be non-empty [A-Za-z0-9_-]".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_materialize_lazily_and_are_shared() {
        let r = Registry::with_builtins();
        assert!(
            r.list().iter().all(|(_, loaded)| !loaded),
            "nothing is built up-front"
        );
        let a = r.get("erdos").unwrap();
        let b = r.get("erdos").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one shared instance");
        assert!(r.list().iter().any(|(n, loaded)| n == "erdos" && *loaded));
        assert!(r.get("no-such-world").is_none());
    }

    #[test]
    fn snapshots_register_and_reject_corruption() {
        let r = Registry::with_builtins();
        let ont = triples::parse("a p b\nb p c\n@type a T\n").unwrap();
        let store = questpro_store::TripleStore::from_ontology(&ont).unwrap();
        let bytes = questpro_store::encode(&store);

        let loaded = r.insert_snapshot("snap", &bytes).unwrap();
        assert_eq!(loaded.edge_count(), 2);
        assert!(r.get("snap").is_some());
        assert!(r.insert_snapshot("snap", &bytes).is_err(), "duplicate");
        assert!(r.insert_snapshot("bad name", &bytes).is_err());

        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 1;
        // The last byte lands in the osp permutation, which the store
        // validates structurally rather than by checksum (its checksum
        // deliberately stops at the pos section); either named
        // rejection proves corruption cannot register.
        let err = r.insert_snapshot("snap2", &corrupt).unwrap_err();
        assert!(
            err.contains("checksum mismatch") || err.contains("bad osp section"),
            "{err}"
        );
        assert!(r.get("snap2").is_none(), "nothing registered on error");
    }

    #[test]
    fn user_worlds_parse_and_collide_loudly() {
        let r = Registry::with_builtins();
        let ont = r.insert("tiny", "a p b\nb p c\n").unwrap();
        assert_eq!(ont.node_count(), 3);
        assert!(r.get("tiny").is_some());
        assert!(r.insert("tiny", "x p y\n").is_err(), "duplicate name");
        assert!(r.insert("bad name", "x p y\n").is_err(), "bad name");
        assert!(r.insert("broken", "not a triple line\n").is_err());
    }
}
