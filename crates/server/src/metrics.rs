//! Prometheus-style text export of process metrics.
//!
//! Everything rendered here is **cumulative** (monotonic counters) or
//! an instantaneous gauge — never a per-run value that resets — so a
//! scraper can diff consecutive snapshots for rates. Sources:
//!
//! * HTTP counters owned by this module (requests, responses by class);
//! * `questpro_engine::metrics` — matcher searches/matches/expansions
//!   and consistency-cache totals;
//! * `questpro_core::global_stats()` — cumulative inference totals;
//! * the session manager's live-session gauge.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use questpro_telemetry::OutcomeMarginal;
use questpro_trace::hist::{HistSnapshot, HistogramSet, FIRST_BUCKET_LOG2};

use crate::router::ROUTES;

/// Monotonic HTTP traffic counters.
#[derive(Default)]
pub struct HttpCounters {
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    rejected_overload: AtomicU64,
    keepalive_timeouts: AtomicU64,
    request_timeouts: AtomicU64,
    connections_accepted: AtomicU64,
    connections_open: AtomicU64,
}

impl HttpCounters {
    /// Records one request received.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one response by status class.
    pub fn record_response(&self, status: u16) {
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection rejected because the worker queue was
    /// full.
    pub fn record_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one keep-alive connection closed by the read timeout.
    pub fn record_keepalive_timeout(&self) {
        self.keepalive_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one partial request that stalled past the read timeout
    /// (answered with a named `408`, unlike the silent idle close).
    pub fn record_request_timeout(&self) {
        self.request_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection registered with an event loop.
    pub fn record_conn_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection closed (any reason).
    pub fn record_conn_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently registered (the live gauge).
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Total requests received so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

/// Monotonic counters for the live-ontology update path.
#[derive(Default)]
pub struct OntologyCounters {
    updates: AtomicU64,
    rejections: AtomicU64,
}

impl OntologyCounters {
    /// Records one update batch applied (a new head version installed).
    pub fn record_update(&self) {
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one update batch rejected (malformed body, unknown
    /// world, missing delete, duplicate insert — any 4xx outcome).
    pub fn record_rejection(&self) {
        self.rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Total update batches applied.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Total update batches rejected.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }
}

/// Per-route latency histograms (the route label list is fixed in
/// [`ROUTES`], so the exposition format is traffic-independent).
fn route_hists() -> &'static HistogramSet {
    static HISTS: OnceLock<HistogramSet> = OnceLock::new();
    HISTS.get_or_init(|| HistogramSet::new(ROUTES))
}

/// Records one served request under its normalized route label.
pub fn record_route(label: &str, ns: u64) {
    route_hists().record(label, ns);
}

/// Renders one labeled log2 histogram family in Prometheus text format.
fn write_hist(out: &mut String, name: &str, help: &str, label: &str, snaps: &[HistSnapshot]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for h in snaps {
        for (i, cum) in h.buckets.iter().enumerate() {
            let le = 1u64 << (FIRST_BUCKET_LOG2 + i as u32);
            let _ = writeln!(
                out,
                "{name}_bucket{{{label}=\"{}\",le=\"{le}\"}} {cum}",
                h.stage
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{label}=\"{}\",le=\"+Inf\"}} {}",
            h.stage, h.count
        );
        let _ = writeln!(out, "{name}_sum{{{label}=\"{}\"}} {}", h.stage, h.sum_ns);
        let _ = writeln!(out, "{name}_count{{{label}=\"{}\"}} {}", h.stage, h.count);
    }
}

/// Renders the full scrape document.
pub fn render(
    http: &HttpCounters,
    live_sessions: usize,
    ontology: &OntologyCounters,
    versions_open: usize,
) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        "questpro_http_requests_total",
        "HTTP requests parsed off the wire.",
        http.requests.load(Ordering::Relaxed),
    );
    counter(
        "questpro_http_responses_2xx_total",
        "Successful responses.",
        http.responses_2xx.load(Ordering::Relaxed),
    );
    counter(
        "questpro_http_responses_4xx_total",
        "Client-error responses.",
        http.responses_4xx.load(Ordering::Relaxed),
    );
    counter(
        "questpro_http_responses_5xx_total",
        "Server-error responses.",
        http.responses_5xx.load(Ordering::Relaxed),
    );
    counter(
        "questpro_http_overload_rejections_total",
        "Connections rejected with 503 because the worker queue was full.",
        http.rejected_overload.load(Ordering::Relaxed),
    );
    counter(
        "questpro_http_keepalive_timeouts_total",
        "Keep-alive connections closed by the idle read timeout.",
        http.keepalive_timeouts.load(Ordering::Relaxed),
    );
    counter(
        "questpro_http_request_timeouts_total",
        "Partial requests that stalled past the read timeout (408).",
        http.request_timeouts.load(Ordering::Relaxed),
    );
    counter(
        "questpro_http_connections_accepted_total",
        "Connections registered with the event loop.",
        http.connections_accepted.load(Ordering::Relaxed),
    );

    counter(
        "questpro_ontology_updates_total",
        "Live ontology update batches applied (new head versions).",
        ontology.updates(),
    );
    counter(
        "questpro_ontology_update_rejections_total",
        "Live ontology update batches rejected with a 4xx.",
        ontology.rejections(),
    );

    let inference = questpro_core::global_stats();
    counter(
        "questpro_inference_runs_total",
        "Completed top-k inference runs.",
        inference.runs,
    );
    counter(
        "questpro_inference_algorithm1_calls_total",
        "Algorithm 1 invocations (the paper's Figure 6 metric), cumulative.",
        inference.algorithm1_calls,
    );
    counter(
        "questpro_inference_states_examined_total",
        "Beam states examined, cumulative.",
        inference.states_examined,
    );
    counter(
        "questpro_inference_merge_cache_hits_total",
        "Pairwise merge-cache hits, cumulative.",
        inference.merge_cache_hits,
    );
    counter(
        "questpro_inference_nanos_total",
        "Wall-clock nanoseconds inside inference entry points, cumulative.",
        inference.total_nanos,
    );

    counter(
        "questpro_engine_searches_total",
        "Matcher search drives finished (sequential searches and parallel shards).",
        questpro_engine::metrics::searches_total(),
    );
    counter(
        "questpro_engine_matches_total",
        "Matches emitted by the matcher.",
        questpro_engine::metrics::matches_total(),
    );
    counter(
        "questpro_engine_nodes_expanded_total",
        "Matcher search-tree nodes expanded.",
        questpro_engine::metrics::nodes_expanded(),
    );
    counter(
        "questpro_consistency_lookups_total",
        "Consistency-cache lookups.",
        questpro_engine::metrics::consistency_lookups_total(),
    );
    counter(
        "questpro_consistency_hits_total",
        "Consistency-cache lookups answered without a matcher run.",
        questpro_engine::metrics::consistency_hits_total(),
    );

    counter(
        "questpro_traces_dropped_total",
        "Finished traces evicted from the bounded trace registry.",
        questpro_trace::registry::dropped_total(),
    );
    counter(
        "questpro_log_events_total",
        "Structured log events accepted (before any ring eviction).",
        questpro_log::emitted_total(),
    );
    counter(
        "questpro_log_dropped_total",
        "Structured log events evicted from the bounded log ring.",
        questpro_log::dropped_total(),
    );
    counter(
        "questpro_log_drained_total",
        "Structured log events no longer in the ring for any reason other \
         than eviction (accepted minus retained minus dropped).",
        questpro_log::emitted_total()
            .saturating_sub(questpro_log::dropped_total())
            .saturating_sub(questpro_log::retained() as u64),
    );

    let (session_records, session_records_dropped, session_keys) = questpro_telemetry::counters();
    counter(
        "questpro_session_records_total",
        "Finished-session telemetry records offered to the aggregator.",
        session_records,
    );
    counter(
        "questpro_session_records_dropped_total",
        "Session records dropped by the dimensional-key cardinality cap.",
        session_records_dropped,
    );

    // Session telemetry marginals: the full dimensional breakdown by
    // (ontology, version, outcome) lives at GET /debug/sessions; the
    // scrape exposes only the outcome marginals so the label set (and
    // with it the exposition shape) never depends on traffic.
    let marginals = questpro_telemetry::marginals();
    let mut outcome_counter = |name: &str, help: &str, pick: &dyn Fn(&OutcomeMarginal) -> u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for m in &marginals {
            let _ = writeln!(
                out,
                "{name}{{outcome=\"{}\"}} {}",
                m.outcome.as_str(),
                pick(m)
            );
        }
    };
    outcome_counter(
        "questpro_session_outcomes_total",
        "Finished interactive sessions by terminal outcome.",
        &|m| m.sessions,
    );
    outcome_counter(
        "questpro_session_questions_total",
        "Feedback questions asked across finished sessions.",
        &|m| m.questions,
    );
    outcome_counter(
        "questpro_session_consistency_lookups_total",
        "Consistency-cache lookups during finished sessions' inference.",
        &|m| m.consistency_checks,
    );
    outcome_counter(
        "questpro_session_consistency_hits_total",
        "Consistency-cache hits during finished sessions' inference.",
        &|m| m.consistency_hits,
    );
    outcome_counter(
        "questpro_session_merge_lookups_total",
        "Pairwise merge-cache lookups during finished sessions' inference.",
        &|m| m.merge_lookups,
    );
    outcome_counter(
        "questpro_session_merge_hits_total",
        "Pairwise merge-cache hits during finished sessions' inference.",
        &|m| m.merge_hits,
    );
    let _ = writeln!(
        out,
        "# HELP questpro_session_verdicts_total User verdicts given across finished sessions.\n\
         # TYPE questpro_session_verdicts_total counter"
    );
    for m in &marginals {
        for (verdict, n) in [("yes", m.yes), ("no", m.no)] {
            let _ = writeln!(
                out,
                "questpro_session_verdicts_total{{outcome=\"{}\",verdict=\"{verdict}\"}} {n}",
                m.outcome.as_str()
            );
        }
    }

    let _ = writeln!(
        out,
        "# HELP questpro_http_connections_open Connections currently registered.\n\
         # TYPE questpro_http_connections_open gauge\n\
         questpro_http_connections_open {}",
        http.connections_open.load(Ordering::Relaxed)
    );
    let _ = writeln!(
        out,
        "# HELP questpro_sessions_live Interactive sessions currently held.\n\
         # TYPE questpro_sessions_live gauge\n\
         questpro_sessions_live {live_sessions}"
    );
    let _ = writeln!(
        out,
        "# HELP questpro_ontology_versions_open Ontology versions retained for pinned readers.\n\
         # TYPE questpro_ontology_versions_open gauge\n\
         questpro_ontology_versions_open {versions_open}"
    );
    let _ = writeln!(
        out,
        "# HELP questpro_session_keys_live Live (ontology, version, outcome) telemetry keys.\n\
         # TYPE questpro_session_keys_live gauge\n\
         questpro_session_keys_live {session_keys}"
    );
    let _ = writeln!(
        out,
        "# HELP questpro_traces_retained Finished traces currently held by the trace registry.\n\
         # TYPE questpro_traces_retained gauge\n\
         questpro_traces_retained {}",
        questpro_trace::registry::retained()
    );
    let _ = writeln!(
        out,
        "# HELP questpro_log_retained Structured log events currently held by the log ring.\n\
         # TYPE questpro_log_retained gauge\n\
         questpro_log_retained {}",
        questpro_log::retained()
    );

    // Dimensional latency histograms. Both label lists (traced stages,
    // normalized routes) and the log2 bucket layout are fixed at
    // compile time and zero-filled, so the exposition format never
    // depends on traffic (frozen by the golden-file test).
    write_hist(
        &mut out,
        "questpro_stage_duration_ns",
        "Wall-clock nanoseconds per traced stage (log2 buckets).",
        "stage",
        &questpro_trace::hist::snapshot(),
    );
    write_hist(
        &mut out,
        "questpro_route_duration_ns",
        "Wall-clock nanoseconds per served request by normalized route (log2 buckets).",
        "route",
        &route_hists().snapshot(),
    );
    // Session telemetry histograms, labeled by the fixed outcome set.
    // The ns-valued pair shares the trace bucket layout, so the common
    // writer renders them; the rounds histogram has its own (smaller,
    // 2^0-based) layout.
    write_round_hist(
        &mut out,
        "questpro_session_rounds",
        "Feedback rounds per finished session (log2 buckets).",
        &marginals,
    );
    let ns_snaps = |pick: &dyn Fn(&OutcomeMarginal) -> &questpro_telemetry::Hist| {
        marginals
            .iter()
            .map(|m| {
                let h = pick(m);
                HistSnapshot {
                    stage: m.outcome.as_str(),
                    buckets: h.buckets.clone(),
                    count: h.count,
                    sum_ns: h.sum,
                }
            })
            .collect::<Vec<_>>()
    };
    write_hist(
        &mut out,
        "questpro_session_duration_ns",
        "Total wall-clock nanoseconds per finished session (log2 buckets).",
        "outcome",
        &ns_snaps(&|m| &m.wall_ns),
    );
    write_hist(
        &mut out,
        "questpro_session_round_duration_ns",
        "Wall-clock nanoseconds per answered feedback round (log2 buckets).",
        "outcome",
        &ns_snaps(&|m| &m.round_wall_ns),
    );
    out
}

/// Renders the rounds histogram family: same shape as [`write_hist`]
/// but with upper bounds starting at `2^0` (a session takes ones of
/// rounds, not thousands of nanoseconds).
fn write_round_hist(out: &mut String, name: &str, help: &str, marginals: &[OutcomeMarginal]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for m in marginals {
        let outcome = m.outcome.as_str();
        for (i, cum) in m.rounds.buckets.iter().enumerate() {
            let le = 1u64 << i;
            let _ = writeln!(
                out,
                "{name}_bucket{{outcome=\"{outcome}\",le=\"{le}\"}} {cum}"
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{outcome=\"{outcome}\",le=\"+Inf\"}} {}",
            m.rounds.count
        );
        let _ = writeln!(out, "{name}_sum{{outcome=\"{outcome}\"}} {}", m.rounds.sum);
        let _ = writeln!(
            out,
            "{name}_count{{outcome=\"{outcome}\"}} {}",
            m.rounds.count
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_families_and_counts_classes() {
        let http = HttpCounters::default();
        http.record_request();
        http.record_response(200);
        http.record_response(404);
        http.record_response(500);
        http.record_overload();
        http.record_keepalive_timeout();
        http.record_request_timeout();
        http.record_conn_opened();
        http.record_conn_opened();
        http.record_conn_closed();
        let onto = OntologyCounters::default();
        onto.record_update();
        onto.record_rejection();
        onto.record_rejection();
        let text = render(&http, 3, &onto, 5);
        assert!(text.contains("questpro_http_requests_total 1"));
        assert!(text.contains("questpro_http_responses_2xx_total 1"));
        assert!(text.contains("questpro_http_responses_4xx_total 1"));
        assert!(text.contains("questpro_http_responses_5xx_total 1"));
        assert!(text.contains("questpro_http_overload_rejections_total 1"));
        assert!(text.contains("questpro_http_keepalive_timeouts_total 1"));
        assert!(text.contains("questpro_http_request_timeouts_total 1"));
        assert!(text.contains("questpro_http_connections_accepted_total 2"));
        assert!(text.contains("questpro_http_connections_open 1"));
        assert!(text.contains("questpro_sessions_live 3"));
        assert!(text.contains("questpro_ontology_updates_total 1"));
        assert!(text.contains("questpro_ontology_update_rejections_total 2"));
        assert!(text.contains("questpro_ontology_versions_open 5"));
        assert!(text.contains("questpro_engine_searches_total"));
        assert!(text.contains("questpro_inference_runs_total"));
        assert!(text.contains("questpro_log_events_total"));
        assert!(text.contains("questpro_log_dropped_total"));
        // Prometheus text format: every unlabeled counter/gauge sample
        // has its own HELP/TYPE pair; the five histogram families and
        // the seven outcome-labeled counter families share one each.
        let sample_lines = |prefix: &str| {
            text.lines()
                .filter(|l| !l.starts_with('#') && l.starts_with(prefix))
                .count()
        };
        let hist_prefixes = [
            "questpro_stage_duration_ns",
            "questpro_route_duration_ns",
            "questpro_session_rounds",
            "questpro_session_duration_ns",
            "questpro_session_round_duration_ns",
        ];
        let labeled_prefixes = [
            "questpro_session_outcomes_total",
            "questpro_session_questions_total",
            "questpro_session_verdicts_total",
            "questpro_session_consistency_lookups_total",
            "questpro_session_consistency_hits_total",
            "questpro_session_merge_lookups_total",
            "questpro_session_merge_hits_total",
        ];
        let hist_samples: usize = hist_prefixes.iter().map(|p| sample_lines(p)).sum();
        let labeled_samples: usize = labeled_prefixes.iter().map(|p| sample_lines(p)).sum();
        let samples = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .count();
        let types = text.lines().filter(|l| l.starts_with("# TYPE")).count();
        assert_eq!(
            samples - hist_samples - labeled_samples,
            types - hist_prefixes.len() - labeled_prefixes.len()
        );
        // Fixed exposition: every label always renders every bucket
        // plus +Inf, _sum and _count, and the outcome label set is the
        // fixed three regardless of traffic.
        let per_label = questpro_trace::hist::BUCKETS + 3;
        assert_eq!(
            sample_lines("questpro_stage_duration_ns"),
            questpro_trace::STAGES.len() * per_label
        );
        assert_eq!(
            sample_lines("questpro_route_duration_ns"),
            ROUTES.len() * per_label
        );
        assert_eq!(sample_lines("questpro_session_duration_ns"), 3 * per_label);
        assert_eq!(
            sample_lines("questpro_session_round_duration_ns"),
            3 * per_label
        );
        assert_eq!(
            sample_lines("questpro_session_rounds"),
            3 * (questpro_telemetry::ROUND_BUCKETS + 3)
        );
        // 6 single-label families x 3 outcomes + verdicts x 3 x 2.
        assert_eq!(labeled_samples, 6 * 3 + 6);
        assert!(text.contains("questpro_traces_dropped_total"));
        assert!(text.contains("questpro_traces_retained"));
        assert!(text.contains("questpro_log_retained"));
        assert!(text.contains("questpro_log_drained_total"));
        assert!(text.contains("questpro_session_records_total"));
        assert!(text.contains("questpro_session_records_dropped_total"));
        assert!(text.contains("questpro_session_keys_live"));
        assert!(text.contains("stage=\"infer.topk\",le=\"+Inf\""));
        assert!(text.contains("route=\"POST /eval\",le=\"+Inf\""));
        assert!(text.contains("route=\"other\""));
        assert!(text.contains("questpro_session_rounds_bucket{outcome=\"converged\",le=\"1\"}"));
        assert!(text.contains("outcome=\"abandoned\",verdict=\"no\""));
        assert!(text.contains("outcome=\"evicted\",le=\"+Inf\""));
        // Dimensional (ontology, version) labels belong to
        // /debug/sessions only; the scrape shape must never leak them.
        assert!(!text.contains("ontology=\""));
        assert!(!text.contains("version=\""));
    }

    #[test]
    fn route_observations_land_under_their_label() {
        record_route("GET /healthz", 1);
        record_route("not a route", 1); // ignored, not a new label
        let snap = route_hists().snapshot();
        assert_eq!(snap.len(), ROUTES.len());
        let health = snap
            .iter()
            .find(|h| h.stage == "GET /healthz")
            .expect("labeled");
        assert!(health.count >= 1);
    }
}
