//! Server lifecycle: configuration, startup, graceful shutdown.
//!
//! The serving machinery itself lives in [`crate::eventloop`]: one or
//! more readiness-driven loop threads own every socket, and a fixed
//! [`ThreadPool`] runs the CPU-bound handlers. This module binds the
//! listener, builds the shared state, spawns the loops, and exposes the
//! [`ServerHandle`] that joins them back.
//!
//! Shutdown is cooperative — there is no signal handling in a
//! zero-dependency workspace — via [`ServerHandle::shutdown`] or
//! `POST /shutdown`: the flag flips, loop 0 stops accepting, idle
//! connections close immediately, in-flight requests finish and flush
//! under a drain deadline, and the worker pool drains last.

use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use questpro_log::Level;

use crate::eventloop::{self, LoopConfig, Mailbox};
use crate::http::{Request, Response};
use crate::metrics::record_route;
use crate::pool::ThreadPool;
use crate::router::{route, route_label, AppState};
use crate::sys::{self, Poller};

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7474` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded backlog of accepted-but-unserved connections; beyond it
    /// the acceptor sheds load with `503`.
    pub queue: usize,
    /// Cap on request bodies, bytes.
    pub max_body: usize,
    /// Socket read timeout (also bounds keep-alive idle time), ms.
    pub read_timeout_ms: u64,
    /// Socket write timeout, ms.
    pub write_timeout_ms: u64,
    /// Sessions idle longer than this are evicted, seconds.
    pub session_idle_secs: u64,
    /// Maximum live interactive sessions.
    pub max_sessions: usize,
    /// Default inference threads per request (`threads` in bodies wins).
    pub threads: usize,
    /// Record one trace per HTTP request (`questpro-trace`); the trace
    /// ID is echoed in an `X-Questpro-Trace-Id` response header.
    pub tracing: bool,
    /// How many finished traces the global registry retains for
    /// `GET /debug/traces` (oldest dropped first).
    pub trace_capacity: usize,
    /// Record structured log events (`questpro-log`): one access-log
    /// event per request, slow-query events, and the panic flight
    /// recorder. Served at `GET /debug/logs`.
    pub logging: bool,
    /// Record one `questpro-telemetry` session record per finished
    /// interactive session (convergence rounds, verdicts, cache hit
    /// rates, outcome), aggregated for `/metrics` and served raw at
    /// `GET /debug/sessions`.
    pub telemetry: bool,
    /// Minimum level retained when logging is on.
    pub log_level: questpro_log::Level,
    /// How many log events the global ring retains (oldest dropped
    /// first).
    pub log_capacity: usize,
    /// Also append every event as one JSON line to this file.
    pub log_file: Option<String>,
    /// Requests on inference routes slower than this produce a
    /// warn-level slow-query event carrying per-stage self-times;
    /// 0 disables the slow log.
    pub slow_query_ms: u64,
    /// Binary snapshot files (`questpro store build`) to preload into
    /// the ontology registry before accepting connections, each
    /// registered under its file stem. A snapshot cold-load is
    /// milliseconds even at 10⁶–10⁷ triples, so startup stays fast.
    pub stores: Vec<String>,
    /// Event-loop threads. Loop 0 owns the listener and deals accepted
    /// sockets round-robin; each connection lives on one loop for its
    /// whole life. One loop drives 10k+ mostly-idle connections; add
    /// loops when parse/serialize itself saturates a core.
    pub event_loops: usize,
    /// Maximum concurrently open connections across all loops; accepts
    /// beyond it shed with `503`. Each loop enforces an even share
    /// (`ceil(max_conns / event_loops)`), which round-robin dealing
    /// keeps balanced.
    pub max_conns: usize,
    /// How long shutdown waits for in-flight exchanges before
    /// force-closing, ms.
    pub drain_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7474".into(),
            workers: 8,
            queue: 64,
            max_body: 1 << 20,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            session_idle_secs: 1_800,
            max_sessions: 64,
            threads: 1,
            tracing: true,
            trace_capacity: questpro_trace::registry::DEFAULT_CAPACITY,
            logging: true,
            telemetry: true,
            log_level: questpro_log::Level::Info,
            log_capacity: questpro_log::DEFAULT_CAPACITY,
            log_file: None,
            slow_query_ms: 500,
            stores: Vec::new(),
            event_loops: 1,
            max_conns: 10_240,
            drain_ms: 5_000,
        }
    }
}

/// A running server; dropping it without [`ServerHandle::join`] leaves
/// the loop threads running detached until shutdown is requested.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    loops: Vec<thread::JoinHandle<()>>,
    mailboxes: Vec<Mailbox>,
    pool: Option<Arc<ThreadPool>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (registry, sessions, counters).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Whether shutdown has been requested (by this handle or by
    /// `POST /shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Requests graceful shutdown without waiting for it, ringing every
    /// loop's waker so parked loops start their drain immediately.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        for m in &self.mailboxes {
            m.waker().wake();
        }
    }

    /// Requests shutdown and waits for the loops (and then the worker
    /// pool) to drain.
    pub fn join(mut self) {
        self.shutdown();
        for h in self.loops.drain(..) {
            let _ = h.join();
        }
        // Every loop has exited, so this handle owns the last Arc; fall
        // back to Drop's join if a race says otherwise.
        if let Some(pool) = self.pool.take() {
            if let Ok(pool) = Arc::try_unwrap(pool) {
                pool.join();
            }
        }
    }
}

/// Binds, spawns the acceptor and worker pool, and returns immediately.
///
/// # Errors
/// Propagates the bind failure.
pub fn start(cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    if cfg.tracing {
        questpro_trace::registry::set_capacity(cfg.trace_capacity);
        questpro_trace::set_enabled(true);
    }
    questpro_telemetry::set_enabled(cfg.telemetry);
    if cfg.logging {
        questpro_log::set_capacity(cfg.log_capacity);
        questpro_log::set_level(Some(cfg.log_level));
        if let Some(path) = &cfg.log_file {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            questpro_log::set_sink(Some(Box::new(file)));
        }
        questpro_log::flight::install();
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    // std listens with a backlog of 128; a fleet connecting in one
    // burst overflows that, drops SYNs, and stalls each dropped client
    // ~1s on retransmit — long enough for the first accepted
    // connections to hit the idle read timeout before the fleet is up.
    // Widen to the connection cap (kernel-clamped to somaxconn) so
    // handshake bursts queue instead of stalling; best-effort, since a
    // narrow backlog only degrades connect latency, not correctness.
    {
        use std::os::unix::io::AsRawFd;
        let _ = sys::widen_listen_backlog(listener.as_raw_fd(), cfg.max_conns.max(128));
    }
    let addr = listener.local_addr()?;
    let mut state = AppState::new(
        cfg.threads,
        cfg.max_body,
        Duration::from_secs(cfg.session_idle_secs),
        cfg.max_sessions,
    );
    state.slow_query_ns = cfg.slow_query_ms.saturating_mul(1_000_000);
    let state = Arc::new(state);
    // Preload snapshots before the acceptor spawns: a client that
    // connects right after bind must already see the worlds.
    for path in &cfg.stores {
        let bytes = std::fs::read(path)?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("snapshot");
        state.registry.insert_snapshot(name, &bytes).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{path}: {e}"))
        })?;
    }
    let loops = cfg.event_loops.max(1);
    let pool = Arc::new(ThreadPool::new(cfg.workers, cfg.queue));
    let loop_cfg = LoopConfig {
        max_body: cfg.max_body,
        read_timeout: Duration::from_millis(cfg.read_timeout_ms.max(1)),
        write_timeout: Duration::from_millis(cfg.write_timeout_ms.max(1)),
        drain: Duration::from_millis(cfg.drain_ms),
        // The configured cap is global; each loop enforces its even
        // share so `--event-loops N` does not multiply the limit.
        max_conns: cfg.max_conns.max(1).div_ceil(loops),
        workers: cfg.workers,
        queue: cfg.queue,
    };
    let mailboxes: Vec<Mailbox> = (0..loops)
        .map(|_| Mailbox::new())
        .collect::<std::io::Result<_>>()?;
    let mut handles = Vec::with_capacity(loops);
    let mut listener = Some(listener);
    for i in 0..loops {
        // Creating the poller here (not inside the thread) surfaces fd
        // exhaustion as a start() error instead of a dead loop.
        let poller = Poller::new(loop_cfg.max_conns)?;
        let listener = if i == 0 { listener.take() } else { None };
        let state = Arc::clone(&state);
        let pool = Arc::clone(&pool);
        let loop_cfg = loop_cfg.clone();
        let mailboxes = mailboxes.clone();
        handles.push(
            thread::Builder::new()
                .name(format!("questpro-loop-{i}"))
                .spawn(move || {
                    eventloop::run(poller, listener, &state, &pool, &loop_cfg, i, &mailboxes);
                })?,
        );
    }
    Ok(ServerHandle {
        addr,
        state,
        loops: handles,
        mailboxes,
        pool: Some(pool),
    })
}

/// Routes one parsed request with tracing, per-route latency metrics,
/// and the access/slow-query logs. Runs on a worker thread for
/// CPU-bound routes, on the loop thread for inline ones.
pub(crate) fn serve_request(state: &Arc<AppState>, req: &Request) -> Response {
    state.http.record_request();
    let started = Instant::now();
    let label = route_label(&req.method, &req.path);
    // One trace per request, on the worker thread serving it; the
    // guard publishes even when the handler panics.
    let trace = questpro_trace::begin(format!("{} {}", req.method, req.path));
    let trace_id = trace.as_ref().map(questpro_trace::ActiveTrace::id);
    // A panicking handler must cost exactly one response.
    let mut resp = catch_unwind(AssertUnwindSafe(|| route(state, req))).unwrap_or_else(|_| {
        // The flight recorder already dumped context to stderr from
        // inside the panic hook; leave one correlatable event too.
        questpro_log::emit_traced(
            trace_id,
            Level::Error,
            "server.panic",
            format!("handler panicked: {} {}", req.method, req.path),
            vec![("route", label.into())],
        );
        Response::error(500, "request handler panicked")
    });
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    record_route(label, elapsed_ns);
    if let Some(t) = trace {
        resp.trace_id = Some(t.id());
        let rec = t.finish();
        slow_query_log(state, label, &rec);
    }
    // The access log: one event per request, carrying the same ID the
    // response echoes as X-Questpro-Trace-Id.
    if questpro_log::enabled(Level::Info) {
        questpro_log::emit_traced(
            trace_id,
            Level::Info,
            "server.access",
            format!("{} {}", req.method, req.path),
            vec![
                ("route", label.into()),
                ("status", resp.status.into()),
                ("bytes", resp.body.len().into()),
                ("latency_ns", elapsed_ns.into()),
            ],
        );
    }
    if req.wants_close() {
        resp.close = true;
    }
    resp
}

/// Routes eligible for the slow-query log: the ones that run inference
/// or feedback rounds (the paper's Section VI latency subjects).
const SLOW_ROUTES: &[&str] = &[
    "POST /eval",
    "POST /infer",
    "POST /sessions",
    "POST /sessions/:id/infer",
    "POST /sessions/:id/feedback",
];

/// Emits one warn event with per-stage self-times when an inference
/// route exceeded the configured threshold.
fn slow_query_log(state: &AppState, label: &'static str, rec: &questpro_trace::TraceRecord) {
    if state.slow_query_ns == 0
        || rec.total_ns < state.slow_query_ns
        || !SLOW_ROUTES.contains(&label)
        || !questpro_log::enabled(Level::Warn)
    {
        return;
    }
    let mut fields: Vec<(&'static str, questpro_log::Value)> = vec![
        ("route", label.into()),
        ("total_ns", rec.total_ns.into()),
        ("spans", rec.spans.len().into()),
    ];
    // Stage names are dotted (`infer.topk`), so they can never collide
    // with the envelope keys above.
    for (stage, _calls, self_ns) in rec.stage_totals() {
        fields.push((stage, self_ns.into()));
    }
    questpro_log::emit_traced(
        Some(rec.id),
        Level::Warn,
        "server.slow",
        format!("slow request: {}", rec.label),
        fields,
    );
}

/// Counts and logs a request that could not be parsed off the wire
/// (or, for `408`, one whose bytes stalled past the read timeout).
pub(crate) fn unreadable(state: &Arc<AppState>, status: u16, msg: &str) -> Response {
    state.http.record_request();
    // No parsed request means no recorded trace, but the rejection must
    // still be correlatable: mint an ID from the same sequence, echo it
    // on the response, and stamp the log event with it.
    let trace_id = questpro_trace::enabled().then(questpro_trace::mint_id);
    if questpro_log::enabled(Level::Warn) {
        questpro_log::emit_traced(
            trace_id,
            Level::Warn,
            "server.http",
            format!("unreadable request: {msg}"),
            vec![("status", status.into())],
        );
    }
    let mut resp = Response::error(status, msg);
    resp.trace_id = trace_id;
    resp.close = true;
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut reader = BufReader::new(&mut s);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        let body = rest.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_healthz_and_shuts_down_cleanly() {
        let handle = start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let (status, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = get(addr, "/no-such-route");
        assert_eq!(status, 404);
        assert!(!handle.is_shutting_down());
        handle.join();
        // The port is released: either connect fails or the request
        // goes unanswered by our (now gone) acceptor.
        assert!(
            TcpStream::connect(addr).is_err() || get_after_shutdown(addr),
            "server must stop serving after join()"
        );
    }

    fn get_after_shutdown(addr: SocketAddr) -> bool {
        // A connect may still succeed briefly (listen backlog); a full
        // exchange must not.
        let Ok(mut s) = TcpStream::connect(addr) else {
            return true;
        };
        s.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let _ = write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        let mut buf = [0u8; 1];
        !matches!(s.read(&mut buf), Ok(n) if n > 0)
    }
}
