//! Request routing and JSON endpoint handlers.
//!
//! Routes are dispatched on `(method, path segments)`. Handlers are
//! pure functions from parsed wire JSON to a [`Response`]; every error
//! path returns a `{"error": ...}` envelope with a 4xx/5xx status —
//! malformed input must never panic a worker (the connection loop
//! additionally wraps handlers in `catch_unwind` as a last line of
//! defense).
//!
//! Endpoint map:
//!
//! | Method & path                  | Action                              |
//! |--------------------------------|-------------------------------------|
//! | `GET  /healthz`                | liveness probe                      |
//! | `GET  /metrics`                | Prometheus-style counters           |
//! | `GET  /debug/traces`           | recent request traces (JSON)        |
//! | `GET  /debug/logs`             | recent structured log events (JSON) |
//! | `GET  /debug/sessions`         | recent session telemetry (JSON)     |
//! | `GET  /ontologies`             | list registered worlds              |
//! | `POST /ontologies`             | register a world (triple text, or a |
//! |                                | base64 binary snapshot)             |
//! | `GET  /ontologies/:name`       | materialize + describe one world    |
//! | `POST /ontologies/:name/update`| batched triple inserts/deletes      |
//! | `POST /eval`                   | evaluate a SPARQL union             |
//! | `POST /infer`                  | one-shot top-k inference            |
//! | `POST /sessions`               | start an interactive session        |
//! | `GET  /sessions`               | list live sessions                  |
//! | `GET  /sessions/:id`           | session state + pending question    |
//! | `DELETE /sessions/:id`         | drop a session                      |
//! | `POST /sessions/:id/infer`     | current inference step (question)   |
//! | `POST /sessions/:id/feedback`  | answer the pending question         |
//! | `GET  /sessions/:id/candidates`| the ranked candidate queries        |
//! | `GET  /sessions/:id/snapshot`  | serialized session state            |
//! | `POST /sessions/restore`       | resume a session from a snapshot    |
//! | `POST /shutdown`               | begin graceful shutdown             |
//!
//! Live updates and sessions: every session is pinned to the ontology
//! *version* it started on (its candidates and provenance reference
//! that version's ids). `POST /ontologies/:name/update` installs a new
//! head version without touching pinned ones; once a pinned version
//! falls off the registry's bounded history, requests against that
//! session — and restores of its snapshots — fail with a named `410`
//! instead of silently answering from the wrong graph.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use questpro_core::{GreedyConfig, TopKConfig};
use questpro_engine::{evaluate_union_with, provenance_of_union_with};
use questpro_feedback::{
    FeedbackConfig, InteractiveSession, PendingQuestion, Phase, SessionConfig, SessionError,
};
use questpro_graph::{exformat, ExampleSet, Ontology, Subgraph};
use questpro_query::{sparql, GeneralizationWeights, UnionQuery};
use questpro_wire::{Json, Limits};

use crate::http::{Request, Response};
use crate::metrics::{render, HttpCounters, OntologyCounters};
use crate::registry::{Registry, VersionLookup};
use crate::sessions::{lock, SessionEntry, SessionManager};

/// Everything the handlers share; one per server, behind an `Arc`.
pub struct AppState {
    /// Named ontologies.
    pub registry: Registry,
    /// Live interactive sessions.
    pub sessions: SessionManager,
    /// Monotonic HTTP counters for `/metrics`.
    pub http: HttpCounters,
    /// Monotonic live-update counters for `/metrics`.
    pub ontology_updates: OntologyCounters,
    /// Set by `POST /shutdown`; the accept loop polls it.
    pub shutdown: Arc<AtomicBool>,
    /// Default `--threads` for inference when a request omits it.
    pub default_threads: usize,
    /// Cap on request bodies, bytes (shared with the HTTP reader).
    pub max_body: usize,
    /// Requests slower than this (on routes that run inference) produce
    /// a warn-level slow-query log event; 0 disables the slow log.
    pub slow_query_ns: u64,
}

impl AppState {
    /// A state with the built-in worlds and the given limits.
    pub fn new(
        default_threads: usize,
        max_body: usize,
        session_idle: Duration,
        max_sessions: usize,
    ) -> AppState {
        AppState {
            registry: Registry::with_builtins(),
            sessions: SessionManager::new(session_idle, max_sessions),
            http: HttpCounters::default(),
            ontology_updates: OntologyCounters::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            default_threads: default_threads.max(1),
            max_body,
            slow_query_ns: 500_000_000,
        }
    }
}

/// The fixed list of normalized route labels exported as the
/// `questpro_route_duration_ns` histogram family. Every label always
/// appears in `/metrics` (zero-filled when never hit); requests that
/// match no route — including 405s — land under `"other"`.
pub const ROUTES: &[&str] = &[
    "GET /healthz",
    "GET /metrics",
    "GET /debug/traces",
    "GET /debug/logs",
    "GET /debug/sessions",
    "GET /ontologies",
    "POST /ontologies",
    "GET /ontologies/:name",
    "POST /ontologies/:name/update",
    "POST /eval",
    "POST /infer",
    "POST /sessions",
    "GET /sessions",
    "GET /sessions/:id",
    "DELETE /sessions/:id",
    "POST /sessions/:id/infer",
    "POST /sessions/:id/feedback",
    "GET /sessions/:id/candidates",
    "GET /sessions/:id/snapshot",
    "POST /sessions/restore",
    "POST /shutdown",
    "other",
];

/// Whether a route is cheap enough to serve directly on the event-loop
/// thread instead of a worker: constant-time probes, metric/debug
/// scrapes, and the shutdown flag flip. Everything that can run
/// inference, materialize an ontology, or parse a client body goes to
/// the worker pool so the loop never blocks on CPU-bound work.
/// Unmatched requests (`"other"`, i.e. 404/405) are inline too — their
/// cost is one small error envelope.
pub fn is_inline(label: &str) -> bool {
    matches!(
        label,
        "GET /healthz"
            | "GET /metrics"
            | "GET /debug/traces"
            | "GET /debug/logs"
            | "GET /debug/sessions"
            | "POST /shutdown"
            | "other"
    )
}

/// Maps a request to its [`ROUTES`] label: the dispatch arms of
/// [`route`] with path parameters collapsed, or `"other"`.
pub fn route_label(method: &str, path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => "GET /healthz",
        ("GET", ["metrics"]) => "GET /metrics",
        ("GET", ["debug", "traces"]) => "GET /debug/traces",
        ("GET", ["debug", "logs"]) => "GET /debug/logs",
        ("GET", ["debug", "sessions"]) => "GET /debug/sessions",
        ("GET", ["ontologies"]) => "GET /ontologies",
        ("POST", ["ontologies"]) => "POST /ontologies",
        ("GET", ["ontologies", _]) => "GET /ontologies/:name",
        ("POST", ["ontologies", _, "update"]) => "POST /ontologies/:name/update",
        ("POST", ["eval"]) => "POST /eval",
        ("POST", ["infer"]) => "POST /infer",
        ("POST", ["sessions"]) => "POST /sessions",
        ("POST", ["sessions", "restore"]) => "POST /sessions/restore",
        ("GET", ["sessions"]) => "GET /sessions",
        ("GET", ["sessions", _]) => "GET /sessions/:id",
        ("DELETE", ["sessions", _]) => "DELETE /sessions/:id",
        ("POST", ["sessions", _, "infer"]) => "POST /sessions/:id/infer",
        ("POST", ["sessions", _, "feedback"]) => "POST /sessions/:id/feedback",
        ("GET", ["sessions", _, "candidates"]) => "GET /sessions/:id/candidates",
        ("GET", ["sessions", _, "snapshot"]) => "GET /sessions/:id/snapshot",
        ("POST", ["shutdown"]) => "POST /shutdown",
        _ => "other",
    }
}

/// Dispatches one request to its handler.
pub fn route(state: &AppState, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => Response::text(
            200,
            render(
                &state.http,
                state.sessions.count(),
                &state.ontology_updates,
                state.registry.versions_open(),
            ),
        ),
        ("GET", ["debug", "traces"]) => debug_traces(req),
        ("GET", ["debug", "logs"]) => debug_logs(req),
        ("GET", ["debug", "sessions"]) => debug_sessions(req),
        ("GET", ["ontologies"]) => list_ontologies(state),
        ("POST", ["ontologies"]) => create_ontology(state, req),
        ("GET", ["ontologies", name]) => describe_ontology(state, name),
        ("POST", ["ontologies", name, "update"]) => update_ontology(state, name, req),
        ("POST", ["eval"]) => eval_query(state, req),
        ("POST", ["infer"]) => one_shot_infer(state, req),
        ("POST", ["sessions"]) => create_session(state, req),
        ("POST", ["sessions", "restore"]) => restore_session(state, req),
        ("GET", ["sessions"]) => list_sessions(state),
        ("GET", ["sessions", id]) => with_session(state, id, session_state_json),
        ("DELETE", ["sessions", id]) => delete_session(state, id),
        ("POST", ["sessions", id, "infer"]) => with_session(state, id, session_state_json),
        ("POST", ["sessions", id, "feedback"]) => session_feedback(state, id, req),
        ("GET", ["sessions", id, "candidates"]) => with_session(state, id, |_, entry| {
            Response::json(
                200,
                Json::obj([(
                    "candidates",
                    Json::Arr(
                        entry
                            .session
                            .candidates()
                            .iter()
                            .map(|q| Json::str(sparql::format_union(q)))
                            .collect(),
                    ),
                )])
                .to_text(),
            )
        }),
        ("GET", ["sessions", id, "snapshot"]) => with_session(state, id, |ont, entry| {
            // Embed the ontology pin so the snapshot is self-contained:
            // `POST /sessions/restore` refuses version mismatches by name.
            let mut snap = entry.session.snapshot(ont);
            if let Json::Obj(pairs) = &mut snap {
                pairs.push(("ontology".to_string(), Json::str(entry.ontology.clone())));
                pairs.push(("ontology_version".to_string(), Json::from(entry.version)));
            }
            Response::json(200, snap.to_text())
        }),
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::SeqCst);
            let mut resp = Response::json(
                200,
                Json::obj([("status", Json::str("shutting down"))]).to_text(),
            );
            resp.close = true;
            resp
        }
        (
            _,
            ["healthz" | "metrics" | "debug" | "ontologies" | "eval" | "infer" | "sessions"
            | "shutdown", ..],
        ) => Response::error(405, "method not allowed for this path"),
        _ => Response::error(404, "no such route"),
    }
}

// ---------------------------------------------------------------------
// Request plumbing
// ---------------------------------------------------------------------

/// Parses the request body as JSON within the configured limits.
fn body_json(state: &AppState, req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "request body must be UTF-8 JSON"))?;
    questpro_wire::parse_with(
        text,
        Limits {
            max_bytes: state.max_body,
            ..Limits::default()
        },
    )
    .map_err(|e| Response::error(400, &format!("invalid JSON: {e}")))
}

/// Strict non-negative decimal parse for untrusted path/query text.
///
/// Unlike `str::parse`, this rejects a leading `+`, surrounding
/// whitespace, and non-ASCII digits, so `+7` or `٧` never aliases a
/// session id or limit.
fn strict_decimal(s: &str) -> Option<u64> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// A required string field of a JSON object body.
fn str_field<'a>(body: &'a Json, key: &str) -> Result<&'a str, Response> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| Response::error(422, &format!("missing string field {key:?}")))
}

fn ontology_of(state: &AppState, name: &str) -> Result<Arc<Ontology>, Response> {
    state
        .registry
        .get(name)
        .ok_or_else(|| Response::error(404, &format!("no ontology named {name:?}")))
}

fn examples_of(ont: &Ontology, text: &str) -> Result<ExampleSet, Response> {
    let set = exformat::parse_examples(ont, text)
        .map_err(|e| Response::error(422, &format!("bad examples: {e}")))?;
    if set.is_empty() {
        return Err(Response::error(422, "the example-set is empty"));
    }
    Ok(set)
}

fn query_of(text: &str) -> Result<UnionQuery, Response> {
    sparql::parse_union(text).map_err(|e| Response::error(422, &format!("bad query: {e}")))
}

/// Extracts the shared inference knobs (`k`, `w1`, `w2`, `threads`,
/// `optional`) with the same defaults the CLI uses.
fn topk_config(state: &AppState, body: &Json) -> TopKConfig {
    let defaults = TopKConfig::default();
    let num = |key: &str, dflt: f64| body.get(key).and_then(Json::as_f64).unwrap_or(dflt);
    TopKConfig {
        k: body
            .get("k")
            .and_then(Json::as_usize)
            .unwrap_or(defaults.k)
            .max(1),
        weights: GeneralizationWeights::new(
            num("w1", defaults.weights.w1),
            num("w2", defaults.weights.w2),
        ),
        greedy: GreedyConfig {
            allow_optional: body
                .get("optional")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            ..Default::default()
        },
        threads: body
            .get("threads")
            .and_then(Json::as_usize)
            .unwrap_or(state.default_threads)
            .max(1),
    }
}

/// `{edges: [[s,p,o]...], nodes: [v...], text: human description}`.
fn subgraph_json(ont: &Ontology, g: &Subgraph) -> Json {
    Json::obj([
        (
            "edges",
            Json::Arr(
                g.edges()
                    .iter()
                    .map(|&e| {
                        let d = ont.edge(e);
                        Json::Arr(vec![
                            Json::str(ont.value_str(d.src)),
                            Json::str(ont.pred_str(d.pred)),
                            Json::str(ont.value_str(d.dst)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "nodes",
            Json::Arr(
                g.nodes()
                    .iter()
                    .map(|&n| Json::str(ont.value_str(n)))
                    .collect(),
            ),
        ),
        ("text", Json::str(g.describe(ont))),
    ])
}

// ---------------------------------------------------------------------
// Ontologies
// ---------------------------------------------------------------------

fn list_ontologies(state: &AppState) -> Response {
    let items: Vec<Json> = state
        .registry
        .list()
        .into_iter()
        .map(|(name, loaded)| {
            Json::obj([("name", Json::str(name)), ("loaded", Json::Bool(loaded))])
        })
        .collect();
    Response::json(200, Json::obj([("ontologies", Json::Arr(items))]).to_text())
}

fn create_ontology(state: &AppState, req: &Request) -> Response {
    let body = match body_json(state, req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let name = match str_field(&body, "name") {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    // A world arrives either as triple text or as a base64-encoded
    // binary snapshot (`questpro store build`); snapshot wins if both
    // fields are present.
    let result = if let Some(b64) = body.get("snapshot_b64").and_then(Json::as_str) {
        let bytes = match questpro_wire::base64::decode(b64) {
            Ok(b) => b,
            Err(e) => return Response::error(422, &format!("snapshot_b64: {e}")),
        };
        state.registry.insert_snapshot(name, &bytes)
    } else {
        match str_field(&body, "triples") {
            Ok(t) => state.registry.insert(name, t),
            Err(resp) => return resp,
        }
    };
    match result {
        Ok(ont) => Response::json(
            201,
            Json::obj([
                ("name", Json::str(name)),
                ("nodes", Json::from(ont.node_count())),
                ("edges", Json::from(ont.edge_count())),
            ])
            .to_text(),
        ),
        Err(e) => Response::error(409, &e),
    }
}

fn describe_ontology(state: &AppState, name: &str) -> Response {
    match state.registry.get_versioned(name) {
        Some((version, ont)) => Response::json(
            200,
            Json::obj([
                ("name", Json::str(name)),
                ("version", Json::from(version)),
                ("nodes", Json::from(ont.node_count())),
                ("edges", Json::from(ont.edge_count())),
            ])
            .to_text(),
        ),
        None => Response::error(404, &format!("no ontology named {name:?}")),
    }
}

/// `POST /ontologies/:name/update` — applies a batched insert/delete
/// to the named world's head and installs the result as a new version.
/// Sessions pinned to older versions are untouched until their version
/// falls off the bounded history. Every rejection is a 4xx with a
/// named reason and bumps the rejection counter; the head is never
/// left half-updated (the registry validates the whole batch before
/// installing anything).
fn update_ontology(state: &AppState, name: &str, req: &Request) -> Response {
    let reject = |resp: Response| {
        state.ontology_updates.record_rejection();
        resp
    };
    let body = match body_json(state, req) {
        Ok(b) => b,
        Err(resp) => return reject(resp),
    };
    let delta = match questpro_wire::update::parse_update(&body) {
        Ok(d) => d,
        Err(e) => return reject(Response::error(422, &format!("bad update: {e}"))),
    };
    match state.registry.update(name, &delta) {
        Ok((version, ont, summary)) => {
            state.ontology_updates.record_update();
            Response::json(
                200,
                Json::obj([
                    ("name", Json::str(name)),
                    ("version", Json::from(version)),
                    ("inserted", Json::from(summary.inserted)),
                    ("deleted", Json::from(summary.deleted)),
                    ("nodes", Json::from(ont.node_count())),
                    ("edges", Json::from(ont.edge_count())),
                    ("edge_ids_stable", Json::Bool(summary.edge_ids_stable)),
                ])
                .to_text(),
            )
        }
        Err((status, msg)) => reject(Response::error(status, &msg)),
    }
}

// ---------------------------------------------------------------------
// One-shot inference and evaluation
// ---------------------------------------------------------------------

fn eval_query(state: &AppState, req: &Request) -> Response {
    let body = match body_json(state, req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let parsed = (|| {
        let ont = ontology_of(state, str_field(&body, "ontology")?)?;
        let query = query_of(str_field(&body, "query")?)?;
        Ok::<_, Response>((ont, query))
    })();
    let (ont, query) = match parsed {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let threads = body
        .get("threads")
        .and_then(Json::as_usize)
        .unwrap_or(state.default_threads)
        .max(1);
    let results = evaluate_union_with(&ont, &query, threads);
    let mut pairs = vec![(
        "results",
        Json::Arr(
            results
                .iter()
                .map(|&r| Json::str(ont.value_str(r)))
                .collect(),
        ),
    )];
    if let Some(value) = body.get("provenance").and_then(Json::as_str) {
        let Some(node) = ont.node_by_value(value) else {
            return Response::error(422, &format!("no node with value {value:?}"));
        };
        if !results.contains(&node) {
            return Response::error(422, &format!("{value} is not a result of the query"));
        }
        let limit = body
            .get("limit")
            .and_then(Json::as_usize)
            .unwrap_or(8)
            .max(1);
        let graphs = provenance_of_union_with(&ont, &query, node, Some(limit), threads);
        pairs.push((
            "provenance",
            Json::Arr(graphs.iter().map(|g| subgraph_json(&ont, g)).collect()),
        ));
    }
    Response::json(200, Json::obj(pairs).to_text())
}

fn one_shot_infer(state: &AppState, req: &Request) -> Response {
    let body = match body_json(state, req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let parsed = (|| {
        let ont = ontology_of(state, str_field(&body, "ontology")?)?;
        let examples = examples_of(&ont, str_field(&body, "examples")?)?;
        Ok::<_, Response>((ont, examples))
    })();
    let (ont, examples) = match parsed {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let cfg = topk_config(state, &body);
    let with_diseqs = body.get("diseqs").and_then(Json::as_bool).unwrap_or(false);
    let (candidates, stats) = questpro_core::infer_top_k(&ont, &examples, &cfg);
    if candidates.is_empty() {
        return Response::error(422, "no consistent query found for the example-set");
    }
    let rendered: Vec<Json> = candidates
        .iter()
        .map(|q| {
            let q = if with_diseqs {
                questpro_core::with_all_diseqs(&ont, q, &examples)
            } else {
                q.clone()
            };
            Json::obj([
                ("query", Json::str(sparql::format_union(&q))),
                ("cost", Json::Num(q.cost(cfg.weights))),
                ("branches", Json::from(q.len())),
                ("vars", Json::from(q.total_vars())),
                ("diseqs", Json::from(q.diseq_count())),
            ])
        })
        .collect();
    Response::json(
        200,
        Json::obj([
            ("candidates", Json::Arr(rendered)),
            (
                "stats",
                Json::obj([
                    ("algorithm1_calls", Json::from(stats.algorithm1_calls)),
                    ("rounds", Json::from(stats.rounds)),
                    ("merges_applied", Json::from(stats.merges_applied)),
                    ("states_examined", Json::from(stats.states_examined)),
                    ("merge_cache_hits", Json::from(stats.merge_cache_hits)),
                    ("consistency_checks", Json::from(stats.consistency_checks)),
                    (
                        "consistency_cache_hits",
                        Json::from(stats.consistency_cache_hits),
                    ),
                    (
                        "total_nanos",
                        Json::from(u64::try_from(stats.total_nanos).unwrap_or(u64::MAX)),
                    ),
                ]),
            ),
        ])
        .to_text(),
    )
}

// ---------------------------------------------------------------------
// Interactive sessions
// ---------------------------------------------------------------------

fn create_session(state: &AppState, req: &Request) -> Response {
    let body = match body_json(state, req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let ont_name = match str_field(&body, "ontology") {
        Ok(n) => n.to_string(),
        Err(resp) => return resp,
    };
    let parsed = (|| {
        // Pin the session to the head version it starts on: its
        // candidates and provenance will reference this exact graph.
        let (version, ont) = state
            .registry
            .get_versioned(&ont_name)
            .ok_or_else(|| Response::error(404, &format!("no ontology named {ont_name:?}")))?;
        let examples = examples_of(&ont, str_field(&body, "examples")?)?;
        Ok::<_, Response>((version, ont, examples))
    })();
    let (version, ont, examples) = match parsed {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let feedback_defaults = FeedbackConfig::default();
    let cfg = SessionConfig {
        topk: topk_config(state, &body),
        feedback: FeedbackConfig {
            prov_limit: body
                .get("prov_limit")
                .and_then(Json::as_usize)
                .unwrap_or(feedback_defaults.prov_limit)
                .max(1),
            max_questions: body
                .get("max_questions")
                .and_then(Json::as_usize)
                .unwrap_or(feedback_defaults.max_questions),
        },
        // Defaults mirror the CLI `session` flags: refinement and
        // robust diagnosis are opt-in.
        refine: body.get("refine").and_then(Json::as_bool).unwrap_or(false),
        robust: body.get("robust").and_then(Json::as_bool).unwrap_or(false),
    };
    let seed = body.get("seed").and_then(Json::as_u64).unwrap_or(0);
    let session = match InteractiveSession::start(&ont, &examples, &cfg, seed) {
        Ok(s) => s,
        Err(e @ (SessionError::EmptyExamples | SessionError::NoCandidates)) => {
            return Response::error(422, &e.to_string())
        }
        Err(e) => return Response::error(500, &e.to_string()),
    };
    match state.sessions.create(session, ont_name, version, seed) {
        Ok(id) => match state.sessions.get(id) {
            Some(entry) => {
                let mut entry = lock(&entry);
                // Cold-start convergence: a session whose candidate set
                // collapses to one during start never sees feedback.
                if entry.session.is_done() {
                    entry.finish(questpro_telemetry::Outcome::Converged);
                }
                let mut resp = entry_json(&ont, id, &entry);
                resp.status = 201;
                resp
            }
            None => Response::error(500, "session vanished during creation"),
        },
        Err(e) => Response::error(429, &e),
    }
}

/// `POST /sessions/restore` — resumes a session from a snapshot taken
/// by `GET /sessions/:id/snapshot`. The snapshot carries its ontology
/// pin (`ontology` + `ontology_version`); restoring against an evicted
/// version is a named `410`, and a snapshot whose internal state fails
/// validation is a `422` — never a silent answer from the wrong graph.
fn restore_session(state: &AppState, req: &Request) -> Response {
    let body = match body_json(state, req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let name = match str_field(&body, "ontology") {
        Ok(n) => n.to_string(),
        Err(resp) => return resp,
    };
    let Some(version) = body.get("ontology_version").and_then(Json::as_u64) else {
        return Response::error(422, "missing integer field \"ontology_version\"");
    };
    let ont = match pinned_ontology(state, &name, version, "snapshot") {
        Ok(o) => o,
        Err(resp) => return resp,
    };
    let session = match InteractiveSession::restore(&ont, &body) {
        Ok(s) => s,
        Err(e @ SessionError::BadSnapshot(_)) => return Response::error(422, &e.to_string()),
        Err(e) => return Response::error(500, &e.to_string()),
    };
    let seed = body
        .get("seed")
        .and_then(Json::as_str)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    match state.sessions.create(session, name, version, seed) {
        Ok(id) => match state.sessions.get(id) {
            Some(entry) => {
                let mut entry = lock(&entry);
                if entry.session.is_done() {
                    entry.finish(questpro_telemetry::Outcome::Converged);
                }
                let mut resp = entry_json(&ont, id, &entry);
                resp.status = 201;
                resp
            }
            None => Response::error(500, "session vanished during creation"),
        },
        Err(e) => Response::error(429, &e),
    }
}

fn list_sessions(state: &AppState) -> Response {
    let items: Vec<Json> = state
        .sessions
        .list()
        .into_iter()
        .map(|(id, entry)| {
            let entry = lock(&entry);
            Json::obj([
                ("id", Json::from(id)),
                ("ontology", Json::str(entry.ontology.clone())),
                ("phase", Json::str(phase_str(entry.session.phase()))),
                (
                    "questions_asked",
                    Json::from(entry.session.transcript().len() + entry.session.refine_questions()),
                ),
            ])
        })
        .collect();
    Response::json(200, Json::obj([("sessions", Json::Arr(items))]).to_text())
}

/// `GET /debug/traces?limit=N` — the most recent request traces, newest
/// first, with per-span self/total times. A malformed or out-of-range
/// `limit` is a 400, never a panic.
fn debug_traces(req: &Request) -> Response {
    let mut limit = 16usize;
    for pair in req.query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == "limit" {
            match strict_decimal(v) {
                Some(n) if (1..=1024).contains(&n) => limit = n as usize,
                _ => return Response::error(400, "limit must be an integer in 1..=1024"),
            }
        }
    }
    let traces = questpro_trace::registry::recent(limit);
    Response::json(
        200,
        Json::obj([
            ("enabled", Json::Bool(questpro_trace::enabled())),
            (
                "dropped",
                Json::num(questpro_trace::registry::dropped_total() as f64),
            ),
            ("traces", Json::Arr(traces.iter().map(trace_json).collect())),
        ])
        .to_text(),
    )
}

/// `GET /debug/logs?limit=N&level=L` — the most recent structured log
/// events, newest first, as JSON. `limit` is validated exactly like
/// `/debug/traces` (1..=1024 → 400 otherwise); `level` filters to
/// events at or above the named level and unknown names are a 400.
fn debug_logs(req: &Request) -> Response {
    let mut limit = 64usize;
    let mut min_level = questpro_log::Level::Trace;
    for pair in req.query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match k {
            "limit" => match strict_decimal(v) {
                Some(n) if (1..=1024).contains(&n) => limit = n as usize,
                _ => return Response::error(400, "limit must be an integer in 1..=1024"),
            },
            "level" => match questpro_log::Level::parse(v) {
                Some(l) => min_level = l,
                None => {
                    return Response::error(
                        400,
                        "level must be one of trace, debug, info, warn, error",
                    )
                }
            },
            _ => {}
        }
    }
    // Surface whatever this worker thread still holds buffered, so a
    // scrape immediately after a request sees that request's events.
    questpro_log::flush();
    let events = questpro_log::recent(limit, min_level);
    Response::json(
        200,
        Json::obj([
            ("enabled", Json::Bool(questpro_log::level().is_some())),
            (
                "level",
                questpro_log::level().map_or(Json::Null, |l| Json::str(l.as_str())),
            ),
            ("emitted", Json::num(questpro_log::emitted_total() as f64)),
            ("dropped", Json::num(questpro_log::dropped_total() as f64)),
            (
                "events",
                Json::Arr(events.iter().map(questpro_log::Event::to_json).collect()),
            ),
        ])
        .to_text(),
    )
}

/// `GET /debug/sessions?limit=N&outcome=O` — the most recent finished
/// sessions' telemetry records, newest first, plus the aggregator's
/// exact drop accounting. `limit` is validated like `/debug/traces`
/// (1..=1024 → 400 otherwise); `outcome` filters to one terminal
/// outcome and unknown names are a 400. Unknown query keys are
/// ignored, matching the other debug endpoints.
fn debug_sessions(req: &Request) -> Response {
    let mut limit = 32usize;
    let mut outcome = None;
    for pair in req.query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match k {
            "limit" => match strict_decimal(v) {
                Some(n) if (1..=1024).contains(&n) => limit = n as usize,
                _ => return Response::error(400, "limit must be an integer in 1..=1024"),
            },
            "outcome" => match questpro_telemetry::Outcome::parse(v) {
                Some(o) => outcome = Some(o),
                None => {
                    return Response::error(
                        400,
                        "outcome must be one of converged, abandoned, evicted",
                    )
                }
            },
            _ => {}
        }
    }
    let (records_total, records_dropped, keys_live) = questpro_telemetry::counters();
    let sessions = questpro_telemetry::recent(limit, outcome);
    Response::json(
        200,
        Json::obj([
            ("enabled", Json::Bool(questpro_telemetry::enabled())),
            ("records_total", Json::num(records_total as f64)),
            ("records_dropped", Json::num(records_dropped as f64)),
            ("keys_live", Json::from(keys_live)),
            (
                "sessions",
                Json::Arr(sessions.iter().map(session_record_json).collect()),
            ),
        ])
        .to_text(),
    )
}

/// Serializes one telemetry record for `GET /debug/sessions`.
fn session_record_json(r: &questpro_telemetry::SessionRecord) -> Json {
    Json::obj([
        ("trace_id", Json::from(r.trace_id)),
        ("ontology", Json::str(r.ontology.clone())),
        ("version", Json::from(r.version)),
        ("outcome", Json::str(r.outcome.as_str())),
        ("rounds", Json::from(r.rounds)),
        ("questions", Json::from(r.questions)),
        ("yes", Json::from(r.yes)),
        ("no", Json::from(r.no)),
        (
            "pool_sizes",
            Json::Arr(r.pool_sizes.iter().map(|&p| Json::from(p)).collect()),
        ),
        (
            "round_wall_ns",
            Json::Arr(r.round_wall_ns.iter().map(|&n| Json::from(n)).collect()),
        ),
        ("wall_ns", Json::from(r.wall_ns)),
        ("consistency_checks", Json::from(r.consistency_checks)),
        ("consistency_hits", Json::from(r.consistency_hits)),
        ("merge_lookups", Json::from(r.merge_lookups)),
        ("merge_hits", Json::from(r.merge_hits)),
    ])
}

/// Serializes one finished trace: spans come flat in pre-order with
/// their depth, so clients can rebuild the tree without recursion.
fn trace_json(t: &questpro_trace::TraceRecord) -> Json {
    let spans: Vec<Json> = t
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Json::obj([
                ("name", Json::str(s.name)),
                ("depth", Json::num(s.depth as f64)),
                ("start_ns", Json::num(s.start_ns as f64)),
                ("total_ns", Json::num(s.total_ns as f64)),
                ("self_ns", Json::num(t.self_ns(i) as f64)),
                (
                    "counters",
                    Json::Obj(
                        s.counters
                            .iter()
                            .map(|&(k, v)| (k.to_string(), Json::num(v as f64)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("id", Json::num(t.id as f64)),
        ("label", Json::str(&t.label)),
        ("total_ns", Json::num(t.total_ns as f64)),
        ("spans", Json::Arr(spans)),
    ])
}

fn delete_session(state: &AppState, id: &str) -> Response {
    match strict_decimal(id).and_then(|id| state.sessions.remove(id)) {
        Some(entry) => {
            // An already-converged session latched its outcome when it
            // finished; deleting an unfinished one abandons it.
            lock(&entry).finish(questpro_telemetry::Outcome::Abandoned);
            Response {
                status: 204,
                content_type: "application/json",
                body: Vec::new(),
                close: false,
                trace_id: None,
            }
        }
        None => Response::error(404, "no such session"),
    }
}

/// Resolves a `(name, version)` ontology pin, materializing a built-in
/// world's head first so a snapshot restored against a fresh server
/// still finds version 1. `what` names the pin holder in error
/// messages (`"session"` / `"snapshot"`). An evicted pin is a `410`
/// naming the stale version — the one outcome live updates must never
/// produce is a silent answer from the wrong graph.
fn pinned_ontology(
    state: &AppState,
    name: &str,
    version: u64,
    what: &str,
) -> Result<Arc<Ontology>, Response> {
    if state.registry.get_versioned(name).is_none() {
        return Err(Response::error(404, &format!("no ontology named {name:?}")));
    }
    match state.registry.get_version(name, version) {
        VersionLookup::Found(o) => Ok(o),
        VersionLookup::Evicted { head } => Err(Response::error(
            410,
            &format!(
                "{what} is pinned to {name:?} version {version}, which live updates have \
                 evicted (head is now {head}); its cached state cannot be answered safely"
            ),
        )),
        VersionLookup::Unknown => Err(Response::error(
            404,
            &format!(
                "{what} is pinned to {name:?} version {version}, which this server has never held"
            ),
        )),
    }
}

/// Looks a session up and runs `f` under its lock, with the session's
/// *pinned* ontology version resolved alongside (never the head — the
/// session's cached state references the pinned version's ids).
fn with_session(
    state: &AppState,
    id: &str,
    f: impl FnOnce(&Ontology, &mut SessionEntry) -> Response,
) -> Response {
    let Some(id_num) = strict_decimal(id) else {
        return Response::error(404, "session ids are integers");
    };
    let Some(entry) = state.sessions.get(id_num) else {
        return Response::error(404, "no such session");
    };
    let mut entry = lock(&entry);
    let (name, version) = (entry.ontology.clone(), entry.version);
    let ont = match pinned_ontology(state, &name, version, "session") {
        Ok(o) => o,
        Err(resp) => {
            if resp.status == 410 {
                // The pin fell off the bounded history: the session is
                // terminally unanswerable. First 410 latches it.
                entry.finish(questpro_telemetry::Outcome::Evicted);
            }
            return resp;
        }
    };
    f(&ont, &mut entry)
}

fn session_feedback(state: &AppState, id: &str, req: &Request) -> Response {
    let body = match body_json(state, req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let Some(answer) = body.get("answer").and_then(Json::as_bool) else {
        return Response::error(422, "missing boolean field \"answer\"");
    };
    let Some(id_num) = strict_decimal(id) else {
        return Response::error(404, "session ids are integers");
    };
    with_session(state, id, |ont, entry| {
        match entry.session.answer(ont, answer) {
            Ok(()) => {
                if entry.session.is_done() {
                    entry.finish(questpro_telemetry::Outcome::Converged);
                }
                let mut resp = entry_json(ont, id_num, entry);
                resp.status = 200;
                resp
            }
            Err(SessionError::NothingPending) => {
                Response::error(409, "no question is pending (session is done)")
            }
            Err(e) => Response::error(500, &e.to_string()),
        }
    })
}

fn session_state_json(ont: &Ontology, entry: &mut SessionEntry) -> Response {
    // The id is not stored inside the entry; reuse entry_json via a
    // wrapper that omits it would complicate callers — the id the
    // client used is echoed from the path, so 0 is never exposed: all
    // `with_session` callers route through here only after resolving
    // the entry by that id. Render without the id field instead.
    let mut pairs = entry_pairs(ont, entry);
    pairs.retain(|(k, _)| *k != "id");
    Response::json(
        200,
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_text(),
    )
}

fn entry_json(ont: &Ontology, id: u64, entry: &SessionEntry) -> Response {
    let mut pairs = entry_pairs(ont, entry);
    pairs[0] = ("id", Json::from(id));
    Response::json(
        200,
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_text(),
    )
}

fn entry_pairs(ont: &Ontology, entry: &SessionEntry) -> Vec<(&'static str, Json)> {
    let s = &entry.session;
    let pending = match s.pending() {
        None => Json::Null,
        Some(PendingQuestion::Select {
            result, provenance, ..
        }) => Json::obj([
            ("kind", Json::str("select")),
            ("result", Json::str(ont.value_str(*result))),
            ("provenance", subgraph_json(ont, provenance)),
        ]),
        Some(PendingQuestion::Refine {
            result, provenance, ..
        }) => Json::obj([
            ("kind", Json::str("refine")),
            ("result", Json::str(ont.value_str(*result))),
            ("provenance", subgraph_json(ont, provenance)),
        ]),
    };
    vec![
        ("id", Json::Null),
        ("ontology", Json::str(entry.ontology.clone())),
        ("ontology_version", Json::from(entry.version)),
        ("seed", Json::from(entry.seed)),
        ("phase", Json::str(phase_str(s.phase()))),
        (
            "live",
            Json::Arr(s.live().iter().map(|&i| Json::from(i)).collect()),
        ),
        (
            "questions_asked",
            Json::from(s.transcript().len() + s.refine_questions()),
        ),
        ("pending", pending),
        (
            "final",
            s.final_query()
                .map_or(Json::Null, |q| Json::str(sparql::format_union(q))),
        ),
        (
            "suspect_examples",
            Json::Arr(
                s.suspect_examples()
                    .iter()
                    .map(|&i| Json::from(i))
                    .collect(),
            ),
        ),
    ]
}

fn phase_str(p: Phase) -> &'static str {
    match p {
        Phase::Selecting => "selecting",
        Phase::Refining => "refining",
        Phase::Done => "done",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> AppState {
        AppState::new(1, 1 << 20, Duration::from_secs(60), 4)
    }

    fn get(path: &str, query: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn strict_decimal_rejects_lenient_integer_forms() {
        assert_eq!(strict_decimal("7"), Some(7));
        assert_eq!(strict_decimal("0"), Some(0));
        for bad in ["+7", "-7", " 7", "7 ", "", "٧", "7a", "0x7"] {
            assert_eq!(strict_decimal(bad), None, "{bad:?}");
        }
        // Overflow is a rejection, not a wrap.
        assert_eq!(strict_decimal("18446744073709551616"), None);
    }

    #[test]
    fn plus_prefixed_trace_limits_are_400() {
        let st = state();
        for q in ["limit=+5", "limit=%", "limit= 5", "limit=0", "limit=1025"] {
            let resp = route(&st, &get("/debug/traces", q));
            assert_eq!(resp.status, 400, "{q}");
        }
        let resp = route(&st, &get("/debug/traces", "limit=5"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn malformed_log_limits_and_levels_are_400() {
        let st = state();
        for q in [
            "limit=+5",
            "limit=0",
            "limit=1025",
            "limit=",
            "level=loud",
            "level=",
            "level=+info",
        ] {
            let resp = route(&st, &get("/debug/logs", q));
            assert_eq!(resp.status, 400, "{q}");
        }
        for q in ["", "limit=5", "level=warn", "limit=1&level=ERROR"] {
            let resp = route(&st, &get("/debug/logs", q));
            assert_eq!(resp.status, 200, "{q}");
        }
    }

    #[test]
    fn malformed_session_telemetry_queries_are_400() {
        let st = state();
        for q in [
            "limit=+5",
            "limit=0",
            "limit=1025",
            "limit=",
            "outcome=done",
            "outcome=",
            "outcome=Converged",
        ] {
            let resp = route(&st, &get("/debug/sessions", q));
            assert_eq!(resp.status, 400, "{q}");
        }
        for q in [
            "",
            "limit=5",
            "outcome=converged",
            "outcome=abandoned",
            "outcome=evicted",
            "limit=1&outcome=evicted",
            "unknown=ignored",
        ] {
            let resp = route(&st, &get("/debug/sessions", q));
            assert_eq!(resp.status, 200, "{q}");
        }
    }

    #[test]
    fn route_labels_cover_the_dispatch_table() {
        // Every label produced is in ROUTES (the histogram ignores
        // anything else), and every concrete path maps as documented.
        for (method, path, want) in [
            ("GET", "/healthz", "GET /healthz"),
            ("GET", "/metrics", "GET /metrics"),
            ("GET", "/debug/traces", "GET /debug/traces"),
            ("GET", "/debug/logs", "GET /debug/logs"),
            ("GET", "/debug/sessions", "GET /debug/sessions"),
            ("GET", "/ontologies", "GET /ontologies"),
            ("POST", "/ontologies", "POST /ontologies"),
            ("GET", "/ontologies/movies", "GET /ontologies/:name"),
            (
                "POST",
                "/ontologies/movies/update",
                "POST /ontologies/:name/update",
            ),
            ("POST", "/eval", "POST /eval"),
            ("POST", "/infer", "POST /infer"),
            ("POST", "/sessions", "POST /sessions"),
            ("GET", "/sessions", "GET /sessions"),
            ("GET", "/sessions/7", "GET /sessions/:id"),
            ("DELETE", "/sessions/7", "DELETE /sessions/:id"),
            ("POST", "/sessions/7/infer", "POST /sessions/:id/infer"),
            (
                "POST",
                "/sessions/7/feedback",
                "POST /sessions/:id/feedback",
            ),
            (
                "GET",
                "/sessions/7/candidates",
                "GET /sessions/:id/candidates",
            ),
            ("GET", "/sessions/7/snapshot", "GET /sessions/:id/snapshot"),
            ("POST", "/sessions/restore", "POST /sessions/restore"),
            ("POST", "/shutdown", "POST /shutdown"),
            ("GET", "/no-such", "other"),
            ("PATCH", "/eval", "other"),
            ("GET", "/sessions/7/extra/deep", "other"),
        ] {
            let got = route_label(method, path);
            assert_eq!(got, want, "{method} {path}");
            assert!(ROUTES.contains(&got), "{got} must be a fixed label");
        }
    }

    #[test]
    fn plus_prefixed_session_ids_are_404_not_aliases() {
        let st = state();
        for id in ["+1", " 1", "1 ", "-1", "0x1"] {
            let resp = route(&st, &get(&format!("/sessions/{id}"), ""));
            assert_eq!(resp.status, 404, "{id}");
            let del = Request {
                method: "DELETE".to_string(),
                ..get(&format!("/sessions/{id}"), "")
            };
            assert_eq!(route(&st, &del).status, 404, "{id}");
        }
    }
}
