//! Raw readiness syscalls: the zero-dependency substrate of the event
//! loop.
//!
//! The workspace forbids external crates, and `std` exposes no
//! readiness API, so this module declares the handful of libc symbols
//! the event loop needs — `epoll_create1`/`epoll_ctl`/`epoll_wait` and
//! `eventfd` on Linux, `poll` and `pipe` elsewhere on Unix — and wraps
//! them in safe, owned types:
//!
//! * [`Poller`] — add/rearm/remove interest in a file descriptor and
//!   wait for readiness events, each tagged with the caller's token;
//! * [`Waker`] — a thread-safe doorbell another thread can ring to pull
//!   a blocked [`Poller::wait`] back to userspace (completion queues,
//!   shutdown).
//!
//! This is the **only** module in the workspace allowed to use
//! `unsafe`. The audit surface is deliberately tiny: every unsafe block
//! is a single FFI call whose arguments are sized slices or plain
//! integers owned by the caller, every returned fd is checked before
//! use, and no pointer outlives its call.

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;

/// Readiness reported for one registered file descriptor.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// Data can be read (or a peer hang-up makes read return promptly).
    pub readable: bool,
    /// The socket send buffer has room.
    pub writable: bool,
    /// Error or hang-up: the fd should be serviced and closed.
    pub error: bool,
}

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable.
    pub read: bool,
    /// Wake on writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// No readiness — hang-up/error only (epoll always reports those).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

#[cfg(target_os = "linux")]
mod backend {
    //! Linux: epoll, level-triggered.

    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirrors `struct epoll_event`, whose layout is per-architecture:
    /// the kernel (and glibc, via `__EPOLL_PACKED`) packs it **only on
    /// x86-64** (12 bytes, `data` at offset 4); everywhere else it has
    /// natural alignment (16 bytes, `data` at offset 8). Matching the
    /// ABI exactly matters: `epoll_wait` writes `n` kernel-sized
    /// entries into our buffer, so a mismatched size would overflow it,
    /// and `epoll_ctl` would read the token from the wrong offset.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // Pin the ABI-dependent size so a layout regression fails to
    // compile instead of corrupting memory at runtime.
    const _: () = assert!(
        std::mem::size_of::<EpollEvent>() == if cfg!(target_arch = "x86_64") { 12 } else { 16 }
    );

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// The epoll instance plus its scratch event buffer.
    pub struct Poller {
        epfd: RawFd,
        scratch: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new(capacity: usize) -> io::Result<Poller> {
            // SAFETY: no pointers; the returned fd is validated below.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                scratch: vec![EpollEvent { events: 0, data: 0 }; capacity.clamp(64, 4096)],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: usize) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            // SAFETY: `ev` is a live stack value for the duration of
            // the call; epoll_ctl does not retain the pointer.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, interest: Interest, token: usize) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        pub fn rearm(&self, fd: RawFd, interest: Interest, token: usize) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, Interest::NONE, 0)
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            // SAFETY: the scratch buffer is owned, non-empty, and its
            // length bounds `maxevents`; the kernel writes at most that
            // many entries before returning the count.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // EINTR: treat as a spurious wake
                }
                return Err(err);
            }
            for ev in &self.scratch[..n as usize] {
                let events = ev.events;
                out.push(Event {
                    token: ev.data as usize,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    error: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing an fd we own exactly once.
            unsafe { close(self.epfd) };
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            // RDHUP rides with read interest only: with it always armed,
            // a half-closed peer would level-trigger forever on a
            // connection whose reads are paused (request in flight).
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    /// An eventfd-backed doorbell.
    pub struct WakeFd {
        fd: RawFd,
    }

    impl WakeFd {
        pub fn new() -> io::Result<WakeFd> {
            const EFD_CLOEXEC: i32 = 0o2000000;
            const EFD_NONBLOCK: i32 = 0o4000;
            // SAFETY: no pointers; the returned fd is validated below.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakeFd { fd })
        }

        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 owned bytes; an EAGAIN (counter already
            // saturated) still leaves the fd readable, which is all a
            // wake needs.
            let _ = unsafe { write(self.fd, (&raw const one).cast::<u8>(), 8) };
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: reads into an owned 8-byte buffer; the fd is
            // nonblocking so this never parks.
            let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for WakeFd {
        fn drop(&mut self) {
            // SAFETY: closing an fd we own exactly once.
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    //! Portable Unix fallback: `poll(2)` plus a self-pipe doorbell.
    //!
    //! O(n) per wait, which is fine for development on non-Linux hosts;
    //! production deployments target the epoll backend.

    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// Registration table polled on every wait.
    pub struct Poller {
        entries: Vec<(RawFd, Interest, usize)>,
    }

    impl Poller {
        pub fn new(_capacity: usize) -> io::Result<Poller> {
            Ok(Poller {
                entries: Vec::new(),
            })
        }

        pub fn add(&mut self, fd: RawFd, interest: Interest, token: usize) -> io::Result<()> {
            self.entries.push((fd, interest, token));
            Ok(())
        }

        pub fn rearm(&mut self, fd: RawFd, interest: Interest, token: usize) -> io::Result<()> {
            match self.entries.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(e) => {
                    *e = (fd, interest, token);
                    Ok(())
                }
                None => Err(io::ErrorKind::NotFound.into()),
            }
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.entries.retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|&(fd, interest, _)| PollFd {
                    fd,
                    events: {
                        let mut e = 0i16;
                        if interest.read {
                            e |= POLLIN;
                        }
                        if interest.write {
                            e |= POLLOUT;
                        }
                        e
                    },
                    revents: 0,
                })
                .collect();
            // SAFETY: the vector is owned and its length bounds nfds.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &(_, _, token)) in fds.iter().zip(&self.entries) {
                if pfd.revents != 0 {
                    out.push(Event {
                        token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        error: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }

    /// A self-pipe doorbell.
    pub struct WakeFd {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl WakeFd {
        pub fn new() -> io::Result<WakeFd> {
            const F_SETFL: i32 = 4;
            const O_NONBLOCK: i32 = 0o4000;
            let mut fds = [0i32; 2];
            // SAFETY: pipe writes two fds into an owned array.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: plain-integer fcntl on fds we just created.
            unsafe {
                fcntl(fds[0], F_SETFL, O_NONBLOCK);
                fcntl(fds[1], F_SETFL, O_NONBLOCK);
            }
            Ok(WakeFd {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub fn raw_fd(&self) -> RawFd {
            self.read_fd
        }

        pub fn wake(&self) {
            let one = [1u8];
            // SAFETY: writes one owned byte; EAGAIN (pipe full) still
            // leaves the read end readable.
            let _ = unsafe { write(self.write_fd, one.as_ptr(), 1) };
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reads into an owned buffer on a nonblocking fd.
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for WakeFd {
        fn drop(&mut self) {
            // SAFETY: closing fds we own exactly once.
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!(
    "questpro-server's readiness loop needs epoll (Linux) or poll (Unix); \
     no non-Unix backend is implemented"
);

/// Readiness poller over the platform backend; see the module docs.
pub struct Poller {
    inner: backend::Poller,
}

impl Poller {
    /// A poller sized for roughly `capacity` registered descriptors.
    ///
    /// # Errors
    /// Propagates the backend creation failure (fd exhaustion).
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            inner: backend::Poller::new(capacity)?,
        })
    }

    /// Registers `fd` with `interest` under `token`.
    ///
    /// # Errors
    /// Propagates the backend registration failure.
    pub fn add(&mut self, fd: RawFd, interest: Interest, token: usize) -> io::Result<()> {
        self.inner.add(fd, interest, token)
    }

    /// Changes the interest (and token) of an already-registered `fd`.
    ///
    /// # Errors
    /// Propagates the backend failure (unknown fd).
    pub fn rearm(&mut self, fd: RawFd, interest: Interest, token: usize) -> io::Result<()> {
        self.inner.rearm(fd, interest, token)
    }

    /// Unregisters `fd`.
    ///
    /// # Errors
    /// Propagates the backend failure (unknown fd).
    pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.remove(fd)
    }

    /// Waits up to `timeout_ms` (`-1` = forever) and appends readiness
    /// events to `out`. Spurious wake-ups (EINTR) return cleanly with
    /// no events.
    ///
    /// # Errors
    /// Propagates a non-EINTR backend failure.
    pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
        self.inner.wait(timeout_ms, out)
    }
}

/// Widens the kernel accept backlog of an already-listening socket.
///
/// `std::net::TcpListener::bind` listens with a fixed backlog of 128.
/// When a client fleet connects in one burst, the overflow SYNs are
/// dropped and each affected client stalls for its ~1s retransmit
/// timeout — long enough at a few hundred simultaneous connects for
/// the earliest accepted connections to sit idle past the keep-alive
/// read timeout before the fleet is even established. POSIX allows
/// `listen(2)` on an already-listening socket to simply update the
/// backlog, so this widens it in place; the kernel still clamps the
/// value to `net.core.somaxconn`.
///
/// # Errors
/// Propagates the `listen` failure (e.g. the fd is not listening).
pub fn widen_listen_backlog(fd: RawFd, backlog: usize) -> io::Result<()> {
    extern "C" {
        fn listen(fd: i32, backlog: i32) -> i32;
    }
    // SAFETY: plain-integer syscall on a caller-owned fd; no pointers.
    let rc = unsafe { listen(fd, i32::try_from(backlog).unwrap_or(i32::MAX)) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A cloneable doorbell: ring it from any thread to wake a poller that
/// registered [`Waker::raw_fd`] for read interest.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<backend::WakeFd>,
}

impl Waker {
    /// A fresh doorbell.
    ///
    /// # Errors
    /// Propagates fd creation failure.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            inner: Arc::new(backend::WakeFd::new()?),
        })
    }

    /// The fd to register with a [`Poller`] (read interest).
    pub fn raw_fd(&self) -> RawFd {
        self.inner.raw_fd()
    }

    /// Makes the registered fd readable, pulling the poller out of
    /// `wait`. Never blocks; safe from any thread.
    pub fn wake(&self) {
        self.inner.wake();
    }

    /// Consumes pending wake signals so the fd stops reading ready.
    pub fn drain(&self) {
        self.inner.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_readable_after_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(8).unwrap();
        poller
            .add(server_side.as_raw_fd(), Interest::READ, 7)
            .unwrap();

        let mut events = Vec::new();
        poller.wait(0, &mut events).unwrap();
        assert!(
            events.iter().all(|e| !e.readable),
            "no bytes yet: {events:?}"
        );

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut events = Vec::new();
        for _ in 0..100 {
            poller.wait(50, &mut events).unwrap();
            if !events.is_empty() {
                break;
            }
        }
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{events:?}"
        );

        let mut sock = server_side;
        let mut buf = [0u8; 16];
        assert_eq!(sock.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn waker_pulls_wait_back_and_drains() {
        let mut poller = Poller::new(8).unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.raw_fd(), Interest::READ, 42).unwrap();

        // Without a wake, a zero-timeout wait sees nothing.
        let mut events = Vec::new();
        poller.wait(0, &mut events).unwrap();
        assert!(events.is_empty(), "{events:?}");

        // A wake from another thread makes the fd readable.
        let w2 = waker.clone();
        let t = std::thread::spawn(move || w2.wake());
        let mut events = Vec::new();
        for _ in 0..100 {
            poller.wait(50, &mut events).unwrap();
            if !events.is_empty() {
                break;
            }
        }
        t.join().unwrap();
        assert!(
            events.iter().any(|e| e.token == 42 && e.readable),
            "{events:?}"
        );

        // Draining clears it.
        waker.drain();
        let mut events = Vec::new();
        poller.wait(0, &mut events).unwrap();
        assert!(events.is_empty(), "drained waker must go quiet");
    }

    #[test]
    fn widen_listen_backlog_accepts_listeners_and_rejects_streams() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        widen_listen_backlog(listener.as_raw_fd(), 4096).expect("relisten widens the backlog");

        // A connected stream is not listening; listen(2) must refuse.
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        widen_listen_backlog(client.as_raw_fd(), 4096)
            .expect_err("a connected socket cannot listen");
        drop(server_side);
    }

    #[test]
    fn write_interest_fires_on_a_fresh_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(8).unwrap();
        poller
            .add(server_side.as_raw_fd(), Interest::BOTH, 3)
            .unwrap();
        let mut events = Vec::new();
        for _ in 0..100 {
            poller.wait(50, &mut events).unwrap();
            if events.iter().any(|e| e.writable) {
                break;
            }
        }
        assert!(
            events.iter().any(|e| e.token == 3 && e.writable),
            "an empty send buffer is writable: {events:?}"
        );
        // Rearm to read-only and the writable report stops.
        poller
            .rearm(server_side.as_raw_fd(), Interest::READ, 3)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(0, &mut events).unwrap();
        assert!(events.iter().all(|e| !e.writable), "{events:?}");
        poller.remove(server_side.as_raw_fd()).unwrap();
    }
}
