//! The readiness event loop: nonblocking accept, staged parsing, and
//! completion-driven writes.
//!
//! Each loop thread owns a [`Poller`] and a slab of [`Conn`] state
//! machines. The division of labor is strict:
//!
//! * **the loop thread** accepts, reads, parses, writes, and serves the
//!   handful of constant-time inline routes
//!   ([`crate::router::is_inline`]);
//! * **the worker pool** runs everything CPU-bound (inference, ontology
//!   materialization, JSON bodies). While a connection's request is in
//!   the pool the loop drops its read interest — kernel socket buffers
//!   provide backpressure — and the finished [`Response`] comes back on
//!   a completion queue, with a [`Waker`] ring pulling the loop out of
//!   its wait.
//!
//! Tokens carry a slot **generation** so a completion (or a stale
//! readiness event within one batch) for a connection that has since
//! closed and had its slot reused can never be delivered to the new
//! occupant — it is dropped on the floor by a generation mismatch.
//!
//! With more than one loop, loop 0 owns the listener and deals accepted
//! sockets round-robin via per-loop inboxes (connection sharding: a
//! connection lives its whole life on one loop, so no per-connection
//! state is ever shared between loops).
//!
//! Overload policy is unchanged from the thread-per-connection server:
//! a full worker queue sheds the *request* with a `503` and a
//! connection-close; a full connection slab sheds the *connection* the
//! same way at accept time. Graceful drain on shutdown: stop accepting,
//! close idle connections immediately, let in-flight requests finish
//! and flush, and force-close whatever remains at the drain deadline.

use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use questpro_log::Level;

use crate::conn::{Conn, DeadlineKind};
use crate::http::{encode_response, ReadError, Response};
use crate::pool::ThreadPool;
use crate::router::{is_inline, route_label, AppState};
use crate::server::{serve_request, unreadable};
use crate::sessions::lock;
use crate::sys::{Event, Interest, Poller, Waker};

/// Poller token of the listening socket (loop 0 only).
const TOKEN_LISTENER: usize = 0;
/// Poller token of the loop's waker eventfd/pipe.
const TOKEN_WAKER: usize = 1;
/// Low bits of a connection token hold the slot generation.
const GEN_BITS: u32 = 14;
const GEN_MASK: usize = (1 << GEN_BITS) - 1;
/// Deadline-scan cadence and upper bound on the poll wait, so shutdown
/// and timeouts are noticed within one tick even on a silent loop.
const TICK: Duration = Duration::from_millis(50);
/// Accepts per readable-listener event; level-triggered polling
/// re-reports a still-nonempty backlog immediately.
const ACCEPT_BURST: usize = 256;

fn encode_token(idx: usize, gen: usize) -> usize {
    ((idx + 1) << GEN_BITS) | (gen & GEN_MASK)
}

fn decode_token(token: usize) -> Option<(usize, usize)> {
    let idx = token >> GEN_BITS;
    if idx == 0 {
        return None; // TOKEN_LISTENER / TOKEN_WAKER
    }
    Some((idx - 1, token & GEN_MASK))
}

/// Per-loop knobs, derived from [`crate::server::ServerConfig`].
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Cap on request bodies, bytes.
    pub max_body: usize,
    /// Idle keep-alive *and* partial-request (slow-loris) timeout.
    pub read_timeout: Duration,
    /// Write-stall timeout.
    pub write_timeout: Duration,
    /// How long shutdown waits for in-flight exchanges to finish.
    pub drain: Duration,
    /// Connection cap per loop (the server deals the global cap out
    /// evenly); beyond it accepts shed with `503`.
    pub max_conns: usize,
    /// Worker-pool size (reported in overload logs).
    pub workers: usize,
    /// Worker-queue bound (reported in overload logs).
    pub queue: usize,
}

/// A loop's cross-thread mailbox: handed-off sockets, finished
/// responses, and the doorbell that announces both.
#[derive(Clone)]
pub struct Mailbox {
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    completions: Arc<Mutex<Vec<(usize, Response)>>>,
    waker: Waker,
}

impl Mailbox {
    /// A fresh mailbox (allocates the waker fd).
    ///
    /// # Errors
    /// Propagates waker fd creation failure.
    pub fn new() -> std::io::Result<Mailbox> {
        Ok(Mailbox {
            inbox: Arc::new(Mutex::new(Vec::new())),
            completions: Arc::new(Mutex::new(Vec::new())),
            waker: Waker::new()?,
        })
    }

    /// The doorbell; ring after pushing into either queue (the server
    /// handle also rings it to broadcast shutdown).
    pub fn waker(&self) -> &Waker {
        &self.waker
    }
}

/// Slot-reuse-safe connection storage.
struct Slab {
    slots: Vec<(usize, Option<Conn>)>, // (generation, occupant)
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> usize {
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slots.push((0, None));
            self.slots.len() - 1
        });
        self.slots[idx].1 = Some(conn);
        self.live += 1;
        encode_token(idx, self.slots[idx].0)
    }

    fn get_mut(&mut self, idx: usize, gen: usize) -> Option<&mut Conn> {
        let slot = self.slots.get_mut(idx)?;
        if slot.0 & GEN_MASK != gen {
            return None;
        }
        slot.1.as_mut()
    }

    fn remove(&mut self, idx: usize) -> Option<Conn> {
        let slot = self.slots.get_mut(idx)?;
        let conn = slot.1.take()?;
        slot.0 = slot.0.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        Some(conn)
    }

    fn live_indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| c.is_some())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Everything a service step needs, bundled against parameter sprawl.
struct Ctx<'a> {
    state: &'a Arc<AppState>,
    pool: &'a Arc<ThreadPool>,
    cfg: &'a LoopConfig,
    completions: &'a Arc<Mutex<Vec<(usize, Response)>>>,
    waker: &'a Waker,
}

/// What to do with a connection after servicing it.
enum Outcome {
    Keep(Interest),
    Close,
}

/// Runs one event loop until shutdown completes its drain. Loop 0
/// passes the listener; the rest accept handed-off sockets via their
/// [`Mailbox`]. Internal failures (poller breakage) are logged and end
/// the loop rather than panicking.
pub fn run(
    poller: Poller,
    listener: Option<TcpListener>,
    state: &Arc<AppState>,
    pool: &Arc<ThreadPool>,
    cfg: &LoopConfig,
    index: usize,
    mailboxes: &[Mailbox],
) {
    if let Err(e) = run_inner(poller, listener, state, pool, cfg, index, mailboxes) {
        if questpro_log::enabled(Level::Error) {
            questpro_log::emit(
                Level::Error,
                "server.eventloop",
                format!("event loop {index} failed: {e}"),
                vec![("loop", index.into())],
            );
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run_inner(
    mut poller: Poller,
    mut listener: Option<TcpListener>,
    state: &Arc<AppState>,
    pool: &Arc<ThreadPool>,
    cfg: &LoopConfig,
    index: usize,
    mailboxes: &[Mailbox],
) -> std::io::Result<()> {
    let mine = &mailboxes[index];
    poller.add(mine.waker().raw_fd(), Interest::READ, TOKEN_WAKER)?;
    if let Some(l) = &listener {
        poller.add(l.as_raw_fd(), Interest::READ, TOKEN_LISTENER)?;
    }
    let ctx = Ctx {
        state,
        pool,
        cfg,
        completions: &mine.completions,
        waker: &mine.waker,
    };
    let mut slab = Slab::new();
    let mut events: Vec<Event> = Vec::with_capacity(1024);
    let mut next_rr = index; // round-robin cursor over loops, self first
    let mut next_tick = Instant::now();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        events.clear();
        let timeout = i32::try_from(TICK.as_millis()).unwrap_or(50);
        poller.wait(timeout, &mut events)?;
        let now = Instant::now();

        let mut accept_ready = false;
        for ev in events.iter().copied() {
            match ev.token {
                TOKEN_LISTENER => accept_ready = true,
                TOKEN_WAKER => mine.waker.drain(),
                _ => handle_conn_event(&mut slab, &mut poller, &ctx, ev, now),
            }
        }

        // Accepts run after socket events so a slot freed in this batch
        // cannot be reused while stale events for it are still queued.
        if accept_ready {
            if let Some(l) = &listener {
                accept_burst(
                    l,
                    &mut slab,
                    &mut poller,
                    &ctx,
                    mailboxes,
                    &mut next_rr,
                    now,
                );
            }
        }
        drain_inbox(mine, &mut slab, &mut poller, &ctx, now);
        drain_completions(&mut slab, &mut poller, &ctx);

        if now >= next_tick {
            next_tick = now + TICK;
            expire_deadlines(&mut slab, &mut poller, &ctx, now);
        }

        if state.shutdown.load(Ordering::SeqCst) {
            if drain_deadline.is_none() {
                drain_deadline = Some(now + cfg.drain);
                // Stop accepting: drop the listener so new connects are
                // refused instead of parked in the backlog.
                if let Some(l) = listener.take() {
                    let _ = poller.remove(l.as_raw_fd());
                }
                for (i, m) in mailboxes.iter().enumerate() {
                    if i != index {
                        m.waker().wake(); // pull parked peers into their drain
                    }
                }
            }
            // Idle connections have nothing to finish; everything else
            // completes its current exchange (responses queued during
            // shutdown carry `Connection: close`).
            for idx in slab.live_indices() {
                let gen = slab.slots[idx].0 & GEN_MASK;
                if slab.get_mut(idx, gen).is_some_and(|c| c.is_idle()) {
                    close_conn(&mut slab, &mut poller, &ctx, idx);
                }
            }
            if slab.live == 0 || drain_deadline.is_some_and(|d| now >= d) {
                for idx in slab.live_indices() {
                    close_conn(&mut slab, &mut poller, &ctx, idx);
                }
                return Ok(());
            }
        }
    }
}

/// Accepts a burst from the listener, shedding over the connection cap
/// and dealing sockets round-robin across loops.
fn accept_burst(
    listener: &TcpListener,
    slab: &mut Slab,
    poller: &mut Poller,
    ctx: &Ctx<'_>,
    mailboxes: &[Mailbox],
    next_rr: &mut usize,
    now: Instant,
) {
    for _ in 0..ACCEPT_BURST {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue; // a dropped socket degrades this connection only
                }
                let _ = stream.set_nodelay(true);
                // Only loop 0 owns the listener, so "self" is index 0.
                let target = *next_rr % mailboxes.len();
                *next_rr = next_rr.wrapping_add(1);
                if target == 0 {
                    register_conn(stream, slab, poller, ctx, now);
                } else {
                    lock(&mailboxes[target].inbox).push(stream);
                    mailboxes[target].waker().wake();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Registers an accepted/handed-off socket with this loop, or sheds it
/// with a `503` when the slab is at capacity.
fn register_conn(
    stream: TcpStream,
    slab: &mut Slab,
    poller: &mut Poller,
    ctx: &Ctx<'_>,
    now: Instant,
) {
    if slab.live >= ctx.cfg.max_conns {
        ctx.state.http.record_overload();
        ctx.state.http.record_response(503);
        if questpro_log::enabled(Level::Warn) {
            questpro_log::emit(
                Level::Warn,
                "server.overload",
                "connection shed with 503: connection limit reached",
                vec![("max_conns", ctx.cfg.max_conns.into())],
            );
        }
        let mut resp = Response::error(503, "server overloaded; retry later");
        resp.trace_id = questpro_trace::enabled().then(questpro_trace::mint_id);
        resp.close = true;
        let mut s = stream;
        let _ = std::io::Write::write_all(&mut s, &encode_response(&resp));
        return; // drop closes
    }
    ctx.state.http.record_conn_opened();
    let fd = stream.as_raw_fd();
    let token = slab.insert(Conn::new(stream, now));
    if poller.add(fd, Interest::READ, token).is_err() {
        if let Some((idx, _)) = decode_token(token) {
            if slab.remove(idx).is_some() {
                ctx.state.http.record_conn_closed();
            }
        }
    }
}

/// Adopts sockets other loops handed to this one.
fn drain_inbox(mine: &Mailbox, slab: &mut Slab, poller: &mut Poller, ctx: &Ctx<'_>, now: Instant) {
    let handed: Vec<TcpStream> = {
        let mut inbox = lock(&mine.inbox);
        std::mem::take(&mut *inbox)
    };
    for stream in handed {
        register_conn(stream, slab, poller, ctx, now);
    }
}

/// Applies finished pool responses to their (still-live) connections.
fn drain_completions(slab: &mut Slab, poller: &mut Poller, ctx: &Ctx<'_>) {
    let done: Vec<(usize, Response)> = {
        let mut q = lock(ctx.completions);
        std::mem::take(&mut *q)
    };
    for (token, resp) in done {
        let Some((idx, gen)) = decode_token(token) else {
            continue;
        };
        let Some(conn) = slab.get_mut(idx, gen) else {
            continue; // connection closed while the request ran: drop
        };
        conn.complete_in_flight(Instant::now());
        finalize_response(conn, ctx, resp);
        pump_requests(conn, token, ctx); // pipelined follow-ups
        match settle(conn) {
            Outcome::Close => close_conn(slab, poller, ctx, idx),
            Outcome::Keep(interest) => rearm(slab, poller, idx, gen, interest, token),
        }
    }
}

/// Handles one readiness event for a connection.
fn handle_conn_event(slab: &mut Slab, poller: &mut Poller, ctx: &Ctx<'_>, ev: Event, now: Instant) {
    let Some((idx, gen)) = decode_token(ev.token) else {
        return;
    };
    let Some(conn) = slab.get_mut(idx, gen) else {
        return; // stale event for a reused slot
    };
    let mut hard_error = false;
    if ev.readable && !conn.in_flight && !conn.peer_closed {
        match conn.on_readable(now) {
            Ok(_) => {
                if !conn.in_flight {
                    pump_requests(conn, ev.token, ctx);
                }
            }
            Err(_) => hard_error = true,
        }
    }
    if ev.error {
        if conn.in_flight {
            // The socket died while its request runs. HUP/ERR are
            // level-triggered and cannot be masked off, so deregister
            // the fd to silence them; the completion path discovers the
            // dead peer on flush and closes (with a write-stall deadline
            // as the bounded fallback).
            conn.peer_closed = true;
            let fd = conn.stream.as_raw_fd();
            let _ = poller.remove(fd);
        } else {
            // EPOLLHUP/EPOLLERR with nothing running: the socket is gone.
            hard_error = true;
        }
    }
    if conn.peer_closed && !conn.in_flight && !conn.has_pending_write() {
        // EOF with nothing left to send: a clean keep-alive end, or a
        // mid-request disconnect (partial bytes, no one to answer).
        hard_error = true;
    }
    let outcome = if hard_error {
        Outcome::Close
    } else {
        settle(conn)
    };
    match outcome {
        Outcome::Close => close_conn(slab, poller, ctx, idx),
        Outcome::Keep(interest) => rearm(slab, poller, idx, gen, interest, ev.token),
    }
}

/// Parses and dispatches every complete request currently buffered,
/// stopping at the first in-flight dispatch or queued close.
fn pump_requests(conn: &mut Conn, token: usize, ctx: &Ctx<'_>) {
    while !conn.in_flight && !conn.close_after_write {
        match conn.take_request(ctx.cfg.max_body) {
            Ok(Some(req)) => {
                let label = route_label(&req.method, &req.path);
                if is_inline(label) {
                    let resp = serve_request(ctx.state, &req);
                    // Same publish-before-response ordering as the
                    // blocking server: a follow-up /debug/logs scrape
                    // must find this request's access event.
                    questpro_log::flush();
                    finalize_response(conn, ctx, resp);
                } else {
                    conn.in_flight = true;
                    let state = Arc::clone(ctx.state);
                    let completions = Arc::clone(ctx.completions);
                    let waker = ctx.waker.clone();
                    let submitted = ctx.pool.submit(move || {
                        let resp = serve_request(&state, &req);
                        questpro_log::flush();
                        lock(&completions).push((token, resp));
                        waker.wake();
                    });
                    if submitted.is_err() {
                        conn.in_flight = false;
                        shed_request(conn, ctx);
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                let resp = match e {
                    ReadError::BadRequest(msg) => unreadable(ctx.state, 400, &msg),
                    ReadError::HeadTooLarge => unreadable(ctx.state, 431, "request head too large"),
                    ReadError::BodyTooLarge => unreadable(ctx.state, 413, "request body too large"),
                    // parse_request never reports connection-level
                    // outcomes; stay defensive anyway.
                    ReadError::Closed | ReadError::IdleTimeout | ReadError::Disconnected(_) => {
                        unreadable(ctx.state, 400, "unreadable request")
                    }
                };
                finalize_response(conn, ctx, resp); // close=true: stop here
                break;
            }
        }
    }
}

/// Queues a `503` for a request the worker pool could not take.
fn shed_request(conn: &mut Conn, ctx: &Ctx<'_>) {
    ctx.state.http.record_overload();
    if questpro_log::enabled(Level::Warn) {
        questpro_log::emit(
            Level::Warn,
            "server.overload",
            "request shed with 503: worker queue full",
            vec![
                ("workers", ctx.cfg.workers.into()),
                ("queue", ctx.cfg.queue.into()),
            ],
        );
    }
    let mut resp = Response::error(503, "server overloaded; retry later");
    resp.trace_id = questpro_trace::enabled().then(questpro_trace::mint_id);
    resp.close = true;
    finalize_response(conn, ctx, resp);
}

/// Counts and queues a response; during shutdown every response becomes
/// the connection's last (`Connection: close`), which is how drain
/// converges.
fn finalize_response(conn: &mut Conn, ctx: &Ctx<'_>, mut resp: Response) {
    if ctx.state.shutdown.load(Ordering::SeqCst) {
        resp.close = true;
    }
    ctx.state.http.record_response(resp.status);
    conn.queue_response(&resp);
}

/// Flushes what the socket will take and decides keep-vs-close.
fn settle(conn: &mut Conn) -> Outcome {
    if conn.has_pending_write() {
        match conn.flush() {
            Err(_) => return Outcome::Close,
            Ok(true) if conn.close_after_write => return Outcome::Close,
            Ok(_) => {}
        }
    } else if conn.close_after_write && !conn.in_flight {
        return Outcome::Close;
    }
    if conn.peer_closed && !conn.in_flight && !conn.has_pending_write() {
        return Outcome::Close;
    }
    Outcome::Keep(conn.wants())
}

/// Updates poller interest for a live connection.
fn rearm(
    slab: &mut Slab,
    poller: &mut Poller,
    idx: usize,
    gen: usize,
    interest: Interest,
    token: usize,
) {
    if let Some(conn) = slab.get_mut(idx, gen) {
        let fd = conn.stream.as_raw_fd();
        let _ = poller.rearm(fd, interest, token);
    }
}

/// Scans every connection's deadline, closing expired ones with the
/// classified behavior (silent idle close, named `408`, write-stall
/// close).
fn expire_deadlines(slab: &mut Slab, poller: &mut Poller, ctx: &Ctx<'_>, now: Instant) {
    let mut expired: Vec<(usize, DeadlineKind)> = Vec::new();
    for idx in slab.live_indices() {
        let gen = slab.slots[idx].0 & GEN_MASK;
        if let Some(conn) = slab.get_mut(idx, gen) {
            if let Some((deadline, kind)) =
                conn.deadline(ctx.cfg.read_timeout, ctx.cfg.write_timeout)
            {
                if now >= deadline {
                    expired.push((idx, kind));
                }
            }
        }
    }
    for (idx, kind) in expired {
        match kind {
            DeadlineKind::Idle => {
                ctx.state.http.record_keepalive_timeout();
                close_conn(slab, poller, ctx, idx);
            }
            DeadlineKind::WriteStall => close_conn(slab, poller, ctx, idx),
            DeadlineKind::Partial => {
                ctx.state.http.record_request_timeout();
                let gen = slab.slots[idx].0 & GEN_MASK;
                if let Some(conn) = slab.get_mut(idx, gen) {
                    let resp = unreadable(ctx.state, 408, "timed out reading request");
                    ctx.state.http.record_response(resp.status);
                    conn.queue_response(&resp);
                    let _ = conn.flush(); // best effort: the peer stalled
                }
                close_conn(slab, poller, ctx, idx);
            }
        }
    }
}

/// Unregisters, removes, and drops one connection (closing its fd).
fn close_conn(slab: &mut Slab, poller: &mut Poller, ctx: &Ctx<'_>, idx: usize) {
    if let Some(conn) = slab.remove(idx) {
        let _ = poller.remove(conn.stream.as_raw_fd());
        ctx.state.http.record_conn_closed();
    }
}
