//! `questpro-server`: a zero-dependency HTTP service for interactive
//! query inference.
//!
//! The paper's workflow — infer candidate SPARQL queries from examples,
//! then converge on the user's intent by asking provenance-backed
//! yes/no questions — is inherently a long-lived dialogue, which this
//! crate exposes as a JSON-over-HTTP session API on nothing but
//! `std::net`:
//!
//! * [`http`] — a minimal, limit-guarded HTTP/1.1 reader/writer;
//! * [`pool`] — a fixed worker pool with a bounded queue (overload
//!   sheds as `503`, never as unbounded memory);
//! * [`registry`] — named ontologies: lazily built benchmark worlds
//!   plus user-posted triple text;
//! * [`sessions`] — concurrent [`questpro_feedback::InteractiveSession`]
//!   ownership with per-session locks and idle eviction;
//! * [`router`] — the endpoint handlers (one-shot `/infer` and `/eval`,
//!   session CRUD + `/feedback`, `/metrics`, `/shutdown`);
//! * [`server`] — the accept loop and graceful shutdown;
//! * [`metrics`] — Prometheus-style text rendering of the process-wide
//!   monotonic counters.
//!
//! Design constraints inherited from the workspace: no external crates,
//! no `unsafe`, and a failure in any single request (malformed bytes,
//! a panicking handler, a dropped socket, a poisoned lock) must degrade
//! that request only — the process keeps serving.

pub mod http;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod router;
pub mod server;
pub mod sessions;

pub use http::{Request, Response};
pub use pool::{PoolFull, ThreadPool};
pub use registry::Registry;
pub use router::{route, AppState};
pub use server::{start, ServerConfig, ServerHandle};
pub use sessions::{SessionEntry, SessionManager};
