//! `questpro-server`: a zero-dependency HTTP service for interactive
//! query inference.
//!
//! The paper's workflow — infer candidate SPARQL queries from examples,
//! then converge on the user's intent by asking provenance-backed
//! yes/no questions — is inherently a long-lived dialogue, which this
//! crate exposes as a JSON-over-HTTP session API on nothing but
//! `std::net`:
//!
//! * [`http`] — a minimal, limit-guarded HTTP/1.1 reader/writer, with
//!   both a blocking reader and an incremental in-buffer parser;
//! * [`sys`] — the readiness-notification facade (`epoll` on Linux,
//!   `poll` elsewhere on Unix) behind a safe `Poller`/`Waker` API; the
//!   crate's only `unsafe` lives here, in the raw syscall shims;
//! * [`conn`] — the per-connection keep-alive state machine driven by
//!   readiness events;
//! * [`eventloop`] — the nonblocking accept + readiness loop that owns
//!   every socket and dispatches CPU-bound work to the pool;
//! * [`pool`] — a fixed worker pool with a bounded queue (overload
//!   sheds as `503`, never as unbounded memory);
//! * [`registry`] — named ontologies: lazily built benchmark worlds
//!   plus user-posted triple text;
//! * [`sessions`] — concurrent [`questpro_feedback::InteractiveSession`]
//!   ownership with sharded per-session locks and idle eviction;
//! * [`router`] — the endpoint handlers (one-shot `/infer` and `/eval`,
//!   session CRUD + `/feedback`, `/metrics`, `/shutdown`);
//! * [`server`] — configuration, startup, and graceful shutdown;
//! * [`metrics`] — Prometheus-style text rendering of the process-wide
//!   monotonic counters.
//!
//! Design constraints inherited from the workspace: no external crates,
//! `unsafe` confined to the audited syscall shims in [`sys`], and a
//! failure in any single request (malformed bytes, a panicking handler,
//! a dropped socket, a poisoned lock) must degrade that request only —
//! the process keeps serving.

pub mod conn;
pub mod eventloop;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod router;
pub mod server;
pub mod sessions;
pub mod sys;

pub use http::{Request, Response};
pub use pool::{PoolFull, ThreadPool};
pub use registry::Registry;
pub use router::{route, AppState};
pub use server::{start, ServerConfig, ServerHandle};
pub use sessions::{SessionEntry, SessionManager};
