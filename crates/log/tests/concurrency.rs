//! Concurrency battery for the log ring: many producer threads racing
//! a draining reader, with exact conservation accounting.
//!
//! The contract under test (see `questpro_log` docs): every accepted
//! event is eventually either drained by a reader, still retained in
//! the ring, or counted by the drop counter — `emitted == drained +
//! retained + dropped`, exactly, no matter how emits, flushes, and
//! drains interleave.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use questpro_log::{
    dropped_total, emit, emitted_total, flush, recent, retained, set_capacity, set_level, take_all,
    Level,
};

/// Serializes tests in this binary: they all mutate the global ring.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn producers_and_draining_reader_conserve_every_event() {
    let _g = gate();
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: u64 = 500;

    set_capacity(64); // small enough to force drops under pressure
    set_level(Some(Level::Trace));
    let emitted_before = emitted_total();

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut drained = 0u64;
            while !stop.load(Ordering::Acquire) {
                drained += take_all().len() as u64;
                thread::yield_now();
            }
            drained
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    emit(
                        Level::Info,
                        "battery",
                        format!("p{p} e{i}"),
                        vec![("producer", p.into()), ("i", i.into())],
                    );
                }
                // Thread exit also flushes (LocalBuf::Drop); flush
                // explicitly anyway so the accounting below never
                // depends on TLS destructor ordering.
                flush();
            })
        })
        .collect();
    for h in producers {
        h.join().expect("producer thread");
    }

    stop.store(true, Ordering::Release);
    let drained_live = reader.join().expect("reader thread");
    // Producers are done and flushed; whatever the reader missed is
    // still in the ring now.
    let drained_rest = take_all().len() as u64;
    let dropped = dropped_total();
    let emitted = emitted_total() - emitted_before;

    set_level(None);

    assert_eq!(emitted, (PRODUCERS as u64) * PER_PRODUCER);
    assert_eq!(
        emitted,
        drained_live + drained_rest + dropped,
        "conservation: emitted == drained + retained(0 after final drain) + dropped \
         (live {drained_live}, rest {drained_rest}, dropped {dropped})"
    );
    assert_eq!(retained(), 0);
    set_capacity(questpro_log::DEFAULT_CAPACITY);
}

#[test]
fn quiescent_accounting_without_a_reader() {
    let _g = gate();
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: u64 = 200;
    const CAP: usize = 32;

    set_capacity(CAP);
    set_level(Some(Level::Trace));
    let emitted_before = emitted_total();

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    emit(Level::Debug, "battery.quiet", format!("p{p} e{i}"), vec![]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("producer thread");
    }

    let emitted = emitted_total() - emitted_before;
    let retained_now = retained() as u64;
    let dropped = dropped_total();
    set_level(None);

    assert_eq!(emitted, (PRODUCERS as u64) * PER_PRODUCER);
    assert_eq!(retained_now, CAP as u64, "ring saturated");
    assert_eq!(emitted, retained_now + dropped);

    // Drain order is oldest-first by sequence number.
    let drained = take_all();
    assert!(drained.windows(2).all(|w| w[0].seq < w[1].seq));
    set_capacity(questpro_log::DEFAULT_CAPACITY);
}

#[test]
fn recent_is_newest_first_and_level_filtered_under_load() {
    let _g = gate();
    set_capacity(256);
    set_level(Some(Level::Trace));

    let handles: Vec<_> = (0..4)
        .map(|p| {
            thread::spawn(move || {
                for i in 0..50u64 {
                    let level = if i % 10 == 0 {
                        Level::Warn
                    } else {
                        Level::Info
                    };
                    emit(level, "battery.recent", format!("p{p} e{i}"), vec![]);
                }
                flush();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("producer thread");
    }

    let warns = recent(1024, Level::Warn);
    assert_eq!(warns.len(), 4 * 5);
    assert!(warns.iter().all(|e| e.level >= Level::Warn));
    assert!(
        warns.windows(2).all(|w| w[0].seq > w[1].seq),
        "newest first"
    );

    set_level(None);
    take_all();
    set_capacity(questpro_log::DEFAULT_CAPACITY);
}
