//! Property test: every generated event serializes to one JSON line
//! that the `questpro-wire` parser accepts, and the parsed document
//! agrees with the event field-for-field.
//!
//! Seeded with the workspace RNG so failures replay exactly.

use questpro_graph::rng::{Rng, SliceRandom, StdRng};
use questpro_log::{Event, Level, Value};

const TARGETS: &[&str] = &[
    "server.access",
    "server.slow",
    "core.topk",
    "engine.eval",
    "feedback.session",
];
const KEYS: &[&str] = &[
    "status",
    "bytes",
    "latency_ns",
    "route",
    "rounds",
    "ok",
    "ratio",
    "delta",
];

fn arbitrary_string(rng: &mut StdRng) -> String {
    // Deliberately hostile: quotes, backslashes, control chars, non-BMP.
    const POOL: &[&str] = &[
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "new\nline",
        "tab\there",
        "nul\u{0}",
        "unicode é λ",
        "emoji 🦀",
        "\u{7f}",
        "",
        "a very long message ",
    ];
    let n = rng.random_range(0..=3usize);
    (0..n)
        .map(|_| *POOL.choose(rng).expect("pool non-empty"))
        .collect()
}

fn arbitrary_value(rng: &mut StdRng) -> Value {
    match rng.random_range(0..5u32) {
        0 => Value::Str(arbitrary_string(rng)),
        // Stay within 2^53 so JSON f64 round-trips integers exactly.
        1 => Value::U64(rng.random_range(0..=(1u64 << 53))),
        2 => Value::I64(rng.random_range(-(1i64 << 53)..=(1i64 << 53))),
        3 => {
            let v = match rng.random_range(0..4u32) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => -0.5,
                _ => rng.random_f64() * 1e9,
            };
            Value::F64(v)
        }
        _ => Value::Bool(rng.random_bool(0.5)),
    }
}

fn arbitrary_event(rng: &mut StdRng) -> Event {
    let n_fields = rng.random_range(0..=KEYS.len());
    let mut keys = KEYS.to_vec();
    keys.shuffle(rng);
    Event {
        seq: rng.random_range(0..=(1u64 << 53)),
        ts_ms: rng.random_range(0..=(1u64 << 45)),
        level: *Level::ALL.as_slice().choose(rng).expect("levels"),
        target: TARGETS.choose(rng).copied().expect("targets"),
        msg: arbitrary_string(rng),
        trace_id: if rng.random_bool(0.7) {
            Some(rng.random_range(0..=(1u64 << 53)))
        } else {
            None
        },
        span: if rng.random_bool(0.5) {
            Some(questpro_trace::STAGES.choose(rng).copied().expect("stages"))
        } else {
            None
        },
        fields: keys[..n_fields]
            .iter()
            .map(|k| (*k, arbitrary_value(rng)))
            .collect(),
    }
}

#[test]
fn generated_events_serialize_to_parseable_wire_json() {
    let mut rng = StdRng::seed_from_u64(0x0106);
    for iter in 0..2000 {
        let ev = arbitrary_event(&mut rng);
        let line = ev.to_line();
        let parsed = questpro_wire::parse(&line)
            .unwrap_or_else(|e| panic!("iter {iter}: unparseable line {line:?}: {e:?}"));
        assert_eq!(
            parsed,
            ev.to_json(),
            "iter {iter}: parse(to_line) == to_json"
        );

        assert_eq!(parsed.get("seq").and_then(|v| v.as_u64()), Some(ev.seq));
        assert_eq!(parsed.get("ts_ms").and_then(|v| v.as_u64()), Some(ev.ts_ms));
        assert_eq!(
            parsed.get("level").and_then(|v| v.as_str()),
            Some(ev.level.as_str())
        );
        assert_eq!(
            parsed.get("target").and_then(|v| v.as_str()),
            Some(ev.target)
        );
        assert_eq!(
            parsed.get("msg").and_then(|v| v.as_str()),
            Some(ev.msg.as_str())
        );
        assert_eq!(
            parsed.get("trace_id").and_then(|v| v.as_u64()),
            ev.trace_id,
            "iter {iter}"
        );
        assert_eq!(parsed.get("span").and_then(|v| v.as_str()), ev.span);

        let fields = parsed.get("fields").expect("fields object always present");
        for (k, v) in &ev.fields {
            let got = fields
                .get(k)
                .unwrap_or_else(|| panic!("iter {iter}: field {k}"));
            match v {
                Value::Str(s) => assert_eq!(got.as_str(), Some(s.as_str())),
                Value::U64(n) => assert_eq!(got.as_u64(), Some(*n)),
                Value::I64(n) => assert_eq!(got.as_f64(), Some(*n as f64)),
                Value::F64(n) if n.is_finite() => assert_eq!(got.as_f64(), Some(*n)),
                Value::F64(_) => assert_eq!(got, &questpro_wire::Json::Null),
                Value::Bool(b) => assert_eq!(got.as_bool(), Some(*b)),
            }
        }
    }
}

#[test]
fn event_lines_are_single_lines() {
    // JSON-lines framing: one event per '\n'-terminated line, so an
    // embedded newline in a message must be escaped, never literal.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let ev = arbitrary_event(&mut rng);
        assert!(!ev.to_line().contains('\n'));
    }
}
