//! Structured, leveled event logging for QuestPro-RS, on `std` alone.
//!
//! The third observability pillar next to `/metrics` counters (PR 2)
//! and `questpro-trace` span trees (PR 3): a per-process record of
//! *what happened*, one JSON-lines event at a time, cheap enough to
//! leave compiled into every layer.
//!
//! * **Events.** [`emit`] records a leveled [`Event`] — timestamp,
//!   target, message, free-form key/value [`Value`] fields — and
//!   automatically attaches the current trace ID and innermost span
//!   name from `questpro-trace`, so a log line, a trace, and a metrics
//!   bucket join on one ID.
//! * **Cheap when off.** A single relaxed `AtomicU8` threshold gates
//!   every entry point: a disabled [`emit`] is one load and a compare.
//!   The bench harness (`exp_bench --log-overhead`) asserts the
//!   end-to-end overhead of disabled logging stays under 1%.
//! * **Lock-cheap when on.** Events buffer in a thread-local `Vec` and
//!   move to the global bounded ring in batches — one mutex touch per
//!   [`FLUSH_AT`] events (or per explicit [`flush`]), never per event.
//!   The ring evicts oldest-first with exact drop accounting, exactly
//!   like the trace registry: `emitted == drained + retained +
//!   dropped` at every quiescent point, a contract the concurrency
//!   battery asserts.
//! * **Sinks.** Besides the in-memory ring (served at
//!   `GET /debug/logs` and by `questpro logs`), an optional
//!   line-buffered writer ([`set_sink`]) receives every flushed event
//!   as one JSON line.
//! * **Flight recorder.** [`flight::install`] chains a panic hook that
//!   dumps the last events and currently open spans to stderr before
//!   unwinding.

pub mod flight;

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use questpro_trace::ring::Ring;
use questpro_wire::Json;

/// Event severity, ordered: `Trace < Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Per-operation detail (engine internals); high volume.
    Trace = 1,
    /// Per-stage summaries useful when debugging.
    Debug = 2,
    /// Request-level milestones; the default server threshold.
    Info = 3,
    /// Something degraded (slow query, shed load) but handled.
    Warn = 4,
    /// A request failed or a handler panicked.
    Error = 5,
}

impl Level {
    /// All levels, ascending.
    pub const ALL: [Level; 5] = [
        Level::Trace,
        Level::Debug,
        Level::Info,
        Level::Warn,
        Level::Error,
    ];

    /// Canonical lowercase name, as serialized in events.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level name, case-insensitively. `None` for unknown
    /// names — callers decide whether that is a 400 or a usage error.
    pub fn parse(s: &str) -> Option<Level> {
        Level::ALL
            .into_iter()
            .find(|l| l.as_str().eq_ignore_ascii_case(s))
    }
}

/// Threshold sentinel meaning "logging disabled".
const OFF: u8 = u8::MAX;

/// Minimum level recorded; `OFF` disables logging entirely. Relaxed
/// ordering is sufficient: the flag only gates best-effort recording.
static MIN_LEVEL: AtomicU8 = AtomicU8::new(OFF);

/// Total events accepted by [`emit`]/[`emit_traced`] since process
/// start (counted before buffering, so it is exact even when the ring
/// later drops events).
static EMITTED: AtomicU64 = AtomicU64::new(0);

/// Monotonic event sequence source; 0 is never issued.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// Sets the minimum recorded level; `None` disables logging.
pub fn set_level(level: Option<Level>) {
    MIN_LEVEL.store(level.map(|l| l as u8).unwrap_or(OFF), Ordering::Relaxed);
}

/// The current minimum recorded level; `None` when disabled.
pub fn level() -> Option<Level> {
    match MIN_LEVEL.load(Ordering::Relaxed) {
        OFF => None,
        raw => Level::ALL.into_iter().find(|l| *l as u8 == raw),
    }
}

/// Whether an event at `level` would be recorded. One relaxed load —
/// this is the whole cost of a disabled log statement, and call sites
/// that build fields eagerly should check it first.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 >= MIN_LEVEL.load(Ordering::Relaxed)
}

/// A typed field value. Conversions exist for the obvious Rust types
/// so call sites write `("rounds", n.into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// UTF-8 text.
    Str(String),
    /// Unsigned integer. Values above 2^53 lose precision in JSON.
    U64(u64),
    /// Signed integer. Values beyond ±2^53 lose precision in JSON.
    I64(i64),
    /// IEEE double; non-finite values serialize as `null`.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Str(s) => Json::Str(s.clone()),
            Value::U64(n) => Json::Num(*n as f64),
            Value::I64(n) => Json::Num(*n as f64),
            Value::F64(n) if n.is_finite() => Json::Num(*n),
            Value::F64(_) => Json::Null,
            Value::Bool(b) => Json::Bool(*b),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::U64(n.into())
    }
}
impl From<u16> for Value {
    fn from(n: u16) -> Value {
        Value::U64(n.into())
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::U64(n as u64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::I64(n)
    }
}
impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::I64(n.into())
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::F64(n)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

/// One structured log event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Process-unique, monotonically increasing sequence number.
    pub seq: u64,
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem, e.g. `"server.access"` or `"core.topk"`.
    pub target: &'static str,
    /// Human-readable message.
    pub msg: String,
    /// Trace active on the emitting thread, for cross-pillar joins.
    pub trace_id: Option<u64>,
    /// Innermost open span at emit time, if any.
    pub span: Option<&'static str>,
    /// Free-form key/value fields, in call-site order. Duplicate keys
    /// are dropped (first wins) at serialization time, because the
    /// wire parser rejects duplicate object keys.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The event as a wire JSON object. Optional parts (`trace_id`,
    /// `span`) are omitted when absent; `fields` is a nested object so
    /// free-form keys can never collide with the envelope.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seq", Json::Num(self.seq as f64)),
            ("ts_ms", Json::Num(self.ts_ms as f64)),
            ("level", Json::str(self.level.as_str())),
            ("target", Json::str(self.target)),
            ("msg", Json::str(self.msg.clone())),
        ];
        if let Some(id) = self.trace_id {
            pairs.push(("trace_id", Json::Num(id as f64)));
        }
        if let Some(span) = self.span {
            pairs.push(("span", Json::str(span)));
        }
        let mut fields: Vec<(&'static str, Json)> = Vec::with_capacity(self.fields.len());
        for (k, v) in &self.fields {
            if !fields.iter().any(|(fk, _)| fk == k) {
                fields.push((k, v.to_json()));
            }
        }
        pairs.push(("fields", Json::obj(fields)));
        Json::obj(pairs)
    }

    /// The event as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_json().to_text()
    }
}

/// Default number of events retained by the global ring.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Thread-local buffer size; a full buffer flushes to the global ring.
pub const FLUSH_AT: usize = 32;

static RING: OnceLock<Mutex<Ring<Event>>> = OnceLock::new();

fn ring() -> &'static Mutex<Ring<Event>> {
    RING.get_or_init(|| Mutex::new(Ring::new(DEFAULT_CAPACITY)))
}

fn lock_ring() -> MutexGuard<'static, Ring<Event>> {
    // Log data is advisory; poisoning is ignored like the trace
    // registry's ring.
    ring().lock().unwrap_or_else(|e| e.into_inner())
}

type Sink = Box<dyn Write + Send>;

static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();

fn sink() -> &'static Mutex<Option<Sink>> {
    SINK.get_or_init(|| Mutex::new(None))
}

/// Installs (or with `None`, removes) a writer that receives every
/// flushed event as one JSON line. Writes are line-buffered by
/// construction — one `write_all` per event — and write errors are
/// ignored (logging must never take the process down).
pub fn set_sink(writer: Option<Sink>) {
    let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    *guard = writer;
}

/// Thread-local pending events. The wrapper's `Drop` flushes whatever
/// is left when the thread exits, so short-lived worker threads never
/// lose events.
struct LocalBuf {
    events: Vec<Event>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_events(std::mem::take(&mut self.events));
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = const { RefCell::new(LocalBuf { events: Vec::new() }) };
}

fn flush_events(events: Vec<Event>) {
    if events.is_empty() {
        return;
    }
    {
        let mut guard = sink().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = guard.as_mut() {
            for ev in &events {
                let mut line = ev.to_line();
                line.push('\n');
                let _ = w.write_all(line.as_bytes());
            }
            let _ = w.flush();
        }
    }
    let mut ring = lock_ring();
    for ev in events {
        ring.push(ev);
    }
}

/// Moves this thread's buffered events into the global ring (and sink).
///
/// The server calls this before writing a response so `/debug/logs`
/// reflects the request that produced it; it is also safe from a panic
/// hook (non-panicking borrows — a busy buffer is simply skipped).
pub fn flush() {
    let events = BUF
        .try_with(|b| {
            b.try_borrow_mut()
                .map(|mut b| std::mem::take(&mut b.events))
                .unwrap_or_default()
        })
        .unwrap_or_default();
    flush_events(events);
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Records an event, attaching the calling thread's current trace ID
/// and innermost span automatically. A no-op (one relaxed load) when
/// `level` is below the configured threshold.
#[inline]
pub fn emit(
    level: Level,
    target: &'static str,
    msg: impl Into<String>,
    fields: Vec<(&'static str, Value)>,
) {
    if !enabled(level) {
        return;
    }
    record(
        questpro_trace::current_trace_id(),
        level,
        target,
        msg.into(),
        fields,
    );
}

/// Like [`emit`] but with an explicit trace ID — for events produced
/// after the trace has finished (e.g. the access log writes one event
/// per request once the response status is known).
#[inline]
pub fn emit_traced(
    trace_id: Option<u64>,
    level: Level,
    target: &'static str,
    msg: impl Into<String>,
    fields: Vec<(&'static str, Value)>,
) {
    if !enabled(level) {
        return;
    }
    record(trace_id, level, target, msg.into(), fields);
}

fn record(
    trace_id: Option<u64>,
    level: Level,
    target: &'static str,
    msg: String,
    fields: Vec<(&'static str, Value)>,
) {
    let ev = Event {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        ts_ms: now_ms(),
        level,
        target,
        msg,
        trace_id,
        span: questpro_trace::current_span_name(),
        fields,
    };
    EMITTED.fetch_add(1, Ordering::Relaxed);
    let overflow = BUF
        .try_with(|b| match b.try_borrow_mut() {
            Ok(mut buf) => {
                buf.events.push(ev.clone());
                if buf.events.len() >= FLUSH_AT || level >= Level::Warn {
                    Some(std::mem::take(&mut buf.events))
                } else {
                    None
                }
            }
            // Re-entrant emit (e.g. from a panic hook interrupting an
            // emit): bypass the buffer rather than lose the event.
            Err(_) => Some(vec![ev.clone()]),
        })
        .unwrap_or_else(|_| Some(vec![ev]));
    if let Some(events) = overflow {
        flush_events(events);
    }
}

/// Replaces the ring with an empty one of capacity `cap` (min 1).
/// Retained events and the drop counter are reset; used at server
/// start-up to apply the configured retention.
pub fn set_capacity(cap: usize) {
    *lock_ring() = Ring::new(cap);
}

/// Returns up to `limit` of the most recent *flushed* events at or
/// above `min_level`, newest first. Call [`flush`] first to include
/// this thread's pending events.
pub fn recent(limit: usize, min_level: Level) -> Vec<Event> {
    let ring = lock_ring();
    let newest_first = ring.latest(ring.len());
    newest_first
        .into_iter()
        .filter(|e| e.level >= min_level)
        .take(limit)
        .cloned()
        .collect()
}

/// Removes and returns every retained event, oldest first. The drop
/// counter is untouched, so `emitted == drained + retained + dropped`
/// stays exact across interleaved emits and drains.
pub fn take_all() -> Vec<Event> {
    lock_ring().drain()
}

/// Total events evicted from the ring since the last [`set_capacity`]
/// (or process start).
pub fn dropped_total() -> u64 {
    lock_ring().dropped()
}

/// Number of events currently retained in the ring.
pub fn retained() -> usize {
    lock_ring().len()
}

/// Total events accepted since process start (exact; counted before
/// buffering, unaffected by ring eviction or [`set_capacity`]).
pub fn emitted_total() -> u64 {
    EMITTED.load(Ordering::Relaxed)
}

/// Serializes tests that touch the global level, ring, or sink.
#[cfg(test)]
pub(crate) fn test_gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_logging<T>(min: Level, f: impl FnOnce() -> T) -> T {
        let _g = test_gate();
        set_capacity(DEFAULT_CAPACITY);
        set_level(Some(min));
        let out = f();
        set_level(None);
        flush();
        set_capacity(DEFAULT_CAPACITY);
        out
    }

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Trace < Level::Debug && Level::Warn < Level::Error);
        for l in Level::ALL {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
    }

    #[test]
    fn disabled_emit_records_nothing() {
        let _g = test_gate();
        set_level(None);
        let before = emitted_total();
        emit(Level::Error, "test", "dropped", vec![]);
        assert!(!enabled(Level::Error));
        assert_eq!(emitted_total(), before);
    }

    #[test]
    fn threshold_filters_lower_levels() {
        with_logging(Level::Warn, || {
            assert!(!enabled(Level::Info));
            assert!(enabled(Level::Warn));
            let before = emitted_total();
            emit(Level::Info, "test", "below threshold", vec![]);
            emit(Level::Warn, "test", "at threshold", vec![]);
            assert_eq!(emitted_total() - before, 1);
        });
    }

    #[test]
    fn events_flush_and_filter_by_level() {
        with_logging(Level::Trace, || {
            set_capacity(64);
            emit(Level::Debug, "test.a", "one", vec![("k", 1u64.into())]);
            emit(Level::Info, "test.b", "two", vec![]);
            flush();
            let all = recent(10, Level::Trace);
            assert_eq!(all.len(), 2);
            assert_eq!(all[0].msg, "two", "newest first");
            assert_eq!(all[1].target, "test.a");
            assert!(all[1].seq < all[0].seq);
            let info = recent(10, Level::Info);
            assert_eq!(info.len(), 1);
            assert_eq!(info[0].msg, "two");
        });
    }

    #[test]
    fn warn_and_above_flush_eagerly() {
        with_logging(Level::Trace, || {
            set_capacity(64);
            emit(Level::Info, "test", "buffered", vec![]);
            emit(Level::Error, "test", "eager", vec![]);
            // No explicit flush: the error event forced the batch out.
            let all = recent(10, Level::Trace);
            assert_eq!(all.len(), 2);
        });
    }

    #[test]
    fn drop_accounting_is_exact() {
        with_logging(Level::Trace, || {
            set_capacity(4);
            let emitted_before = emitted_total();
            for i in 0..10u64 {
                emit(Level::Info, "test", format!("e{i}"), vec![]);
            }
            flush();
            let emitted = emitted_total() - emitted_before;
            assert_eq!(emitted, 10);
            assert_eq!(retained(), 4);
            assert_eq!(dropped_total(), 6);
            let drained = take_all();
            assert_eq!(drained.len(), 4);
            assert_eq!(drained[0].msg, "e6", "oldest-first drain");
            assert_eq!(dropped_total(), 6, "drains are not drops");
        });
    }

    #[test]
    fn event_serializes_expected_envelope() {
        let ev = Event {
            seq: 7,
            ts_ms: 1000,
            level: Level::Info,
            target: "server.access",
            msg: "GET /healthz".to_string(),
            trace_id: Some(42),
            span: Some("request"),
            fields: vec![
                ("status", 200u64.into()),
                ("dup", 1u64.into()),
                ("dup", 2u64.into()),
                ("nan", f64::NAN.into()),
            ],
        };
        let json = questpro_wire::parse(&ev.to_line()).expect("parseable line");
        assert_eq!(json.get("seq").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(json.get("level").and_then(|v| v.as_str()), Some("info"));
        assert_eq!(json.get("trace_id").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(json.get("span").and_then(|v| v.as_str()), Some("request"));
        let fields = json.get("fields").expect("fields object");
        assert_eq!(
            fields.get("status").and_then(|v| v.as_u64()),
            Some(200),
            "typed fields survive"
        );
        assert_eq!(
            fields.get("dup").and_then(|v| v.as_u64()),
            Some(1),
            "duplicate keys: first wins"
        );
        assert_eq!(fields.get("nan"), Some(&Json::Null));
        // Optional parts are omitted, not null.
        let bare = Event {
            trace_id: None,
            span: None,
            ..ev
        };
        let json = questpro_wire::parse(&bare.to_line()).expect("parseable");
        assert_eq!(json.get("trace_id"), None);
        assert_eq!(json.get("span"), None);
    }

    #[test]
    fn emit_attaches_active_trace_and_span() {
        with_logging(Level::Trace, || {
            set_capacity(16);
            questpro_trace::set_enabled(true);
            let t = questpro_trace::begin("log-unit").expect("tracing on");
            let id = t.id();
            {
                let _s = questpro_trace::span("infer.topk");
                emit(Level::Info, "test", "inside", vec![]);
            }
            t.finish();
            questpro_trace::set_enabled(false);
            flush();
            let ev = &recent(1, Level::Trace)[0];
            assert_eq!(ev.trace_id, Some(id));
            assert_eq!(ev.span, Some("infer.topk"));
        });
    }

    #[test]
    fn sink_receives_json_lines() {
        use std::sync::Arc;

        /// Shared in-memory writer for asserting sink output.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        with_logging(Level::Trace, || {
            let buf = Shared(Arc::new(Mutex::new(Vec::new())));
            set_sink(Some(Box::new(buf.clone())));
            emit(Level::Info, "test.sink", "hello", vec![("n", 3u64.into())]);
            flush();
            set_sink(None);
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            let line = text.lines().next().expect("one line");
            let json = questpro_wire::parse(line).expect("line is JSON");
            assert_eq!(
                json.get("target").and_then(|v| v.as_str()),
                Some("test.sink")
            );
        });
    }
}
