//! Panic flight recorder: a chained panic hook that preserves the last
//! moments of a crashing thread.
//!
//! When a panic unwinds — in the server a handler panic is caught per
//! request, in the CLI it takes the process down — the hook drains the
//! panicking thread's buffered events, then writes a report to stderr
//! carrying the panic location, the active trace ID, every span still
//! open on the thread, and the most recent [`EVENTS`] log events as
//! JSON lines. The same report is retained in memory for tests (and
//! post-mortem endpoints) via [`last_report`].
//!
//! Every step uses non-panicking accessors (`try_with`/`try_borrow`),
//! so a panic that strikes *inside* the logging machinery can never
//! escalate into a double-panic abort.

use std::io::Write;
use std::sync::{Mutex, Once, OnceLock};

use crate::Level;

/// Number of trailing events included in a flight report.
pub const EVENTS: usize = 16;

static INSTALL: Once = Once::new();

fn last_slot() -> &'static Mutex<Option<String>> {
    static LAST: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

/// Installs the flight-recorder panic hook, chaining the previously
/// installed hook (which still runs afterwards, so default backtraces
/// are preserved). Idempotent; only the first call installs.
pub fn install() {
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let report = build_report(info);
            let mut err = std::io::stderr().lock();
            let _ = err.write_all(report.as_bytes());
            let _ = err.flush();
            if let Ok(mut slot) = last_slot().lock() {
                *slot = Some(report);
            }
            prev(info);
        }));
    });
}

/// The most recent flight report, if any panic has been recorded since
/// process start. Used by the `catch_unwind` test battery.
pub fn last_report() -> Option<String> {
    last_slot().lock().ok().and_then(|slot| slot.clone())
}

fn build_report(info: &std::panic::PanicHookInfo<'_>) -> String {
    // Move the panicking thread's buffered events into the ring first,
    // so the report (and any later /debug/logs scrape) sees them.
    crate::flush();
    let location = info
        .location()
        .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
        .unwrap_or_else(|| "<unknown>".to_string());
    let payload = info
        .payload()
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| info.payload().downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    let trace_id = questpro_trace::current_trace_id();
    let open = questpro_trace::current_open_spans();

    let mut out = String::new();
    out.push_str("==== questpro flight record ====\n");
    out.push_str(&format!("panic: {payload}\n"));
    out.push_str(&format!("location: {location}\n"));
    match trace_id {
        Some(id) => out.push_str(&format!("trace_id: {id}\n")),
        None => out.push_str("trace_id: none\n"),
    }
    if open.is_empty() {
        out.push_str("open spans: none\n");
    } else {
        out.push_str(&format!("open spans: {}\n", open.join(" > ")));
    }
    let events = crate::recent(EVENTS, Level::Trace);
    out.push_str(&format!(
        "last {} event(s) of {} emitted ({} dropped):\n",
        events.len(),
        crate::emitted_total(),
        crate::dropped_total(),
    ));
    // `recent` is newest-first; a flight log reads oldest-first.
    for ev in events.iter().rev() {
        out.push_str("  ");
        out.push_str(&ev.to_line());
        out.push('\n');
    }
    out.push_str("==== end flight record ====\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_under_catch_unwind_produces_a_report() {
        let _g = crate::test_gate();
        crate::set_capacity(crate::DEFAULT_CAPACITY);
        crate::set_level(Some(Level::Trace));
        install();
        questpro_trace::set_enabled(true);

        let result = std::panic::catch_unwind(|| {
            let _t = questpro_trace::begin("flight-test");
            let _s = questpro_trace::span("infer.topk");
            crate::emit(
                Level::Info,
                "test.flight",
                "about to fail",
                vec![("attempt", 1u64.into())],
            );
            panic!("boom in stage");
        });
        assert!(result.is_err());

        questpro_trace::set_enabled(false);
        crate::set_level(None);

        let report = last_report().expect("panic hook recorded a report");
        assert!(report.contains("boom in stage"), "payload: {report}");
        assert!(report.contains("flight.rs"), "location: {report}");
        assert!(report.contains("trace_id: "), "trace line: {report}");
        assert!(
            report.contains("open spans: infer.topk"),
            "open spans: {report}"
        );
        assert!(
            report.contains("\"msg\":\"about to fail\""),
            "buffered event drained into report: {report}"
        );
        crate::set_capacity(crate::DEFAULT_CAPACITY);
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install(); // second call must not panic or stack hooks
    }
}
