//! `loadgen` — concurrent load against an in-process questpro-server.
//!
//! Boots the HTTP service on an ephemeral loopback port, then drives it
//! from `--clients` OS threads, each holding one keep-alive connection
//! and issuing `--requests` `POST /infer` calls over the erdos world.
//! Emits `BENCH_2.json` with throughput, latency quantiles, and a
//! cross-client consistency check: every response body must be
//! byte-identical to the library's one-shot `infer_top_k` answer, which
//! is what the CLI `infer` path prints.
//!
//! Env:
//!   LOADGEN_TINY=1      smoke mode: 2 clients × 3 requests (CI).
//!
//! Flags (all optional): --clients N --requests N --workers N --out PATH

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use questpro_server::{start, ServerConfig};

fn main() {
    let mut clients = 8usize;
    let mut requests = 25usize;
    let mut workers = 8usize;
    let mut out_path = String::from("BENCH_2.json");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let value = it.next();
        let num = |v: Option<&String>| v.and_then(|s| s.parse::<usize>().ok());
        match flag.as_str() {
            "--clients" => clients = num(value).unwrap_or(clients).max(1),
            "--requests" => requests = num(value).unwrap_or(requests).max(1),
            "--workers" => workers = num(value).unwrap_or(workers).max(1),
            "--out" => out_path = value.cloned().unwrap_or(out_path),
            other => {
                eprintln!("loadgen: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if std::env::var("LOADGEN_TINY").as_deref() == Ok("1") {
        clients = 2;
        requests = 3;
    }

    let handle = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue: (clients * 2).max(64),
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral loopback port");
    let addr = handle.addr();
    eprintln!("loadgen: server on {addr}, {clients} clients x {requests} requests");

    // The reference answer the server must reproduce under load: the
    // same one-shot inference the CLI `infer` path performs.
    let ont = questpro_data::erdos_ontology();
    let examples = questpro_data::erdos_example_set(&ont);
    let examples_text = questpro_graph::exformat::serialize_examples(&ont, &examples);
    let (reference, _) =
        questpro_core::infer_top_k(&ont, &examples, &questpro_core::TopKConfig::default());
    let reference: Vec<String> = reference
        .iter()
        .map(questpro_query::sparql::format_union)
        .collect();

    let body = questpro_wire::Json::obj([
        ("ontology", questpro_wire::Json::str("erdos")),
        ("examples", questpro_wire::Json::str(examples_text)),
    ])
    .to_text();

    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let body = body.clone();
            let reference = reference.clone();
            std::thread::Builder::new()
                .name(format!("loadgen-client-{c}"))
                .spawn(move || client(addr, &body, requests, &reference))
                .expect("spawning a client thread")
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut errors = 0usize;
    let mut mismatches = 0usize;
    for t in threads {
        let outcome = t.join().expect("client thread must not panic");
        latencies_us.extend(outcome.latencies_us);
        errors += outcome.errors;
        mismatches += outcome.mismatches;
    }
    let wall = started.elapsed();

    // Every request ran under a server-side trace; pull the registry's
    // view before shutdown so the report records the tracing pipeline
    // worked end to end under load.
    let (traces_seen, traces_dropped) = fetch_trace_stats(addr);
    handle.join();

    latencies_us.sort_unstable();
    let total = clients * requests;
    let ok = total - errors;
    let q = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };
    let throughput = ok as f64 / wall.as_secs_f64();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"B2 server load (POST /infer, erdos)\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"clients\": {clients}, \"requests_per_client\": {requests}, \"server_workers\": {workers}, \"host_cpus\": {}}},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!(
        "  \"totals\": {{\"requests\": {total}, \"ok\": {ok}, \"errors\": {errors}, \"wall_ms\": {:.3}, \"throughput_rps\": {throughput:.1}}},\n",
        wall.as_secs_f64() * 1e3
    ));
    json.push_str(&format!(
        "  \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n",
        q(0.50),
        q(0.95),
        q(0.99),
        latencies_us.last().copied().unwrap_or(0)
    ));
    json.push_str(&format!(
        "  \"tracing\": {{\"recent_traces\": {traces_seen}, \"dropped\": {traces_dropped}}},\n"
    ));
    json.push_str(&format!(
        "  \"identical_to_one_shot\": {}\n}}\n",
        mismatches == 0
    ));
    std::fs::write(&out_path, &json).expect("writing the bench report");
    eprintln!("loadgen: wrote {out_path}");
    print!("{json}");
    assert_eq!(errors, 0, "every request must succeed");
    assert_eq!(
        mismatches, 0,
        "server answers must match the one-shot CLI inference path"
    );
    assert!(
        traces_seen > 0,
        "the trace registry must retain traces recorded under load"
    );
}

/// Asks the live server for its recent traces; returns how many the
/// registry still holds and how many it evicted.
fn fetch_trace_stats(addr: SocketAddr) -> (usize, u64) {
    let Ok(stream) = TcpStream::connect(addr) else {
        return (0, 0);
    };
    let mut writer = stream.try_clone().expect("cloning the stats socket");
    let mut reader = BufReader::new(stream);
    let sent = write!(
        writer,
        "GET /debug/traces?limit=64 HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n"
    )
    .and_then(|()| writer.flush());
    if sent.is_err() {
        return (0, 0);
    }
    let Some((200, body)) = read_response(&mut reader) else {
        return (0, 0);
    };
    let Ok(json) = questpro_wire::parse(&body) else {
        return (0, 0);
    };
    let seen = json
        .get("traces")
        .and_then(questpro_wire::Json::as_arr)
        .map_or(0, <[questpro_wire::Json]>::len);
    let dropped = json
        .get("dropped")
        .and_then(questpro_wire::Json::as_u64)
        .unwrap_or(0);
    (seen, dropped)
}

struct ClientOutcome {
    latencies_us: Vec<u64>,
    errors: usize,
    mismatches: usize,
}

fn client(addr: SocketAddr, body: &str, requests: usize, reference: &[String]) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_us: Vec::with_capacity(requests),
        errors: 0,
        mismatches: 0,
    };
    let Ok(stream) = TcpStream::connect(addr) else {
        outcome.errors = requests;
        return outcome;
    };
    let mut writer = stream.try_clone().expect("cloning a client socket");
    let mut reader = BufReader::new(stream);
    for _ in 0..requests {
        let t0 = Instant::now();
        let sent = write!(
            writer,
            "POST /infer HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .and_then(|()| writer.flush());
        if sent.is_err() {
            outcome.errors += 1;
            continue;
        }
        match read_response(&mut reader) {
            Some((200, resp_body)) => {
                outcome.latencies_us.push(t0.elapsed().as_micros() as u64);
                if !matches_reference(&resp_body, reference) {
                    outcome.mismatches += 1;
                }
            }
            _ => outcome.errors += 1,
        }
    }
    outcome
}

/// Reads one `HTTP/1.1` response with a `Content-Length` body.
fn read_response(reader: &mut impl BufRead) -> Option<(u16, String)> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).ok()?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().ok()?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, String::from_utf8(body).ok()?))
}

/// The response's candidate texts must equal the one-shot answer,
/// in order.
fn matches_reference(body: &str, reference: &[String]) -> bool {
    let Ok(json) = questpro_wire::parse(body) else {
        return false;
    };
    let Some(candidates) = json.get("candidates").and_then(|c| c.as_arr()) else {
        return false;
    };
    candidates.len() == reference.len()
        && candidates
            .iter()
            .zip(reference)
            .all(|(c, want)| c.get("query").and_then(|q| q.as_str()) == Some(want))
}
