//! `loadgen` — concurrent load against a questpro-server.
//!
//! Two drivers share this binary:
//!
//! * **Thread mode** (default) boots the HTTP service in-process on an
//!   ephemeral loopback port, then drives it from `--clients` OS
//!   threads, each holding one keep-alive connection and issuing
//!   `--requests` `POST /infer` calls over the erdos world. Emits
//!   `BENCH_2.json` with throughput, latency quantiles, and a
//!   cross-client consistency check: every response body must be
//!   byte-identical to the library's one-shot `infer_top_k` answer,
//!   which is what the CLI `infer` path prints.
//! * **Connection mode** (`--connections N`) multiplexes N keep-alive
//!   connections on one thread over the server's own readiness facade
//!   (`questpro_bench::drive`), scaling to 10k+ sockets. Closed loop
//!   by default; `--open-loop --rate R --duration-secs D` schedules
//!   arrivals on a fixed timetable with latencies measured from the
//!   scheduled instant (coordinated-omission-aware). `--connect
//!   HOST:PORT` targets an external server (required at 10k: two
//!   processes split the fd budget); otherwise one is booted
//!   in-process. Emits a B8 JSON report (`--bench8 PATH`).
//!
//! Env:
//!   LOADGEN_TINY=1      smoke mode: 2 clients × 3 requests (CI).
//!
//! Flags (all optional): --clients N --requests N --workers N --out PATH
//!   --routes-out PATH   also scrape `/metrics` after the run and write
//!                       per-route p50/p95/p99 latency quantiles (read
//!                       off the `questpro_route_duration_ns` log2
//!                       histograms) as a B5 JSON report.
//!   --connections N --open-loop --rate R --duration-secs D
//!   --route eval|infer --connect HOST:PORT --bench8 PATH

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use questpro_bench::drive;
use questpro_server::{start, ServerConfig};

fn main() {
    let mut clients = 8usize;
    let mut requests = 25usize;
    let mut workers = 8usize;
    let mut out_path = String::from("BENCH_2.json");
    let mut routes_out: Option<String> = None;
    let mut connections = 0usize;
    let mut open_loop = false;
    let mut rate = 1_000f64;
    let mut duration_secs = 10u64;
    let mut route = String::from("eval");
    let mut connect: Option<String> = None;
    let mut bench8: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        // `--open-loop` is a bare switch; everything else takes a value.
        if flag == "--open-loop" {
            open_loop = true;
            continue;
        }
        let value = it.next();
        let num = |v: Option<&String>| v.and_then(|s| s.parse::<usize>().ok());
        match flag.as_str() {
            "--clients" => clients = num(value).unwrap_or(clients).max(1),
            "--requests" => requests = num(value).unwrap_or(requests).max(1),
            "--workers" => workers = num(value).unwrap_or(workers).max(1),
            "--out" => out_path = value.cloned().unwrap_or(out_path),
            "--routes-out" => routes_out = value.cloned(),
            "--connections" => connections = num(value).unwrap_or(0),
            "--rate" => rate = value.and_then(|s| s.parse().ok()).unwrap_or(rate),
            "--duration-secs" => {
                duration_secs = value.and_then(|s| s.parse().ok()).unwrap_or(duration_secs);
            }
            "--route" => route = value.cloned().unwrap_or(route),
            "--connect" => connect = value.cloned(),
            "--bench8" => bench8 = value.cloned(),
            other => {
                eprintln!("loadgen: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if connections > 0 {
        run_connection_mode(&ConnectionMode {
            connections,
            requests,
            workers,
            open_loop,
            rate,
            duration_secs,
            route,
            connect,
            out: bench8.unwrap_or_else(|| "BENCH_8.json".into()),
        });
        return;
    }
    if std::env::var("LOADGEN_TINY").as_deref() == Ok("1") {
        clients = 2;
        requests = 3;
    }

    let handle = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue: (clients * 2).max(64),
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral loopback port");
    let addr = handle.addr();
    eprintln!("loadgen: server on {addr}, {clients} clients x {requests} requests");

    // The reference answer the server must reproduce under load: the
    // same one-shot inference the CLI `infer` path performs.
    let ont = questpro_data::erdos_ontology();
    let examples = questpro_data::erdos_example_set(&ont);
    let examples_text = questpro_graph::exformat::serialize_examples(&ont, &examples);
    let (reference, _) =
        questpro_core::infer_top_k(&ont, &examples, &questpro_core::TopKConfig::default());
    let reference: Vec<String> = reference
        .iter()
        .map(questpro_query::sparql::format_union)
        .collect();

    let body = questpro_wire::Json::obj([
        ("ontology", questpro_wire::Json::str("erdos")),
        ("examples", questpro_wire::Json::str(examples_text)),
    ])
    .to_text();

    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let body = body.clone();
            let reference = reference.clone();
            std::thread::Builder::new()
                .name(format!("loadgen-client-{c}"))
                .spawn(move || client(addr, &body, requests, &reference))
                .expect("spawning a client thread")
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut errors = 0usize;
    let mut mismatches = 0usize;
    for t in threads {
        let outcome = t.join().expect("client thread must not panic");
        latencies_us.extend(outcome.latencies_us);
        errors += outcome.errors;
        mismatches += outcome.mismatches;
    }
    let wall = started.elapsed();

    // Every request ran under a server-side trace; pull the registry's
    // view before shutdown so the report records the tracing pipeline
    // worked end to end under load.
    let (traces_seen, traces_dropped) = fetch_trace_stats(addr);
    let route_report = routes_out
        .as_ref()
        .map(|_| fetch_route_quantiles(addr, clients, requests, workers));
    handle.join();

    latencies_us.sort_unstable();
    let total = clients * requests;
    let ok = total - errors;
    let q = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };
    let throughput = ok as f64 / wall.as_secs_f64();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"B2 server load (POST /infer, erdos)\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"clients\": {clients}, \"requests_per_client\": {requests}, \"server_workers\": {workers}, \"host_cpus\": {}}},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!(
        "  \"totals\": {{\"requests\": {total}, \"ok\": {ok}, \"errors\": {errors}, \"wall_ms\": {:.3}, \"throughput_rps\": {throughput:.1}}},\n",
        wall.as_secs_f64() * 1e3
    ));
    json.push_str(&format!(
        "  \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n",
        q(0.50),
        q(0.95),
        q(0.99),
        latencies_us.last().copied().unwrap_or(0)
    ));
    json.push_str(&format!(
        "  \"tracing\": {{\"recent_traces\": {traces_seen}, \"dropped\": {traces_dropped}}},\n"
    ));
    json.push_str(&format!(
        "  \"identical_to_one_shot\": {}\n}}\n",
        mismatches == 0
    ));
    std::fs::write(&out_path, &json).expect("writing the bench report");
    eprintln!("loadgen: wrote {out_path}");
    print!("{json}");
    if let (Some(path), Some(report)) = (&routes_out, &route_report) {
        std::fs::write(path, report).expect("writing the route-quantile report");
        eprintln!("loadgen: wrote {path}");
        print!("{report}");
    }
    assert_eq!(errors, 0, "every request must succeed");
    assert_eq!(
        mismatches, 0,
        "server answers must match the one-shot CLI inference path"
    );
    assert!(
        traces_seen > 0,
        "the trace registry must retain traces recorded under load"
    );
}

/// Asks the live server for its recent traces; returns how many the
/// registry still holds and how many it evicted.
fn fetch_trace_stats(addr: SocketAddr) -> (usize, u64) {
    let Ok(stream) = TcpStream::connect(addr) else {
        return (0, 0);
    };
    let mut writer = stream.try_clone().expect("cloning the stats socket");
    let mut reader = BufReader::new(stream);
    let sent = write!(
        writer,
        "GET /debug/traces?limit=64 HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n"
    )
    .and_then(|()| writer.flush());
    if sent.is_err() {
        return (0, 0);
    }
    let Some((200, body)) = read_response(&mut reader) else {
        return (0, 0);
    };
    let Ok(json) = questpro_wire::parse(&body) else {
        return (0, 0);
    };
    let seen = json
        .get("traces")
        .and_then(questpro_wire::Json::as_arr)
        .map_or(0, <[questpro_wire::Json]>::len);
    let dropped = json
        .get("dropped")
        .and_then(questpro_wire::Json::as_u64)
        .unwrap_or(0);
    (seen, dropped)
}

/// One route's cumulative histogram as scraped off `/metrics`.
#[derive(Default)]
struct RouteHist {
    /// `(le_ns, cumulative_count)` for every finite bucket, in order.
    buckets: Vec<(u64, u64)>,
    count: u64,
    sum_ns: u64,
}

/// Scrapes `/metrics` and renders the B5 per-route quantile report.
///
/// A log2 histogram cannot produce exact quantiles, so each reported
/// value is the *upper bound* of the first bucket whose cumulative
/// count reaches `ceil(q * count)` — a ≤ 2× overestimate by
/// construction, and the same convention Prometheus'
/// `histogram_quantile` uses for its highest bucket.
fn fetch_route_quantiles(
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    workers: usize,
) -> String {
    let scrape = fetch_metrics(addr).unwrap_or_default();
    let mut routes: Vec<(String, RouteHist)> = Vec::new();
    fn entry<'a>(routes: &'a mut Vec<(String, RouteHist)>, route: &str) -> &'a mut RouteHist {
        if let Some(i) = routes.iter().position(|(r, _)| r == route) {
            &mut routes[i].1
        } else {
            routes.push((route.to_string(), RouteHist::default()));
            &mut routes.last_mut().expect("just pushed").1
        }
    }
    for line in scrape.lines() {
        let Some(rest) = line.strip_prefix("questpro_route_duration_ns") else {
            continue;
        };
        let Some((labels, value)) = rest.rsplit_once(' ') else {
            continue;
        };
        if let Some(labels) = labels.strip_prefix("_bucket{route=\"") {
            let Some((route, le)) = labels.split_once("\",le=\"") else {
                continue;
            };
            let le = le.trim_end_matches("\"}");
            if le == "+Inf" {
                continue; // `_count` already carries the total.
            }
            if let (Ok(le), Ok(cum)) = (le.parse::<u64>(), value.parse::<u64>()) {
                entry(&mut routes, route).buckets.push((le, cum));
            }
        } else if let Some(route) = labels
            .strip_prefix("_count{route=\"")
            .map(|l| l.trim_end_matches("\"}"))
        {
            entry(&mut routes, route).count = value.parse().unwrap_or(0);
        } else if let Some(route) = labels
            .strip_prefix("_sum{route=\"")
            .map(|l| l.trim_end_matches("\"}"))
        {
            entry(&mut routes, route).sum_ns = value.parse().unwrap_or(0);
        }
    }

    let quantile_ns = |h: &RouteHist, q: f64| -> u64 {
        let target = (q * h.count as f64).ceil().max(1.0) as u64;
        for &(le, cum) in &h.buckets {
            if cum >= target {
                return le;
            }
        }
        h.buckets.last().map_or(0, |&(le, _)| le)
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"B5 per-route latency quantiles (questpro_route_duration_ns log2 histograms)\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"clients\": {clients}, \"requests_per_client\": {requests}, \"server_workers\": {workers}, \"host_cpus\": {}}},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str("  \"note\": \"quantiles are bucket upper bounds (<= 2x overestimates)\",\n");
    json.push_str("  \"routes\": [\n");
    let active: Vec<&(String, RouteHist)> = routes.iter().filter(|(_, h)| h.count > 0).collect();
    for (i, (route, h)) in active.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"route\": \"{}\", \"count\": {}, \"mean_us\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
            route.replace('\\', "\\\\").replace('"', "\\\""),
            h.count,
            h.sum_ns as f64 / h.count as f64 / 1e3,
            quantile_ns(h, 0.50) as f64 / 1e3,
            quantile_ns(h, 0.95) as f64 / 1e3,
            quantile_ns(h, 0.99) as f64 / 1e3,
        ));
        json.push_str(if i + 1 == active.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Fetches the raw `/metrics` scrape text from the live server.
fn fetch_metrics(addr: SocketAddr) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    write!(
        writer,
        "GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n"
    )
    .and_then(|()| writer.flush())
    .ok()?;
    let (status, body) = read_response(&mut reader)?;
    (status == 200).then_some(body)
}

struct ClientOutcome {
    latencies_us: Vec<u64>,
    errors: usize,
    mismatches: usize,
}

fn client(addr: SocketAddr, body: &str, requests: usize, reference: &[String]) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_us: Vec::with_capacity(requests),
        errors: 0,
        mismatches: 0,
    };
    let Ok(stream) = TcpStream::connect(addr) else {
        outcome.errors = requests;
        return outcome;
    };
    let mut writer = stream.try_clone().expect("cloning a client socket");
    let mut reader = BufReader::new(stream);
    for _ in 0..requests {
        let t0 = Instant::now();
        let sent = write!(
            writer,
            "POST /infer HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .and_then(|()| writer.flush());
        if sent.is_err() {
            outcome.errors += 1;
            continue;
        }
        match read_response(&mut reader) {
            Some((200, resp_body)) => {
                outcome.latencies_us.push(t0.elapsed().as_micros() as u64);
                if !matches_reference(&resp_body, reference) {
                    outcome.mismatches += 1;
                }
            }
            _ => outcome.errors += 1,
        }
    }
    outcome
}

/// Reads one `HTTP/1.1` response with a `Content-Length` body.
fn read_response(reader: &mut impl BufRead) -> Option<(u16, String)> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).ok()?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().ok()?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, String::from_utf8(body).ok()?))
}

/// The response's candidate texts must equal the one-shot answer,
/// in order.
fn matches_reference(body: &str, reference: &[String]) -> bool {
    let Ok(json) = questpro_wire::parse(body) else {
        return false;
    };
    let Some(candidates) = json.get("candidates").and_then(|c| c.as_arr()) else {
        return false;
    };
    candidates.len() == reference.len()
        && candidates
            .iter()
            .zip(reference)
            .all(|(c, want)| c.get("query").and_then(|q| q.as_str()) == Some(want))
}

/// Everything `--connections` mode needs, parsed off the CLI.
struct ConnectionMode {
    connections: usize,
    /// Closed-loop requests per connection.
    requests: usize,
    /// Workers for the in-process server (ignored with `--connect`).
    workers: usize,
    open_loop: bool,
    rate: f64,
    duration_secs: u64,
    route: String,
    connect: Option<String>,
    out: String,
}

/// The B8 path: thousands of multiplexed keep-alive connections via
/// `questpro_bench::drive`, against an external or in-process server.
fn run_connection_mode(mode: &ConnectionMode) {
    let (addr, handle) = match &mode.connect {
        Some(spec) => {
            let addr = spec
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .unwrap_or_else(|| panic!("loadgen: cannot resolve --connect {spec:?}"));
            (addr, None)
        }
        None => {
            let handle = start(&ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: mode.workers,
                queue: (mode.connections * 2).max(64),
                max_conns: mode.connections + 64,
                ..ServerConfig::default()
            })
            .expect("binding an ephemeral loopback port");
            (handle.addr(), Some(handle))
        }
    };

    // Build the request once and capture the byte-exact reference
    // answer on a plain blocking connection before any load flows.
    let body = match mode.route.as_str() {
        "eval" => {
            // A tiny world with a known answer; 409 means an earlier
            // loadgen run (or a shared server) already posted it.
            let world = questpro_wire::Json::obj([
                ("name", questpro_wire::Json::str("loadgen-tiny")),
                (
                    "triples",
                    questpro_wire::Json::str("a knows b\nb knows c\n"),
                ),
            ])
            .to_text();
            match blocking_call(addr, "POST", "/ontologies", &world) {
                Some((201 | 409, _)) => {}
                other => panic!("loadgen: seeding the eval world failed: {other:?}"),
            }
            questpro_wire::Json::obj([
                ("ontology", questpro_wire::Json::str("loadgen-tiny")),
                (
                    "query",
                    questpro_wire::Json::str("SELECT ?x WHERE { ?x :knows ?y . }"),
                ),
            ])
            .to_text()
        }
        "infer" => {
            let ont = questpro_data::erdos_ontology();
            let examples = questpro_data::erdos_example_set(&ont);
            let examples_text = questpro_graph::exformat::serialize_examples(&ont, &examples);
            questpro_wire::Json::obj([
                ("ontology", questpro_wire::Json::str("erdos")),
                ("examples", questpro_wire::Json::str(examples_text)),
            ])
            .to_text()
        }
        other => panic!("loadgen: --route must be eval or infer, got {other:?}"),
    };
    let path = format!("/{}", mode.route);
    let (status, reference) = blocking_call(addr, "POST", &path, &body)
        .unwrap_or_else(|| panic!("loadgen: reference {path} request got no response"));
    assert_eq!(status, 200, "reference {path} failed: {reference}");
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes();

    let total_requests = if mode.open_loop {
        ((mode.rate * mode.duration_secs as f64).round() as usize).max(1)
    } else {
        mode.connections * mode.requests
    };
    eprintln!(
        "loadgen: {} conns, {} total {} requests ({}) against {addr}",
        mode.connections,
        total_requests,
        path,
        if mode.open_loop {
            format!("open loop @ {} rps", mode.rate)
        } else {
            "closed loop".into()
        }
    );
    let report = drive::run(&drive::DriveConfig {
        addr,
        connections: mode.connections,
        request,
        total_requests,
        rate: mode.open_loop.then_some(mode.rate),
        expect_body: Some(reference.clone().into_bytes()),
        timeout: Duration::from_secs(mode.duration_secs + 120).max(Duration::from_secs(300)),
    })
    .expect("the drive setup must succeed");
    if let Some(handle) = handle {
        handle.join();
    }

    let mut lat = report.latencies_us.clone();
    lat.sort_unstable();
    let q = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        lat[((lat.len() as f64 - 1.0) * p).round() as usize]
    };
    let throughput = report.ok as f64 / report.wall.as_secs_f64();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"B8 event-loop keep-alive load (POST {path})\",\n"
    ));
    json.push_str(&format!(
        "  \"config\": {{\"connections\": {}, \"open_loop\": {}, \"rate_rps\": {:.1}, \"duration_secs\": {}, \"route\": \"{}\", \"server\": \"{}\", \"host_cpus\": {}}},\n",
        mode.connections,
        mode.open_loop,
        if mode.open_loop { mode.rate } else { 0.0 },
        if mode.open_loop { mode.duration_secs } else { 0 },
        mode.route,
        if mode.connect.is_some() { "external" } else { "in-process" },
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!(
        "  \"totals\": {{\"requests\": {}, \"connected\": {}, \"ok\": {}, \"errors\": {}, \"mismatches\": {}, \"wall_ms\": {:.3}, \"throughput_rps\": {throughput:.1}}},\n",
        total_requests,
        report.connected,
        report.ok,
        report.errors,
        report.mismatches,
        report.wall.as_secs_f64() * 1e3
    ));
    json.push_str(&format!(
        "  \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n",
        q(0.50),
        q(0.95),
        q(0.99),
        lat.last().copied().unwrap_or(0)
    ));
    json.push_str(&format!(
        "  \"identical_to_reference\": {}\n}}\n",
        report.mismatches == 0
    ));
    std::fs::write(&mode.out, &json).expect("writing the B8 report");
    eprintln!("loadgen: wrote {}", mode.out);
    print!("{json}");
    assert_eq!(
        report.connected, mode.connections,
        "every connection must establish"
    );
    assert_eq!(report.errors, 0, "every request must succeed");
    assert_eq!(
        report.mismatches, 0,
        "every response must match the reference byte-for-byte"
    );
}

/// One request on a fresh blocking connection; `(status, body)`.
fn blocking_call(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .ok()?;
    writer.flush().ok()?;
    read_response(&mut reader)
}
