//! **E1** — Section VI-B summary table: how many explanations each
//! workload query needs before top-k inference reconstructs it.
//!
//! Paper-reported shape: 15 automatic queries; 11 of 15 found with only
//! 2 explanations; all but q8b within 11 explanations.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_explanations_needed`

use questpro_bench::{automatic_workload, median, parallel_map, reconstruct, Table, Worlds};
use questpro_core::TopKConfig;

const TRIALS: u64 = 10;
const CAP: usize = 16;

fn main() {
    let worlds = Worlds::generate();
    let cfg = TopKConfig::default();

    let rows = parallel_map(automatic_workload(), |w| {
        let ont = worlds.for_kind(w.kind);
        let runs: Vec<_> = (0..TRIALS)
            .map(|t| reconstruct(ont, &w.query, &cfg, 0x9e1 + t, CAP))
            .collect();
        let solved: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.explanations.map(|n| n as f64))
            .collect();
        let (med, min) = if solved.is_empty() {
            ("—".to_string(), "—".to_string())
        } else {
            (
                format!("{:.0}", median(solved.clone())),
                format!(
                    "{:.0}",
                    solved.iter().cloned().fold(f64::INFINITY, f64::min)
                ),
            )
        };
        vec![
            w.id.to_string(),
            format!("{:?}", w.kind),
            min,
            med,
            format!("{}/{}", solved.len(), TRIALS),
            w.description.to_string(),
        ]
    });

    let mut t = Table::new(
        "E1 — explanations needed per query (Section VI-B summary)",
        &[
            "query",
            "world",
            "min expl.",
            "median expl.",
            "solved",
            "intent",
        ],
    );
    let two_shot = rows.iter().filter(|r| r[2] == "2").count();
    for r in rows {
        t.row(r);
    }
    println!("{}", t.to_markdown());
    println!(
        "{} of 15 queries reconstructed with only 2 explanations in their best trial \
         (paper: 11 of 15).",
        two_shot
    );
}
