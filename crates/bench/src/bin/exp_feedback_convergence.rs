//! **E7** — Section V feasibility: how many provenance-backed questions
//! the full interactive pipeline (top-k → Algorithm 3 → disequality
//! refinement) needs before it lands on the user's intended query.
//!
//! The paper demonstrates the loop qualitatively (Example 5.5); this
//! experiment quantifies it with a correct oracle per workload query:
//! selection questions are bounded by k−1, refinement questions by the
//! number of inferred disequalities, and the final query should match
//! the target's semantics whenever any candidate pattern does.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_feedback_convergence`

use questpro_bench::{full_workload, parallel_map, Table, Worlds};
use questpro_core::TopKConfig;
use questpro_engine::{evaluate_union, sample_example_set};
use questpro_feedback::{run_session, SessionConfig, TargetOracle};
use questpro_graph::rng::StdRng;

const K: usize = 5;
const EXPLANATIONS: usize = 4;

fn main() {
    let worlds = Worlds::generate();
    let cfg = SessionConfig {
        topk: TopKConfig {
            k: K,
            ..Default::default()
        },
        refine: true,
        ..Default::default()
    };

    let rows = parallel_map(full_workload(), |w| {
        let ont = worlds.for_kind(w.kind);
        let mut rng = StdRng::seed_from_u64(0xfeedb);
        let examples = sample_example_set(ont, &w.query, EXPLANATIONS, &mut rng, 6);
        if examples.len() < 2 {
            return vec![w.id.to_string(); 6];
        }
        let mut oracle = TargetOracle::new(w.query.clone());
        let result = run_session(ont, &examples, &mut oracle, &mut rng, &cfg);
        let semantics_ok = evaluate_union(ont, &result.query) == evaluate_union(ont, &w.query);
        vec![
            w.id.to_string(),
            result.candidates.len().to_string(),
            result.selection_transcript.len().to_string(),
            result.refinement_questions.to_string(),
            (result.selection_transcript.len() + result.refinement_questions).to_string(),
            if semantics_ok { "yes" } else { "no" }.to_string(),
        ]
    });

    let mut t = Table::new(
        format!("E7 — interactive convergence (k={K}, {EXPLANATIONS} explanations, exact oracle)"),
        &[
            "query",
            "candidates",
            "selection Qs",
            "refinement Qs",
            "total Qs",
            "target semantics",
        ],
    );
    let ok = rows.iter().filter(|r| r[5] == "yes").count();
    let total = rows.len();
    for r in rows {
        t.row(r);
    }
    println!("{}", t.to_markdown());
    println!(
        "{ok}/{total} targets reached with {EXPLANATIONS} sampled explanations; selection \
         questions are bounded by k−1. Remaining 'no' rows need more examples (see E1)."
    );
}
