//! **E6** — Figure 8: simulated user-study interaction outcomes.
//!
//! Nine simulated users each run four interactions (two basic, two
//! challenging Table I queries), with the paper's observed error modes
//! injected at calibrated rates. Paper-reported histogram: 36
//! interactions = 30 successful + 2 successful-after-redo + 4
//! failed/redone cases.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_user_study`

use questpro_bench::{Table, Worlds};
use questpro_data::movie_workload;
use questpro_feedback::{simulate_study, StudyConfig};
use questpro_graph::rng::StdRng;
use questpro_query::UnionQuery;

fn main() {
    let worlds = Worlds::generate();
    let targets: Vec<UnionQuery> = movie_workload().into_iter().map(|w| w.query).collect();
    let cfg = StudyConfig::default();

    // Aggregate several seeds so the error modes all get sampled; run
    // both with and without robust (suspect-explanation filtering)
    // sessions as an ablation of the Section VIII future-work feature.
    let mut per_seed = Table::new(
        "E6 — Figure 8: simulated study outcomes per seed (9 users × 4 interactions)",
        &[
            "seed",
            "explanations",
            "successful",
            "redo-success",
            "failed",
            "robust",
        ],
    );
    let mut aggregates = Vec::new();
    // Ablation grid: the paper's 2 explanations per interaction (where
    // filtering a suspect from a 2-element set must fall back) and 3
    // (where the robust diagnosis can engage).
    for explanations in [2usize, 3] {
        for robust in [false, true] {
            let mut cfg = cfg;
            cfg.explanations = explanations;
            cfg.session.robust = robust;
            let mut totals = (0usize, 0usize, 0usize);
            for seed in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(0xf18 + seed);
                let report = simulate_study(&worlds.movies, &targets, &cfg, &mut rng);
                let (s, r, f) = (
                    report.successes(),
                    report.redo_successes(),
                    report.failures(),
                );
                totals.0 += s;
                totals.1 += r;
                totals.2 += f;
                per_seed.row(vec![
                    seed.to_string(),
                    explanations.to_string(),
                    s.to_string(),
                    r.to_string(),
                    f.to_string(),
                    if robust { "yes" } else { "no" }.to_string(),
                ]);
            }
            aggregates.push((explanations, robust, totals));
        }
    }
    println!("{}", per_seed.to_markdown());
    for (explanations, robust, totals) in aggregates {
        let n = totals.0 + totals.1 + totals.2;
        println!(
            "Aggregate over {n} interactions ({explanations} expl., robust={}): {:.1}% success, \
             {:.1}% redo-success, {:.1}% failed.",
            if robust { "on" } else { "off" },
            100.0 * totals.0 as f64 / n as f64,
            100.0 * totals.1 as f64 / n as f64,
            100.0 * totals.2 as f64 / n as f64,
        );
    }
    println!(
        "Paper shape to check (36 interactions): 83% success, 6% redo-success, 11% problem \
         cases — dominated by successes with a small tail of redos/failures. Robust \
         sessions should trim the failure tail further."
    );
}
