//! **E3** — Figures 6a (SP2B) and 6b (BSBM): number of intermediate
//! queries considered (Algorithm 1 calls inside Algorithm 2) as a
//! function of the number of explanations, with k fixed to 5.
//!
//! Paper-reported shape: monotone growth, reaching >260 intermediate
//! queries at 14 explanations for BSBM q2v0.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_intermediate_vs_explanations`

use questpro_bench::{automatic_workload, parallel_map, Table, Worlds};
use questpro_core::{infer_top_k, TopKConfig};
use questpro_data::OntologyKind;
use questpro_engine::sample_example_set;
use questpro_graph::rng::StdRng;

const K: usize = 5;
const EXPLANATION_COUNTS: [usize; 7] = [2, 4, 6, 8, 10, 12, 14];

fn main() {
    let worlds = Worlds::generate();
    let cfg = TopKConfig {
        k: K,
        ..Default::default()
    };

    let rows = parallel_map(automatic_workload(), |w| {
        let ont = worlds.for_kind(w.kind);
        let mut cells = vec![w.id.to_string()];
        for &n in &EXPLANATION_COUNTS {
            let mut rng = StdRng::seed_from_u64(0xf16a + n as u64);
            let examples = sample_example_set(ont, &w.query, n, &mut rng, 6);
            if examples.len() < 2 {
                cells.push("—".to_string());
                continue;
            }
            let (_, stats) = infer_top_k(ont, &examples, &cfg);
            // The Figure 6 metric counts *considered* intermediate
            // queries; the merge cache only saves recomputation.
            cells.push(format!(
                "{} ({}c)",
                stats.algorithm1_calls, stats.merge_cache_hits
            ));
        }
        (w.kind, cells)
    });

    for (kind, figure) in [
        (OntologyKind::Sp2b, "Figure 6a (SP2B)"),
        (OntologyKind::Bsbm, "Figure 6b (BSBM)"),
    ] {
        let mut headers: Vec<String> = vec!["query".to_string()];
        headers.extend(EXPLANATION_COUNTS.iter().map(|n| format!("{n} expl.")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            format!("E3 — {figure}: intermediate queries vs explanations (k={K})"),
            &header_refs,
        );
        for (k, cells) in &rows {
            if *k == kind {
                t.row(cells.clone());
            }
        }
        println!("{}", t.to_markdown());
    }
    println!(
        "Paper shape to check: counts grow with the number of explanations; q2v0 peaks highest."
    );
}
