//! **E5** — Table I: the ten DBpedia movie queries used in the user
//! study, rendered as SPARQL text, with their result counts on the
//! synthetic movie world and a reconstruction check for each.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_table1_movies`

use questpro_bench::{parallel_map, reconstruct, Table, Worlds};
use questpro_core::TopKConfig;
use questpro_data::movie_workload;
use questpro_engine::evaluate_union;

fn main() {
    let worlds = Worlds::generate();
    let cfg = TopKConfig::default();

    let rows = parallel_map(movie_workload(), |w| {
        let ont = &worlds.movies;
        let n_results = evaluate_union(ont, &w.query).len();
        let run = reconstruct(ont, &w.query, &cfg, 0x7ab1e, 12);
        (
            vec![
                w.id.to_string(),
                w.description.to_string(),
                n_results.to_string(),
                run.explanations
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "—".to_string()),
            ],
            format!(
                "### {} — {}\n\n```sparql\n{}\n```\n",
                w.id, w.description, w.query
            ),
        )
    });

    let mut t = Table::new(
        "E5 — Table I: the ten movie study queries",
        &["id", "intent", "results", "expl. to reconstruct"],
    );
    for (r, _) in &rows {
        t.row(r.clone());
    }
    println!("{}", t.to_markdown());

    println!("## Query texts\n");
    for (_, text) in &rows {
        println!("{text}");
    }
}
