//! **E2** — Section VI-B runtime paragraph: execution time of the top-k
//! algorithm (k = 3) for 7 explanations, per workload query.
//!
//! Paper-reported shape: generally under 0.5 s, with outliers SP2B q12a
//! (≈1.34 s) and BSBM q2v0 (≈5.8 s) — q2v0 is the largest pattern (11
//! edges), so it should remain the slowest here as well.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_runtime`
//! (add `--threads N` to shard the inference hot path; results are
//! bit-identical to the sequential run).

use std::time::Instant;

use questpro_bench::{automatic_workload, cli_threads, median, parallel_map, Table, Worlds};
use questpro_core::{infer_top_k, TopKConfig};
use questpro_engine::sample_example_set;
use questpro_graph::rng::StdRng;

const TRIALS: u64 = 5;
const EXPLANATIONS: usize = 7;

fn main() {
    let worlds = Worlds::generate();
    let threads = cli_threads();
    let cfg = TopKConfig {
        k: 3,
        threads,
        ..Default::default()
    };

    let mut rows = parallel_map(automatic_workload(), |w| {
        let ont = worlds.for_kind(w.kind);
        let mut times_ms = Vec::new();
        let mut calls = Vec::new();
        for t in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(0xe2 + t);
            let examples = sample_example_set(ont, &w.query, EXPLANATIONS, &mut rng, 6);
            if examples.len() < 2 {
                continue;
            }
            let start = Instant::now();
            let (_, stats) = infer_top_k(ont, &examples, &cfg);
            times_ms.push(start.elapsed().as_secs_f64() * 1e3);
            calls.push(stats.algorithm1_calls as f64);
        }
        let med = median(times_ms.clone());
        (
            med,
            vec![
                w.id.to_string(),
                format!("{:?}", w.kind),
                format!("{med:.2}"),
                format!("{:.2}", times_ms.iter().cloned().fold(0.0_f64, f64::max)),
                format!("{:.0}", median(calls)),
            ],
        )
    });
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite times"));

    let mut t = Table::new(
        format!("E2 — top-k inference runtime (k=3, 7 explanations, median of 5 trials, {threads} thread(s))"),
        &[
            "query",
            "world",
            "median ms",
            "max ms",
            "median Alg.1 calls",
        ],
    );
    for (_, r) in rows {
        t.row(r);
    }
    println!("{}", t.to_markdown());

    // The runtime *series* over the number of explanations (the paper's
    // "execution times … for an increasing number of explanations and a
    // fixed k = 3").
    let counts = [2usize, 4, 6, 8, 10, 12, 14];
    let series = parallel_map(automatic_workload(), |w| {
        let ont = worlds.for_kind(w.kind);
        let mut cells = vec![w.id.to_string()];
        for &n in &counts {
            let mut times = Vec::new();
            for t in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(0xe27 + t);
                let examples = sample_example_set(ont, &w.query, n, &mut rng, 6);
                if examples.len() < 2 {
                    continue;
                }
                let start = Instant::now();
                let _ = infer_top_k(ont, &examples, &cfg);
                times.push(start.elapsed().as_secs_f64() * 1e3);
            }
            cells.push(if times.is_empty() {
                "—".to_string()
            } else {
                format!("{:.1}", median(times))
            });
        }
        cells
    });
    let mut headers = vec!["query".to_string()];
    headers.extend(counts.iter().map(|n| format!("{n} expl. (ms)")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut ts = Table::new(
        "E2 — runtime vs number of explanations (k=3, median of 3 trials)",
        &header_refs,
    );
    for r in series {
        ts.row(r);
    }
    println!("{}", ts.to_markdown());
    println!(
        "Paper shape to check: q2v0 slowest by a wide margin (≈5.8 s at 7 explanations \
         in the paper), q12a the SP2B outlier; runtimes grow superlinearly with the \
         number of explanations; everything else well under the paper's 500 ms."
    );
}
