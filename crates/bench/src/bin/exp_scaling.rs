//! **A3** — scaling study (not a paper figure; substantiates the
//! substitution argument of DESIGN.md): how evaluation and inference
//! costs grow with ontology size. The paper ran on RDF fragments of
//! 42–647 MB and argued size only affects example variety; this sweep
//! shows the engine's result-anchored evaluation and the top-k
//! inference growing smoothly with scale, so the shape conclusions of
//! E1–E4 are not artifacts of the small default worlds.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_scaling`
//! (add `--threads N` to shard evaluation and inference; results are
//! bit-identical to the sequential run).

use std::time::Instant;

use questpro_bench::{cli_threads, median, Table};
use questpro_core::{infer_top_k, TopKConfig};
use questpro_data::{generate_sp2b, sp2b_workload, Sp2bConfig};
use questpro_engine::{evaluate_union_with, sample_example_set};
use questpro_graph::rng::StdRng;

const SCALES: [f64; 4] = [0.5, 1.0, 2.0, 4.0];
const TRIALS: u64 = 3;

fn main() {
    let q8a = sp2b_workload()
        .into_iter()
        .find(|w| w.id == "q8a")
        .expect("q8a in catalog")
        .query;
    let q2 = sp2b_workload()
        .into_iter()
        .find(|w| w.id == "q2")
        .expect("q2 in catalog")
        .query;

    let threads = cli_threads();
    let mut t = Table::new(
        format!(
            "A3 — scaling with ontology size (SP2B-like, k=3, 7 explanations, {threads} thread(s))"
        ),
        &[
            "scale",
            "nodes",
            "edges",
            "eval q8a ms",
            "eval q2 ms",
            "infer q8a ms",
            "infer q2 ms",
        ],
    );
    for scale in SCALES {
        let cfg = Sp2bConfig {
            authors: (300.0 * scale) as usize,
            articles: (600.0 * scale) as usize,
            inproceedings: (400.0 * scale) as usize,
            ..Default::default()
        };
        let ont = generate_sp2b(&cfg);
        let eval_ms = |q: &questpro_query::UnionQuery| {
            let times: Vec<f64> = (0..TRIALS)
                .map(|_| {
                    let start = Instant::now();
                    let n = evaluate_union_with(&ont, q, threads).len();
                    std::hint::black_box(n);
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            median(times)
        };
        let infer_ms = |q: &questpro_query::UnionQuery| {
            let times: Vec<f64> = (0..TRIALS)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(0xa3 + s);
                    let ex = sample_example_set(&ont, q, 7, &mut rng, 6);
                    let start = Instant::now();
                    let tk = TopKConfig {
                        threads,
                        ..Default::default()
                    };
                    let out = infer_top_k(&ont, &ex, &tk);
                    std::hint::black_box(out.1.algorithm1_calls);
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            median(times)
        };
        t.row(vec![
            format!("{scale}x"),
            ont.node_count().to_string(),
            ont.edge_count().to_string(),
            format!("{:.2}", eval_ms(&q8a)),
            format!("{:.2}", eval_ms(&q2)),
            format!("{:.2}", infer_ms(&q8a)),
            format!("{:.2}", infer_ms(&q2)),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "Check: evaluation grows roughly linearly with edge count; inference time is \
         dominated by explanation size, not ontology size (the paper's premise for \
         running on fragments)."
    );
}
