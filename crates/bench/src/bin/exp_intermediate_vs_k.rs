//! **E4** — Figures 6c (SP2B, 7 explanations) and 6d (BSBM, 10
//! explanations): number of intermediate queries considered as a
//! function of the beam width k.
//!
//! Paper-reported shape: growth with k, more moderate than the growth
//! with the number of explanations, with occasional dips caused by the
//! random choice of examples.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_intermediate_vs_k`

use questpro_bench::{automatic_workload, parallel_map, Table, Worlds};
use questpro_core::{infer_top_k, TopKConfig};
use questpro_data::OntologyKind;
use questpro_engine::sample_example_set;
use questpro_graph::rng::StdRng;

const KS: [usize; 6] = [1, 2, 4, 6, 8, 10];

fn explanations_for(kind: OntologyKind) -> usize {
    match kind {
        OntologyKind::Bsbm => 10,
        _ => 7,
    }
}

fn main() {
    let worlds = Worlds::generate();

    let rows = parallel_map(automatic_workload(), |w| {
        let ont = worlds.for_kind(w.kind);
        let n = explanations_for(w.kind);
        let mut rng = StdRng::seed_from_u64(0xf16c);
        let examples = sample_example_set(ont, &w.query, n, &mut rng, 6);
        let mut cells = vec![w.id.to_string()];
        for &k in &KS {
            if examples.len() < 2 {
                cells.push("—".to_string());
                continue;
            }
            let cfg = TopKConfig {
                k,
                ..Default::default()
            };
            let (_, stats) = infer_top_k(ont, &examples, &cfg);
            cells.push(stats.algorithm1_calls.to_string());
        }
        (w.kind, cells)
    });

    for (kind, figure) in [
        (OntologyKind::Sp2b, "Figure 6c (SP2B, 7 explanations)"),
        (OntologyKind::Bsbm, "Figure 6d (BSBM, 10 explanations)"),
    ] {
        let mut headers: Vec<String> = vec!["query".to_string()];
        headers.extend(KS.iter().map(|k| format!("k={k}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            format!("E4 — {figure}: intermediate queries vs k"),
            &header_refs,
        );
        for (knd, cells) in &rows {
            if *knd == kind {
                t.row(cells.clone());
            }
        }
        println!("{}", t.to_markdown());
    }
    println!(
        "Paper shape to check: moderate growth with k (flatter than the growth with explanations)."
    );
}
