//! **A4** — optimality gap of the greedy heuristic (Algorithm 1) against
//! the exhaustive minimum-variable merge, over sampled explanation
//! pairs from the benchmark workloads.
//!
//! The paper leaves "a theoretical analysis of the quality of our
//! heuristic algorithms" to future work; this experiment measures it
//! empirically: for each workload query, sample explanation pairs from
//! its provenance and compare the variable counts of the greedy and the
//! exact merges (the exact search is skipped when its space exceeds the
//! budget — reported as `skipped`).
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_optimality_gap`

use questpro_bench::{automatic_workload, parallel_map, Table, Worlds};
use questpro_core::{exact_merge_pair, merge_pair, GreedyConfig, PatternGraph};
use questpro_engine::sample_example_set;
use questpro_graph::rng::StdRng;

const PAIRS_PER_QUERY: usize = 10;
const EXACT_BUDGET: u64 = 1 << 22;

fn main() {
    let worlds = Worlds::generate();
    let cfg = GreedyConfig::default();

    let rows = parallel_map(automatic_workload(), |w| {
        let ont = worlds.for_kind(w.kind);
        let mut rng = StdRng::seed_from_u64(0xa4);
        let mut optimal = 0usize;
        let mut suboptimal = 0usize;
        let mut skipped = 0usize;
        let mut total_gap = 0usize;
        for _ in 0..PAIRS_PER_QUERY {
            let ex = sample_example_set(ont, &w.query, 2, &mut rng, 6);
            if ex.len() < 2 {
                skipped += 1;
                continue;
            }
            let g1 = PatternGraph::from_explanation(ont, &ex.explanations()[0]);
            let g2 = PatternGraph::from_explanation(ont, &ex.explanations()[1]);
            match (
                merge_pair(&g1, &g2, &cfg),
                exact_merge_pair(&g1, &g2, EXACT_BUDGET),
            ) {
                (Some(g), Some(x)) => {
                    let gv = g.query.generalization_vars();
                    let xv = x.query.generalization_vars();
                    if gv == xv {
                        optimal += 1;
                    } else {
                        suboptimal += 1;
                        total_gap += gv - xv;
                    }
                }
                _ => skipped += 1,
            }
        }
        vec![
            w.id.to_string(),
            optimal.to_string(),
            suboptimal.to_string(),
            skipped.to_string(),
            if suboptimal > 0 {
                format!("{:.1}", total_gap as f64 / suboptimal as f64)
            } else {
                "—".to_string()
            },
        ]
    });

    let mut t = Table::new(
        format!(
            "A4 — greedy vs exact merge over {PAIRS_PER_QUERY} sampled explanation pairs per query"
        ),
        &[
            "query",
            "optimal",
            "suboptimal",
            "skipped",
            "avg gap (vars)",
        ],
    );
    let total_opt: usize = rows
        .iter()
        .map(|r| r[1].parse::<usize>().unwrap_or(0))
        .sum();
    let total_sub: usize = rows
        .iter()
        .map(|r| r[2].parse::<usize>().unwrap_or(0))
        .sum();
    for r in rows {
        t.row(r);
    }
    println!("{}", t.to_markdown());
    println!(
        "Greedy hit the exhaustive minimum in {total_opt} of {} decided merges.",
        total_opt + total_sub
    );
}
