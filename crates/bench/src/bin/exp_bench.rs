//! **B1** — hot-path benchmark for the parallel, cache-aware inference
//! pipeline: runs top-k inference (k = 3, 7 explanations) on the
//! heaviest workload queries at several thread counts, checks that
//! every parallel run reproduces the sequential output byte-for-byte,
//! and reports per-stage timings plus the consistency-cache hit rate.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_bench`
//!
//! Flags:
//!
//! * `--threads N` — largest thread count to sweep to (default 8; the
//!   sweep is {1, 2, 4, …, N}).
//! * `--json PATH` — also write the results as a JSON document (this is
//!   what `scripts/bench.sh` uses to produce `BENCH_1.json`).
//! * `--tiny` — 1 trial and only the single heaviest query (CI smoke).

use std::fmt::Write as _;
use std::time::Instant;

use questpro_bench::{cli_switch, cli_threads, cli_value, full_workload, median, Table};
use questpro_core::{infer_top_k, InferenceStats, TopKConfig};
use questpro_data::WorkloadQuery;
use questpro_engine::sample_example_set;
use questpro_graph::rng::StdRng;
use questpro_graph::Ontology;

const EXPLANATIONS: usize = 7;

/// One (query, threads) measurement cell.
struct Cell {
    query: String,
    threads: usize,
    wall_ms: f64,
    stats: InferenceStats,
    /// Canonical SPARQL of every returned candidate, in rank order.
    output: Vec<String>,
}

fn run_one(ont: &Ontology, w: &WorkloadQuery, threads: usize, trials: u64) -> Option<Cell> {
    let cfg = TopKConfig {
        k: 3,
        threads,
        ..Default::default()
    };
    let mut walls = Vec::new();
    let mut last = None;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(0xb1 + t);
        let examples = sample_example_set(ont, &w.query, EXPLANATIONS, &mut rng, 6);
        if examples.len() < 2 {
            return None;
        }
        let start = Instant::now();
        let (candidates, stats) = infer_top_k(ont, &examples, &cfg);
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        last = Some((candidates, stats));
    }
    let (candidates, stats) = last?;
    Some(Cell {
        query: w.id.to_string(),
        threads,
        wall_ms: median(walls),
        stats,
        output: candidates.iter().map(|c| c.to_string()).collect(),
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn main() {
    let tiny = cli_switch("--tiny");
    let max_threads = if cli_value("--threads").is_some() {
        cli_threads()
    } else {
        8
    };
    let trials = if tiny { 1 } else { 3 };

    // The heaviest patterns of the workload: BSBM q2v0 (11 edges, the
    // paper's 5.8 s outlier), SP2B q12a and q2.
    let heavy_ids: &[&str] = if tiny {
        &["q2v0"]
    } else {
        &["q2v0", "q12a", "q2"]
    };
    let workload = full_workload();
    let picked: Vec<&WorkloadQuery> = heavy_ids
        .iter()
        .map(|id| {
            workload
                .iter()
                .find(|w| w.id == *id)
                .expect("heavy query in catalog")
        })
        .collect();
    let worlds = questpro_bench::Worlds::generate();

    let mut sweep = vec![1usize];
    while *sweep.last().expect("non-empty") * 2 <= max_threads {
        sweep.push(sweep.last().expect("non-empty") * 2);
    }

    let mut cells: Vec<Cell> = Vec::new();
    for w in &picked {
        let ont = worlds.for_kind(w.kind);
        let mut base: Option<(Vec<String>, InferenceStats)> = None;
        for &t in &sweep {
            let Some(cell) = run_one(ont, w, t, trials) else {
                eprintln!("skipping {}: too few explanations sampled", w.id);
                break;
            };
            match &base {
                None => base = Some((cell.output.clone(), cell.stats)),
                Some((bout, bstats)) => {
                    assert_eq!(
                        bout, &cell.output,
                        "{} at {t} threads diverged from the sequential output",
                        w.id
                    );
                    assert_eq!(
                        *bstats, cell.stats,
                        "{} at {t} threads diverged on deterministic counters",
                        w.id
                    );
                }
            }
            cells.push(cell);
        }
    }

    let mut t = Table::new(
        format!("B1 — parallel top-k hot path (k=3, {EXPLANATIONS} explanations, median of {trials} trial(s))"),
        &[
            "query",
            "threads",
            "wall ms",
            "merge ms",
            "consistency ms",
            "cache hit rate",
            "nodes expanded",
            "speedup vs 1T",
        ],
    );
    for c in &cells {
        let base = cells
            .iter()
            .find(|b| b.query == c.query && b.threads == 1)
            .expect("1-thread baseline present");
        t.row(vec![
            c.query.clone(),
            c.threads.to_string(),
            format!("{:.2}", c.wall_ms),
            format!("{:.2}", c.stats.merge_nanos as f64 / 1e6),
            format!("{:.2}", c.stats.consistency_nanos as f64 / 1e6),
            format!("{:.3}", c.stats.consistency_hit_rate()),
            c.stats.matcher_nodes_expanded.to_string(),
            format!("{:.2}x", base.wall_ms / c.wall_ms),
        ]);
    }
    println!("{}", t.to_markdown());
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "All parallel runs asserted byte-identical to the 1-thread outputs \
         (candidate SPARQL text and deterministic counters)."
    );
    if host_cpus < 2 {
        println!(
            "NOTE: this host exposes {host_cpus} CPU(s); wall-clock speedup from \
             threading requires a multi-core host (workers are clamped to the \
             available parallelism, outputs are identical either way)."
        );
    }

    if let Some(path) = cli_value("--json") {
        let mut out = String::from("{\n  \"bench\": \"B1 parallel top-k hot path\",\n");
        let _ = writeln!(
            out,
            "  \"config\": {{\"k\": 3, \"explanations\": {EXPLANATIONS}, \"trials\": {trials}, \"thread_sweep\": [{}], \"host_cpus\": {host_cpus}}},",
            sweep
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str("  \"runs\": [\n");
        for (i, c) in cells.iter().enumerate() {
            let base = cells
                .iter()
                .find(|b| b.query == c.query && b.threads == 1)
                .expect("1-thread baseline present");
            let _ = write!(
                out,
                "    {{\"query\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \
                 \"merge_ms\": {:.3}, \"consistency_ms\": {:.3}, \"total_ms\": {:.3}, \
                 \"consistency_checks\": {}, \"consistency_cache_hits\": {}, \
                 \"consistency_cache_hit_rate\": {:.4}, \"merge_cache_hit_rate\": {:.4}, \
                 \"matcher_nodes_expanded\": {}, \"speedup_vs_1_thread\": {:.3}, \
                 \"output_identical_to_sequential\": true}}",
                json_escape(&c.query),
                c.threads,
                c.wall_ms,
                c.stats.merge_nanos as f64 / 1e6,
                c.stats.consistency_nanos as f64 / 1e6,
                c.stats.total_nanos as f64 / 1e6,
                c.stats.consistency_checks,
                c.stats.consistency_cache_hits,
                c.stats.consistency_hit_rate(),
                c.stats.merge_hit_rate(),
                c.stats.matcher_nodes_expanded,
                base.wall_ms / c.wall_ms,
            );
            out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json report");
        eprintln!("wrote {path}");
    }
}
