//! **B1** — hot-path benchmark for the parallel, cache-aware inference
//! pipeline: runs top-k inference (k = 3, 7 explanations) on the
//! heaviest workload queries at several thread counts, checks that
//! every parallel run reproduces the sequential output byte-for-byte,
//! and reports per-stage timings plus the consistency-cache hit rate.
//!
//! Run with: `cargo run --release -p questpro-bench --bin exp_bench`
//!
//! Flags:
//!
//! * `--threads N` — largest thread count to sweep to (default 8; the
//!   sweep is {1, 2, 4, …, N}).
//! * `--json PATH` — also write the results as a JSON document (this is
//!   what `scripts/bench.sh` uses to produce `BENCH_1.json`).
//! * `--tiny` — 1 trial and only the single heaviest query (CI smoke).
//! * `--trace-json PATH` — also run each query once under an enabled
//!   `questpro-trace` trace and write the per-stage self-time breakdown
//!   (this is what `scripts/bench.sh` uses to produce `BENCH_3.json`).
//! * `--trace-overhead` — measure the cost of a *disabled* span and
//!   assert the instrumentation adds < 5% to the 1-thread wall time
//!   (the CI `trace-overhead` smoke gate).
//! * `--log-overhead` — measure the cost of a *disabled* structured-log
//!   `emit` and assert the event instrumentation adds < 1% to the
//!   1-thread wall time (the CI `log-overhead` smoke gate).
//! * `--bench6 PATH` — write the B6 report: per-query wall times with
//!   validity-annotated parallelism, cold/warm columnar index-build
//!   times per world, and (with `--baseline BENCH_1.json`) the
//!   improvement factor over the committed pre-optimization walls (this
//!   is what `scripts/bench.sh` uses to produce `BENCH_6.json`).
//! * `--baseline PATH` — committed `BENCH_1.json` to diff `--bench6`
//!   runs against.
//! * `--bench7 PATH` — write the B7 report and exit: snapshot cold-start
//!   of a million-triple scale world (store build, encode, decode,
//!   ontology assembly) against the text re-parse path, with the ≥ 50x
//!   decode-vs-parse gate asserted, matcher throughput on the world's
//!   anchor query, and a corruption sweep proving the loader never
//!   panics (this is what `scripts/bench.sh` uses to produce
//!   `BENCH_7.json`; `--tiny` drops the scale to 10⁵ triples and the
//!   gate to a sanity threshold, since fixed per-process costs dominate
//!   a millisecond decode).
//! * `--bench7-decode-child FILE` / `--bench7-parse-child FILE` —
//!   internal timing children for `--bench7`: decode a snapshot file /
//!   run the full text-to-store path, printing
//!   `"<milliseconds> <rows>"`. Each B7 measurement re-execs this
//!   binary in one of these modes so it pays true cold-start costs.
//! * `--bench9 PATH` — write the B9 report and exit: the
//!   `serve --store` cold-start *assembly* step before/after the
//!   sorted-arena interner handover. "Before" replicates the legacy
//!   materialization in this binary (re-hashing every dictionary label
//!   through `Interner::from_unique_labels`); "after" is the shipping
//!   `TripleStore::to_ontology`. The report gates on the arena handover
//!   beating the legacy re-hash (this is what `scripts/bench.sh` uses
//!   to produce `BENCH_9.json`; `--tiny` drops the scale to 10⁵
//!   triples and relaxes the factor).
//! * `--telemetry-overhead` — drive one real interactive session per
//!   heavy query with telemetry disabled, measure the cost of building
//!   and offering its `SessionRecord` on the disabled path, and assert
//!   the one record a session lifecycle pays adds < 1% to the 1-thread
//!   inference wall (the CI `telemetry-overhead` smoke gate).
//! * `--bench10 PATH` — write the B10 report and exit: interactive
//!   sessions driven to convergence on three seeded worlds twice with
//!   identical seeds — telemetry disabled, then enabled — with median
//!   session walls per mode, the per-world convergence-round
//!   distribution plus the aggregator's marginal histogram, and the
//!   disabled-path record cost gated < 1% of the median session wall
//!   (this is what `scripts/bench.sh` uses to produce `BENCH_10.json`;
//!   `--tiny` drops to 2 sessions per world).

use std::fmt::Write as _;
use std::time::Instant;

use questpro_bench::{cli_switch, cli_threads, cli_value, full_workload, median, Table};
use questpro_core::{infer_top_k, InferenceStats, TopKConfig};
use questpro_data::WorkloadQuery;
use questpro_engine::sample_example_set;
use questpro_graph::rng::StdRng;
use questpro_graph::Ontology;

const EXPLANATIONS: usize = 7;

/// One (query, threads) measurement cell.
struct Cell {
    query: String,
    threads: usize,
    wall_ms: f64,
    stats: InferenceStats,
    /// Canonical SPARQL of every returned candidate, in rank order.
    output: Vec<String>,
}

fn run_one(ont: &Ontology, w: &WorkloadQuery, threads: usize, trials: u64) -> Option<Cell> {
    let cfg = TopKConfig {
        k: 3,
        threads,
        ..Default::default()
    };
    let mut walls = Vec::new();
    let mut last = None;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(0xb1 + t);
        let examples = sample_example_set(ont, &w.query, EXPLANATIONS, &mut rng, 6);
        if examples.len() < 2 {
            return None;
        }
        let start = Instant::now();
        let (candidates, stats) = infer_top_k(ont, &examples, &cfg);
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        last = Some((candidates, stats));
    }
    let (candidates, stats) = last?;
    Some(Cell {
        query: w.id.to_string(),
        threads,
        wall_ms: median(walls),
        stats,
        output: candidates.iter().map(|c| c.to_string()).collect(),
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn main() {
    let tiny = cli_switch("--tiny");
    // Timing children for the B7 cold-start gate: each measurement runs
    // in a fresh process, so it pays true cold-start costs (first-touch
    // page faults, allocator growth) and allocator state from earlier
    // phases cannot skew it. Each prints "<milliseconds> <row count>"
    // on stdout.
    if let Some(path) = cli_value("--bench7-decode-child") {
        let bytes = std::fs::read(&path).expect("read snapshot file");
        let t0 = Instant::now();
        let store = questpro_store::decode(&bytes).expect("snapshot decodes");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{ms} {}", std::hint::black_box(store).triple_count());
        return;
    }
    if let Some(path) = cli_value("--bench7-parse-child") {
        // The full text-to-store path (`questpro store build --ontology`):
        // parse, then dictionary + index construction — the per-load
        // work a snapshot persists.
        let text = std::fs::read_to_string(&path).expect("read triples file");
        let t0 = Instant::now();
        let ont = questpro_graph::triples::parse(&text).expect("triples parse");
        let store = questpro_store::TripleStore::from_ontology(&ont).expect("store builds");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{ms} {}", std::hint::black_box(store).triple_count());
        return;
    }
    if let Some(path) = cli_value("--bench7") {
        bench7_section(&path, tiny);
        return;
    }
    if let Some(path) = cli_value("--bench9") {
        bench9_section(&path, tiny);
        return;
    }
    if let Some(path) = cli_value("--bench10") {
        bench10_section(&path, tiny);
        return;
    }
    let max_threads = if cli_value("--threads").is_some() {
        cli_threads()
    } else {
        8
    };
    let trials = if tiny { 1 } else { 3 };

    // The heaviest patterns of the workload: BSBM q2v0 (11 edges, the
    // paper's 5.8 s outlier), SP2B q12a and q2.
    let heavy_ids: &[&str] = if tiny {
        &["q2v0"]
    } else {
        &["q2v0", "q12a", "q2"]
    };
    let workload = full_workload();
    let picked: Vec<&WorkloadQuery> = heavy_ids
        .iter()
        .map(|id| {
            workload
                .iter()
                .find(|w| w.id == *id)
                .expect("heavy query in catalog")
        })
        .collect();
    let worlds = questpro_bench::Worlds::generate();

    let mut sweep = vec![1usize];
    while *sweep.last().expect("non-empty") * 2 <= max_threads {
        sweep.push(sweep.last().expect("non-empty") * 2);
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep_max = *sweep.last().expect("non-empty");
    // A thread-sweep row only measures real parallelism when the host
    // can actually run that many workers at once. On a smaller host the
    // row still checks output identity, but its wall time is a
    // scheduling artifact, not a speedup — mark it invalid.
    let valid_parallel = |t: usize| t <= host_cpus;
    if host_cpus < sweep_max {
        eprintln!(
            "WARNING: thread sweep reaches {sweep_max} but this host exposes only \
             {host_cpus} CPU(s); rows above {host_cpus} thread(s) are marked \
             \"valid_parallel\": false and must not be read as speedup data."
        );
    }

    let mut cells: Vec<Cell> = Vec::new();
    for w in &picked {
        let ont = worlds.for_kind(w.kind);
        let mut base: Option<(Vec<String>, InferenceStats)> = None;
        for &t in &sweep {
            let Some(cell) = run_one(ont, w, t, trials) else {
                eprintln!("skipping {}: too few explanations sampled", w.id);
                break;
            };
            match &base {
                None => base = Some((cell.output.clone(), cell.stats)),
                Some((bout, bstats)) => {
                    assert_eq!(
                        bout, &cell.output,
                        "{} at {t} threads diverged from the sequential output",
                        w.id
                    );
                    assert_eq!(
                        *bstats, cell.stats,
                        "{} at {t} threads diverged on deterministic counters",
                        w.id
                    );
                }
            }
            cells.push(cell);
        }
    }

    let mut t = Table::new(
        format!("B1 — parallel top-k hot path (k=3, {EXPLANATIONS} explanations, median of {trials} trial(s))"),
        &[
            "query",
            "threads",
            "wall ms",
            "merge ms",
            "consistency ms",
            "cache hit rate",
            "nodes expanded",
            "speedup vs 1T",
        ],
    );
    for c in &cells {
        let base = cells
            .iter()
            .find(|b| b.query == c.query && b.threads == 1)
            .expect("1-thread baseline present");
        t.row(vec![
            c.query.clone(),
            c.threads.to_string(),
            format!("{:.2}", c.wall_ms),
            format!("{:.2}", c.stats.merge_nanos as f64 / 1e6),
            format!("{:.2}", c.stats.consistency_nanos as f64 / 1e6),
            format!("{:.3}", c.stats.consistency_hit_rate()),
            c.stats.matcher_nodes_expanded.to_string(),
            format!("{:.2}x", base.wall_ms / c.wall_ms),
        ]);
    }
    println!("{}", t.to_markdown());
    println!(
        "All parallel runs asserted byte-identical to the 1-thread outputs \
         (candidate SPARQL text and deterministic counters)."
    );
    if host_cpus < 2 {
        println!(
            "NOTE: this host exposes {host_cpus} CPU(s); wall-clock speedup from \
             threading requires a multi-core host (workers are clamped to the \
             available parallelism, outputs are identical either way)."
        );
    }

    if let Some(path) = cli_value("--json") {
        let mut out = String::from("{\n  \"bench\": \"B1 parallel top-k hot path\",\n");
        let _ = writeln!(
            out,
            "  \"config\": {{\"k\": 3, \"explanations\": {EXPLANATIONS}, \"trials\": {trials}, \"thread_sweep\": [{}], \"host_cpus\": {host_cpus}}},",
            sweep
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str("  \"runs\": [\n");
        for (i, c) in cells.iter().enumerate() {
            let base = cells
                .iter()
                .find(|b| b.query == c.query && b.threads == 1)
                .expect("1-thread baseline present");
            let _ = write!(
                out,
                "    {{\"query\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \
                 \"merge_ms\": {:.3}, \"consistency_ms\": {:.3}, \"total_ms\": {:.3}, \
                 \"consistency_checks\": {}, \"consistency_cache_hits\": {}, \
                 \"consistency_cache_hit_rate\": {:.4}, \"merge_cache_hit_rate\": {:.4}, \
                 \"merge_cache_true_misses\": {}, \"merge_cache_capacity_misses\": {}, \
                 \"matcher_nodes_expanded\": {}, \"speedup_vs_1_thread\": {:.3}, \
                 \"effective_threads\": {}, \"valid_parallel\": {}, \
                 \"output_identical_to_sequential\": true}}",
                json_escape(&c.query),
                c.threads,
                c.wall_ms,
                c.stats.merge_nanos as f64 / 1e6,
                c.stats.consistency_nanos as f64 / 1e6,
                c.stats.total_nanos as f64 / 1e6,
                c.stats.consistency_checks,
                c.stats.consistency_cache_hits,
                c.stats.consistency_hit_rate(),
                c.stats.merge_hit_rate(),
                c.stats.merge_cache_true_misses,
                c.stats.merge_cache_capacity_misses,
                c.stats.matcher_nodes_expanded,
                base.wall_ms / c.wall_ms,
                questpro_engine::par::effective_threads(c.threads),
                valid_parallel(c.threads),
            );
            out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json report");
        eprintln!("wrote {path}");
    }

    if let Some(path) = cli_value("--bench6") {
        bench6_section(
            &worlds,
            &cells,
            trials,
            host_cpus,
            &sweep,
            &path,
            cli_value("--baseline").as_deref(),
        );
    }

    let trace_json = cli_value("--trace-json");
    let trace_overhead = cli_switch("--trace-overhead");
    if trace_json.is_some() || trace_overhead {
        trace_section(&picked, &worlds, &cells, trials, trace_json, trace_overhead);
    }
    if cli_switch("--log-overhead") {
        log_section(&picked, &worlds, &cells, trials);
    }
    if cli_switch("--telemetry-overhead") {
        telemetry_section(&picked, &worlds, &cells);
    }
}

/// Drives one interactive session to `Done` against the target oracle
/// (1 inference thread, refinement on) and returns the finished session
/// with its wall time in milliseconds. `None` when the seed samples too
/// few explanations to start a session.
fn drive_session(
    ont: &Ontology,
    target: &questpro_query::UnionQuery,
    seed: u64,
) -> Option<(questpro_feedback::InteractiveSession, f64)> {
    use questpro_feedback::{InteractiveSession, Oracle, SessionConfig, TargetOracle};

    let mut rng = StdRng::seed_from_u64(seed);
    let examples = sample_example_set(ont, target, 5, &mut rng, 6);
    if examples.len() < 2 {
        return None;
    }
    let cfg = SessionConfig {
        topk: TopKConfig {
            threads: 1,
            ..Default::default()
        },
        refine: true,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut session = InteractiveSession::start(ont, &examples, &cfg, seed).expect("a session");
    let mut oracle = TargetOracle::new(target.clone());
    let mut rounds = 0u32;
    while !session.is_done() {
        let q = session.pending().expect("an undone session has a question");
        let verdict = oracle.accept(ont, q.result(), q.provenance());
        session.answer(ont, verdict).expect("answering");
        rounds += 1;
        assert!(rounds < 500, "a driven session must converge");
    }
    Some((session, t0.elapsed().as_secs_f64() * 1e3))
}

/// Disabled-telemetry overhead gate: a session lifecycle pays exactly
/// one `SessionRecord` build + one `questpro_telemetry::record` offer,
/// and when telemetry is off the offer drops the record after one
/// relaxed atomic load. Measure that whole disabled path on a *real*
/// finished session (so the record carries representative pool-size and
/// round-wall vectors) and assert it stays under 1% of the 1-thread
/// inference wall — tighter than the log budget's per-site math because
/// the site count here is one.
fn telemetry_section(picked: &[&WorkloadQuery], worlds: &questpro_bench::Worlds, cells: &[Cell]) {
    use questpro_telemetry::Outcome;

    questpro_telemetry::set_enabled(false);
    const ITERS: u32 = 100_000;
    let mut worst_pct = 0.0f64;
    let mut worst_ns = 0.0f64;
    let mut measured = 0u32;
    for w in picked {
        let ont = worlds.for_kind(w.kind);
        let Some((session, _)) = drive_session(ont, &w.query, 0xd15) else {
            eprintln!("skipping {}: too few explanations sampled", w.id);
            continue;
        };
        let t0 = Instant::now();
        for _ in 0..ITERS {
            questpro_telemetry::record(std::hint::black_box(&session).telemetry_record(
                w.id,
                1,
                Outcome::Converged,
                0,
            ));
        }
        let ns_per_record = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);
        let Some(wall_ms) = cells
            .iter()
            .find(|c| c.query == w.id && c.threads == 1)
            .map(|c| c.wall_ms)
        else {
            continue;
        };
        measured += 1;
        let pct = 100.0 * (ns_per_record / 1e6) / wall_ms.max(0.001);
        if pct > worst_pct {
            worst_pct = pct;
            worst_ns = ns_per_record;
        }
    }
    assert!(measured > 0, "at least one query must yield a session");
    println!(
        "Disabled-telemetry overhead: worst {worst_ns:.0} ns per session record \
         (build + dropped offer) = {worst_pct:.4}% of the 1-thread wall."
    );
    assert!(
        worst_pct < 1.0,
        "disabled-telemetry overhead {worst_pct:.4}% breaches the 1% budget \
         ({worst_ns:.0} ns per record)"
    );
    println!("Telemetry-overhead gate passed (< 1%).");
}

/// The B10 report: session telemetry overhead and convergence analytics.
///
/// Drives interactive sessions to convergence on three seeded worlds
/// twice with identical seeds — first with telemetry disabled, then
/// enabled with every finished session offered to the global aggregator.
/// The enabled pass must converge in exactly the same number of rounds
/// per seed (telemetry must not perturb inference), and the report
/// records median walls for both modes side by side. The asserted gate
/// is the *disabled* path (the default-on server pays the enabled path
/// by choice; the contract is that opting out is free): one
/// record-build + dropped offer per session, < 1% of the median session
/// wall. The enabled-vs-disabled wall delta is reported but not gated —
/// at millisecond session walls it is scheduler noise, not signal.
fn bench10_section(path: &str, tiny: bool) {
    use questpro_data::{
        bsbm_workload, generate_bsbm, generate_movies, generate_sp2b, movie_workload,
        sp2b_workload, BsbmConfig, MoviesConfig, Sp2bConfig,
    };
    use questpro_telemetry::Outcome;

    let sessions_per_world: u64 = if tiny { 2 } else { 8 };
    let seed = 0xd15u64;

    let sp2b = generate_sp2b(&Sp2bConfig {
        authors: 80,
        articles: 120,
        inproceedings: 60,
        ..Default::default()
    });
    let bsbm = generate_bsbm(&BsbmConfig::default());
    let movies = generate_movies(&MoviesConfig::default());
    let pick = |mut ws: Vec<WorkloadQuery>, id: &str| {
        ws.iter()
            .position(|w| w.id == id)
            .map(|i| ws.swap_remove(i).query)
            .expect("workload query in catalog")
    };
    let worlds = vec![
        ("sp2b", "q8a", sp2b, pick(sp2b_workload(), "q8a")),
        ("bsbm", "q2v0", bsbm, pick(bsbm_workload(), "q2v0")),
        ("movies", "m1", movies, pick(movie_workload(), "m1")),
    ];

    struct WorldRow {
        world: &'static str,
        query: &'static str,
        sessions: u64,
        rounds: Vec<u64>,
        disabled_median_ms: f64,
        enabled_median_ms: f64,
    }

    questpro_telemetry::set_enabled(false);
    let mut rows = Vec::new();
    for (world, query_id, ont, target) in &worlds {
        // Pass 1: telemetry disabled. Skipped seeds (too few sampled
        // explanations) are skipped identically in pass 2, so the
        // walls compare session-for-session.
        let mut disabled_walls = Vec::new();
        let mut rounds = Vec::new();
        for i in 0..sessions_per_world {
            let Some((session, wall_ms)) = drive_session(ont, target, seed + i) else {
                continue;
            };
            let rec = session.telemetry_record(world, 1, Outcome::Converged, 0);
            rounds.push(rec.rounds);
            disabled_walls.push(wall_ms);
        }
        // Pass 2: telemetry enabled, same seeds, records offered to the
        // global aggregator — the exact server lifecycle path.
        questpro_telemetry::set_enabled(true);
        let mut enabled_walls = Vec::new();
        let mut enabled_rounds = Vec::new();
        for i in 0..sessions_per_world {
            let Some((session, wall_ms)) = drive_session(ont, target, seed + i) else {
                continue;
            };
            let rec = session.telemetry_record(world, 1, Outcome::Converged, 0);
            enabled_rounds.push(rec.rounds);
            questpro_telemetry::record(rec);
            enabled_walls.push(wall_ms);
        }
        questpro_telemetry::set_enabled(false);
        assert_eq!(
            rounds, enabled_rounds,
            "{world}: enabling telemetry changed convergence rounds"
        );
        if disabled_walls.is_empty() {
            eprintln!("skipping {world}: too few explanations sampled");
            continue;
        }
        rows.push(WorldRow {
            world,
            query: query_id,
            sessions: disabled_walls.len() as u64,
            rounds,
            disabled_median_ms: median(disabled_walls),
            enabled_median_ms: median(enabled_walls),
        });
    }
    assert!(!rows.is_empty(), "at least one world must drive sessions");

    // The disabled path, measured on a real finished session from the
    // first world: record build + dropped offer.
    let (world, _, ont, target) = &worlds[0];
    let (session, _) = drive_session(ont, target, seed).expect("the first world drives");
    const ITERS: u32 = 100_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        questpro_telemetry::record(std::hint::black_box(&session).telemetry_record(
            world,
            1,
            Outcome::Converged,
            0,
        ));
    }
    let ns_per_record = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);
    let worst_pct = rows
        .iter()
        .map(|r| 100.0 * (ns_per_record / 1e6) / r.disabled_median_ms.max(0.001))
        .fold(0.0f64, f64::max);
    println!(
        "B10 disabled-telemetry cost: {ns_per_record:.0} ns per session record = \
         {worst_pct:.4}% of the smallest median session wall."
    );
    assert!(
        worst_pct < 1.0,
        "disabled-telemetry overhead {worst_pct:.4}% breaches the 1% budget \
         ({ns_per_record:.0} ns per record)"
    );

    // Aggregator accounting over the enabled pass: every offered record
    // is either bucketed or counted dropped.
    let (recorded, dropped, keys) = questpro_telemetry::counters();
    let offered: u64 = rows.iter().map(|r| r.sessions).sum();
    assert_eq!(recorded, offered, "every enabled session was offered");
    assert_eq!(dropped, 0, "three worlds fit the key budget");
    let marginals = questpro_telemetry::marginals();
    let converged = marginals
        .iter()
        .find(|m| m.outcome == Outcome::Converged)
        .expect("a converged marginal");
    assert_eq!(converged.rounds.count, offered, "every session bucketed");

    for r in &rows {
        println!(
            "B10 {}/{}: {} session(s), rounds {:?}, median wall disabled \
             {:.2} ms / enabled {:.2} ms",
            r.world, r.query, r.sessions, r.rounds, r.disabled_median_ms, r.enabled_median_ms
        );
    }

    let mut out =
        String::from("{\n  \"bench\": \"B10 session telemetry overhead and convergence\",\n");
    let _ = writeln!(
        out,
        "  \"config\": {{\"sessions_per_world\": {sessions_per_world}, \"seed\": {seed}, \
         \"threads\": 1, \"tiny\": {tiny}}},"
    );
    out.push_str("  \"worlds\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let delta_pct =
            100.0 * (r.enabled_median_ms - r.disabled_median_ms) / r.disabled_median_ms.max(0.001);
        let _ = write!(
            out,
            "    {{\"world\": \"{}\", \"query\": \"{}\", \"sessions\": {}, \
             \"rounds\": [{}], \"median_wall_ms_disabled\": {:.3}, \
             \"median_wall_ms_enabled\": {:.3}, \"enabled_delta_pct_unguarded\": {delta_pct:.2}}}",
            r.world,
            json_escape(r.query),
            r.sessions,
            r.rounds
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            r.disabled_median_ms,
            r.enabled_median_ms,
        );
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"convergence\": {{\"outcome\": \"converged\", \"sessions\": {}, \
         \"questions\": {}, \"yes\": {}, \"no\": {}, \"rounds_hist\": {{\"le\": [{}], \
         \"cumulative\": [{}], \"count\": {}, \"sum\": {}}}, \"keys_live\": {keys}}},",
        converged.sessions,
        converged.questions,
        converged.yes,
        converged.no,
        (0..converged.rounds.buckets.len())
            .map(|i| (1u64 << i).to_string())
            .collect::<Vec<_>>()
            .join(", "),
        converged
            .rounds
            .buckets
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        converged.rounds.count,
        converged.rounds.sum,
    );
    let _ = writeln!(
        out,
        "  \"overhead\": {{\"ns_per_disabled_record\": {ns_per_record:.0}, \
         \"records_per_session\": 1, \"worst_pct_of_session_wall\": {worst_pct:.4}, \
         \"budget_pct\": 1.0, \"within_budget\": {}}}",
        worst_pct < 1.0
    );
    out.push_str("}\n");
    std::fs::write(path, out).expect("write bench10 json report");
    eprintln!("wrote {path}");
}

/// The B7 report: the persistent-store cold-start story at scale.
///
/// Streams a million-triple SP2B-shaped world straight into a
/// `StoreBuilder` (no text form), encodes it to snapshot bytes, then
/// measures the two cold-start paths side by side — strict snapshot
/// `decode` + `to_ontology` assembly versus serializing the triples to
/// text and re-parsing them, the load every pre-store `questpro serve`
/// paid. The headline gate (decode ≥ 50x faster than text re-parse) is
/// asserted, matcher throughput on the world's anchor query is recorded,
/// and a byte-flip + truncation sweep over a small snapshot proves the
/// loader answers every corruption with a named error, never a panic.
/// Runs this binary in a B7 timing-child mode against `path` and
/// returns the `(milliseconds, row count)` pair it printed.
fn child_wall_ms(mode: &str, path: &std::path::Path) -> (f64, u64) {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .arg(mode)
        .arg(path)
        .output()
        .expect("spawn timing child");
    assert!(
        out.status.success(),
        "timing child {mode} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("child prints UTF-8");
    let mut parts = text.split_whitespace();
    let ms = parts
        .next()
        .and_then(|w| w.parse().ok())
        .expect("child prints milliseconds");
    let rows = parts
        .next()
        .and_then(|w| w.parse().ok())
        .expect("child prints row count");
    (ms, rows)
}

fn bench7_section(path: &str, tiny: bool) {
    use questpro_data::scale::{
        anchor_entity, anchor_pred, scale_stream, ScaleConfig, ScaleItem, ScaleWorld,
    };
    use questpro_query::{QueryBuilder, UnionQuery};
    use questpro_store::{decode, encode, StoreBuilder};

    let world = ScaleWorld::Sp2b;
    let scale: u64 = if tiny { 100_000 } else { 1_000_000 };
    let seed = 7u64;
    let cfg = ScaleConfig {
        world,
        triples: scale,
        seed,
    };

    // Store build: stream items straight into the builder — the path
    // `questpro store build --world sp2b --scale N` takes.
    let t0 = Instant::now();
    let mut b = StoreBuilder::new();
    for item in scale_stream(&cfg) {
        match item {
            ScaleItem::Triple { s, p, o } => b.add_triple(&s, &p, &o),
            ScaleItem::Type { node, ty } => {
                b.add_type(&node, &ty)
                    .expect("scale worlds type consistently");
            }
        }
    }
    let store = b.build().expect("scale world fits the u32 id space");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let triples = store.triple_count();

    let t0 = Instant::now();
    let snapshot = encode(&store);
    let encode_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Text cold start comparator: the same items as triple text.
    let mut text = String::new();
    for item in scale_stream(&cfg) {
        match item {
            ScaleItem::Triple { s, p, o } => {
                let _ = writeln!(text, "{s} {p} {o}");
            }
            ScaleItem::Type { node, ty } => {
                let _ = writeln!(text, "@type {node} {ty}");
            }
        }
    }
    let text_bytes = text.len();

    // Snapshot cold start vs text re-parse, both best-of-6. Each
    // measurement runs in a fresh child process (this binary re-exec'd
    // in a timing-child mode): in-process repeats understate a cold
    // start badly — the allocator reuses the previous round's freed
    // blocks and a re-parse comes out twice as fast as a true first
    // parse. The child rounds are interleaved decode/parse so machine
    // drift lands on both sides, and each side takes its fastest round:
    // on a shared box a neighbor burst inflates the short memory-bound
    // decode far more than the long compute-bound parse, so the minimum
    // is the estimator that reflects the machine, not the neighbors.
    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("questpro_bench7_{}.qps", std::process::id()));
    let text_path = dir.join(format!("questpro_bench7_{}.triples", std::process::id()));
    std::fs::write(&snap_path, &snapshot).expect("write snapshot temp file");
    std::fs::write(&text_path, &text).expect("write text temp file");
    let mut decode_walls = Vec::new();
    let mut parse_walls = Vec::new();
    for _ in 0..6 {
        let (ms, rows) = child_wall_ms("--bench7-decode-child", &snap_path);
        assert_eq!(rows, triples as u64, "child decoded the same world");
        decode_walls.push(ms);
        let (ms, rows) = child_wall_ms("--bench7-parse-child", &text_path);
        assert_eq!(rows, triples as u64, "child parsed the same world");
        parse_walls.push(ms);
    }
    let _ = std::fs::remove_file(&snap_path);
    let _ = std::fs::remove_file(&text_path);
    let best = |walls: Vec<f64>| walls.into_iter().fold(f64::INFINITY, f64::min);
    let decode_ms = best(decode_walls);
    let text_parse_ms = best(parse_walls);
    let t0 = Instant::now();
    let ont = store.to_ontology().expect("validated store assembles");
    let assemble_ms = t0.elapsed().as_secs_f64() * 1e3;
    let speedup = text_parse_ms / decode_ms.max(1e-6);
    println!(
        "B7 cold start at {triples} triples: decode {decode_ms:.1} ms + assemble \
         {assemble_ms:.1} ms vs text parse {text_parse_ms:.1} ms ({speedup:.0}x)"
    );
    // The 50x acceptance gate is defined at the full 10^6-triple scale;
    // at the tiny CI scale fixed per-process costs (spawn, first-touch
    // faults) dominate a millisecond decode, so only sanity is asserted.
    let min_speedup = if tiny { 10.0 } else { 50.0 };
    assert!(
        speedup >= min_speedup,
        "snapshot decode ({decode_ms:.1} ms) must be >= {min_speedup}x faster than \
         text re-parse ({text_parse_ms:.1} ms), got {speedup:.1}x"
    );

    // Matcher throughput on the anchor query: co-authors of the hub
    // entity, the guaranteed scale-proportional join.
    let query = {
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let p = qb.var("p");
        let a = qb.constant(anchor_entity(world));
        qb.edge(p, anchor_pred(world), x)
            .edge(p, anchor_pred(world), a)
            .project(x);
        UnionQuery::single(qb.build().expect("anchor query is well-formed"))
    };
    let mut eval_walls = Vec::new();
    let mut results = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        results = questpro_engine::evaluate_union_with(&ont, &query, 1).len();
        eval_walls.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let eval_ms = median(eval_walls);
    let triples_per_sec = triples as f64 / (eval_ms / 1e3).max(1e-9);
    println!(
        "B7 matcher: anchor query over {triples} triples -> {results} results in \
         {eval_ms:.1} ms ({:.1}M triples/s)",
        triples_per_sec / 1e6
    );
    assert!(results > 0, "the anchor hub must have co-members");

    // Corruption sweep on a small snapshot: every single-byte flip and
    // every truncation must come back as a named error under
    // catch_unwind — zero panics, zero accepted corruptions.
    let small = {
        let mut b = StoreBuilder::new();
        for item in scale_stream(&ScaleConfig {
            world,
            triples: 1_000,
            seed,
        }) {
            match item {
                ScaleItem::Triple { s, p, o } => b.add_triple(&s, &p, &o),
                ScaleItem::Type { node, ty } => {
                    b.add_type(&node, &ty)
                        .expect("scale worlds type consistently");
                }
            }
        }
        encode(&b.build().expect("small world builds"))
    };
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut named_errors = 0u64;
    let mut panics = 0u64;
    let mut accepted = 0u64;
    for i in 0..small.len() {
        let mut m = small.clone();
        m[i] ^= 0x01;
        match std::panic::catch_unwind(|| decode(&m).map(|_| ())) {
            Ok(Err(e)) => {
                let _ = e.to_string();
                named_errors += 1;
            }
            Ok(Ok(())) => accepted += 1,
            Err(_) => panics += 1,
        }
    }
    let flips = small.len() as u64;
    for cut in 0..small.len() {
        match std::panic::catch_unwind(|| decode(&small[..cut]).map(|_| ())) {
            Ok(Err(e)) => {
                let _ = e.to_string();
                named_errors += 1;
            }
            Ok(Ok(())) => accepted += 1,
            Err(_) => panics += 1,
        }
    }
    std::panic::set_hook(hook);
    let truncations = small.len() as u64;
    println!(
        "B7 corruption sweep: {flips} byte flips + {truncations} truncations -> \
         {named_errors} named errors, {accepted} accepted, {panics} panics"
    );
    assert_eq!(panics, 0, "the snapshot loader must never panic");
    assert_eq!(accepted, 0, "every corruption must be rejected");

    let mut out = String::from(
        "{\n  \"bench\": \"B7 persistent store: snapshot cold start vs text re-parse\",\n",
    );
    let _ = writeln!(
        out,
        "  \"config\": {{\"world\": \"{}\", \"scale\": {scale}, \"seed\": {seed}, \"tiny\": {tiny}}},",
        world.name()
    );
    let _ = writeln!(
        out,
        "  \"store_build\": {{\"triples\": {triples}, \"stream_build_ms\": {build_ms:.3}, \
         \"encode_ms\": {encode_ms:.3}, \"snapshot_bytes\": {}}},",
        snapshot.len()
    );
    let _ = writeln!(
        out,
        "  \"cold_start\": {{\"decode_ms_best_of_6\": {decode_ms:.3}, \
         \"assemble_ms\": {assemble_ms:.3}, \"text_bytes\": {text_bytes}, \
         \"text_parse_ms_best_of_6\": {text_parse_ms:.3}, \
         \"speedup_decode_vs_text_parse\": {speedup:.1}, \"required_min_speedup\": {min_speedup:.1}}},"
    );
    let _ = writeln!(
        out,
        "  \"matcher\": {{\"anchor_entity\": \"{}\", \"anchor_pred\": \"{}\", \
         \"results\": {results}, \"eval_ms_median_of_3\": {eval_ms:.3}, \
         \"triples_per_sec\": {triples_per_sec:.0}}},",
        anchor_entity(world),
        anchor_pred(world)
    );
    let _ = writeln!(
        out,
        "  \"corruption\": {{\"snapshot_bytes\": {}, \"byte_flips\": {flips}, \
         \"truncations\": {truncations}, \"named_errors\": {named_errors}, \
         \"accepted\": {accepted}, \"panics\": {panics}}}",
        small.len()
    );
    out.push_str("}\n");
    std::fs::write(path, out).expect("write bench7 json report");
    eprintln!("wrote {path}");
}

/// The B9 report: snapshot cold-start *assembly* before/after the
/// sorted-arena interner handover.
///
/// `serve --store` pays `decode` (measured by B7) plus
/// `TripleStore::to_ontology`. The legacy assembly re-materialized the
/// interned graph: every node/predicate/type label was re-hashed and
/// re-boxed through `Interner::from_unique_labels`, ~0.3 s at 10⁶
/// triples (ROADMAP item 1). The fix hands the store's already-sorted
/// dictionary arenas to `Interner::from_sorted_labels` in one copy.
/// Both interner paths are measured side by side (best-of-6,
/// interleaved so machine drift lands on both), the full shipping
/// `to_ontology` is timed, and the legacy end-to-end assembly is
/// estimated as `after - arena + legacy` — the edge-table half of the
/// assembly is byte-identical code on both paths, so the interner delta
/// is the whole difference. Correctness rides along: the assembled
/// ontology must answer the world's anchor query with results.
fn bench9_section(path: &str, tiny: bool) {
    use questpro_data::scale::{
        anchor_entity, anchor_pred, scale_stream, ScaleConfig, ScaleItem, ScaleWorld,
    };
    use questpro_graph::Interner;
    use questpro_query::{QueryBuilder, UnionQuery};
    use questpro_store::StoreBuilder;

    let world = ScaleWorld::Sp2b;
    let scale: u64 = if tiny { 100_000 } else { 1_000_000 };
    let seed = 7u64;
    let cfg = ScaleConfig {
        world,
        triples: scale,
        seed,
    };

    let mut b = StoreBuilder::new();
    for item in scale_stream(&cfg) {
        match item {
            ScaleItem::Triple { s, p, o } => b.add_triple(&s, &p, &o),
            ScaleItem::Type { node, ty } => {
                b.add_type(&node, &ty)
                    .expect("scale worlds type consistently");
            }
        }
    }
    let store = b.build().expect("scale world fits the u32 id space");
    let triples = store.triple_count();
    let labels = store.nodes().len() + store.preds().len() + store.types().len();

    // The two interner paths over the same three dictionaries,
    // interleaved best-of-6.
    let mut legacy_walls = Vec::new();
    let mut arena_walls = Vec::new();
    for _ in 0..6 {
        let t0 = Instant::now();
        for dict in [store.nodes(), store.preds(), store.types()] {
            let i = Interner::from_unique_labels(dict.iter().map(Box::from))
                .expect("store dictionaries are unique");
            assert_eq!(std::hint::black_box(i).len(), dict.len());
        }
        legacy_walls.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        for dict in [store.nodes(), store.preds(), store.types()] {
            let i = Interner::from_sorted_labels(dict.iter(), dict.arena_bytes())
                .expect("store dictionaries are sorted");
            assert_eq!(std::hint::black_box(i).len(), dict.len());
        }
        arena_walls.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let best = |walls: &[f64]| walls.iter().copied().fold(f64::INFINITY, f64::min);
    let legacy_ms = best(&legacy_walls);
    let arena_ms = best(&arena_walls);

    // The full shipping assembly, and the legacy end-to-end estimate.
    let mut assemble_walls = Vec::new();
    let mut ont = None;
    for _ in 0..6 {
        let t0 = Instant::now();
        let o = store.to_ontology().expect("validated store assembles");
        assemble_walls.push(t0.elapsed().as_secs_f64() * 1e3);
        ont = Some(o);
    }
    let after_ms = best(&assemble_walls);
    let before_ms = after_ms - arena_ms + legacy_ms;
    let intern_factor = legacy_ms / arena_ms.max(1e-6);
    let assemble_factor = before_ms / after_ms.max(1e-6);
    println!(
        "B9 cold-start assembly at {triples} triples ({labels} labels): \
         legacy re-hash {legacy_ms:.1} ms vs arena handover {arena_ms:.1} ms \
         ({intern_factor:.1}x); to_ontology {after_ms:.1} ms now, \
         ~{before_ms:.1} ms before ({assemble_factor:.1}x)"
    );
    // The factor gate is defined at the full 10^6-triple scale; the tiny
    // CI scale only sanity-checks the direction.
    let min_factor = if tiny { 1.5 } else { 3.0 };
    assert!(
        intern_factor >= min_factor,
        "the arena handover ({arena_ms:.1} ms) must be >= {min_factor}x faster than \
         the legacy label re-hash ({legacy_ms:.1} ms), got {intern_factor:.1}x"
    );

    // Correctness: the assembled world answers its anchor query.
    let ont = ont.expect("at least one assembly round ran");
    let query = {
        let mut qb = QueryBuilder::new();
        let x = qb.var("x");
        let p = qb.var("p");
        let a = qb.constant(anchor_entity(world));
        qb.edge(p, anchor_pred(world), x)
            .edge(p, anchor_pred(world), a)
            .project(x);
        UnionQuery::single(qb.build().expect("anchor query is well-formed"))
    };
    let results = questpro_engine::evaluate_union_with(&ont, &query, 1).len();
    assert!(results > 0, "the anchor hub must have co-members");

    let mut out = String::from(
        "{\n  \"bench\": \"B9 cold-start assembly: legacy label re-hash vs sorted-arena \
         handover\",\n",
    );
    let _ = writeln!(
        out,
        "  \"config\": {{\"world\": \"{}\", \"scale\": {scale}, \"seed\": {seed}, \
         \"tiny\": {tiny}}},",
        world.name()
    );
    let _ = writeln!(
        out,
        "  \"world\": {{\"triples\": {triples}, \"labels\": {labels}}},"
    );
    let _ = writeln!(
        out,
        "  \"interners\": {{\"legacy_rehash_ms_best_of_6\": {legacy_ms:.3}, \
         \"arena_handover_ms_best_of_6\": {arena_ms:.3}, \
         \"factor\": {intern_factor:.1}, \"required_min_factor\": {min_factor:.1}}},"
    );
    let _ = writeln!(
        out,
        "  \"assembly\": {{\"to_ontology_ms_best_of_6\": {after_ms:.3}, \
         \"legacy_estimate_ms\": {before_ms:.3}, \"factor\": {assemble_factor:.1}}},"
    );
    let _ = writeln!(
        out,
        "  \"anchor_query\": {{\"entity\": \"{}\", \"pred\": \"{}\", \"results\": {results}}}",
        anchor_entity(world),
        anchor_pred(world)
    );
    out.push_str("}\n");
    std::fs::write(path, out).expect("write bench9 json report");
    eprintln!("wrote {path}");
}

/// Disabled-logging overhead gate: cost of one level-gated `emit` that
/// loses the threshold check, scaled by how many events a fully enabled
/// `trace`-level run of the same query would emit, against the untraced
/// 1-thread wall from the sweep. The PR contract is < 1% — tighter than
/// the 5% tracing budget because every emit site is a single relaxed
/// atomic load when logging is off.
fn log_section(
    picked: &[&WorkloadQuery],
    worlds: &questpro_bench::Worlds,
    cells: &[Cell],
    trials: u64,
) {
    use questpro_log::Level;

    // How chatty is a fully enabled run? Count real accepted events at
    // the most verbose level, per query.
    questpro_log::set_level(Some(Level::Trace));
    let mut counts: Vec<(String, f64)> = Vec::new();
    for w in picked {
        let ont = worlds.for_kind(w.kind);
        let before = questpro_log::emitted_total();
        let _ = run_one(ont, w, 1, trials);
        questpro_log::flush();
        let events = questpro_log::emitted_total() - before;
        counts.push((w.id.to_string(), events as f64 / trials as f64));
    }
    questpro_log::set_level(None);

    // The inert path: level below threshold, so emit returns after one
    // relaxed load without formatting, allocating, or locking.
    const ITERS: u32 = 1_000_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        questpro_log::emit(
            Level::Trace,
            "bench.overhead",
            std::hint::black_box("inert"),
            Vec::new(),
        );
    }
    let ns_per_emit = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);

    let mut worst_pct = 0.0f64;
    let mut worst_events = 0.0f64;
    for (id, events_per_run) in &counts {
        let Some(wall_ms) = cells
            .iter()
            .find(|c| &c.query == id && c.threads == 1)
            .map(|c| c.wall_ms)
        else {
            continue;
        };
        let pct = 100.0 * (events_per_run * ns_per_emit / 1e6) / wall_ms.max(0.001);
        if pct > worst_pct {
            worst_pct = pct;
            worst_events = *events_per_run;
        }
    }
    println!(
        "Disabled-logging overhead: {ns_per_emit:.2} ns/emit, worst case \
         {worst_events:.0} event site(s) per run = {worst_pct:.4}% of wall."
    );
    assert!(
        worst_pct < 1.0,
        "disabled-logging overhead {worst_pct:.4}% breaches the 1% budget \
         ({ns_per_emit:.2} ns/emit x {worst_events:.0} events)"
    );
    println!("Log-overhead gate passed (< 1%).");
}

/// Pulls the 1-thread wall of every query out of a committed
/// `BENCH_1.json`. The file is machine-written by this binary (one run
/// object per line), so a line scan is exact — no JSON parser needed.
fn baseline_walls(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.contains("\"threads\": 1,") {
            continue;
        }
        let Some(q) = line
            .split("\"query\": \"")
            .nth(1)
            .and_then(|s| s.split('"').next())
        else {
            continue;
        };
        let Some(wall) = line
            .split("\"wall_ms\": ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse::<f64>().ok())
        else {
            continue;
        };
        out.push((q.to_string(), wall));
    }
    out
}

/// Cold and warm columnar index-build times for one world, in ms.
///
/// *Cold* re-inserts every triple into a fresh `OntologyBuilder` and
/// times `build()` alone — interning, row tables, adjacency, and the
/// columnar SPO/POS/OSP block, exactly what a fresh ontology load pays.
/// *Warm* times [`Ontology::rebuild_columnar`] — just the sorted index
/// arrays and per-predicate statistics over already-interned ids.
fn index_build_times(ont: &Ontology) -> (f64, f64) {
    let mut b = Ontology::builder();
    for e in ont.edge_ids() {
        let ed = ont.edge(e);
        b.edge(
            ont.value_str(ed.src),
            ont.pred_str_of(e),
            ont.value_str(ed.dst),
        )
        .expect("round-tripped triples are well-formed");
    }
    let t0 = Instant::now();
    let rebuilt = b.build();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        rebuilt.edge_count(),
        ont.edge_count(),
        "lossless round-trip"
    );

    let mut warm = Vec::new();
    for _ in 0..5 {
        let t0 = Instant::now();
        std::hint::black_box(ont.rebuild_columnar());
        warm.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (cold_ms, median(warm))
}

/// The B6 report: per-query walls with parallel-validity annotations,
/// cold/warm index-build costs, and the improvement factor against the
/// committed pre-optimization baseline.
#[allow(clippy::too_many_arguments)]
fn bench6_section(
    worlds: &questpro_bench::Worlds,
    cells: &[Cell],
    trials: u64,
    host_cpus: usize,
    sweep: &[usize],
    path: &str,
    baseline: Option<&str>,
) {
    let baseline = baseline.map(|p| {
        let text = std::fs::read_to_string(p).expect("read --baseline json");
        baseline_walls(&text)
    });

    let mut out = String::from(
        "{\n  \"bench\": \"B6 cost-based hot path: wall time and columnar index build\",\n",
    );
    let _ = writeln!(
        out,
        "  \"config\": {{\"k\": 3, \"explanations\": {EXPLANATIONS}, \"trials\": {trials}, \
         \"thread_sweep\": [{}], \"host_cpus\": {host_cpus}}},",
        sweep
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    out.push_str("  \"index_build\": [\n");
    let named: &[(&str, &Ontology)] = &[
        ("sp2b", &worlds.sp2b),
        ("bsbm", &worlds.bsbm),
        ("movies", &worlds.movies),
    ];
    for (i, (name, ont)) in named.iter().enumerate() {
        let (cold_ms, warm_ms) = index_build_times(ont);
        let _ = write!(
            out,
            "    {{\"world\": \"{name}\", \"nodes\": {}, \"edges\": {}, \
             \"cold_build_ms\": {cold_ms:.3}, \"warm_columnar_rebuild_ms\": {warm_ms:.3}}}",
            ont.node_count(),
            ont.edge_count(),
        );
        out.push_str(if i + 1 == named.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");

    out.push_str("  \"runs\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let before = baseline
            .as_ref()
            .and_then(|b| b.iter().find(|(q, _)| *q == c.query).map(|&(_, wall)| wall));
        let _ = write!(
            out,
            "    {{\"query\": \"{}\", \"threads\": {}, \"effective_threads\": {}, \
             \"wall_ms\": {:.3}, \"valid_parallel\": {}, \
             \"output_identical_to_sequential\": true",
            json_escape(&c.query),
            c.threads,
            questpro_engine::par::effective_threads(c.threads),
            c.wall_ms,
            c.threads <= host_cpus,
        );
        if let (1, Some(before)) = (c.threads, before) {
            let _ = write!(
                out,
                ", \"baseline_wall_ms\": {before:.3}, \"improvement_vs_baseline\": {:.3}",
                before / c.wall_ms
            );
        }
        out.push('}');
        out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench6 json report");
    eprintln!("wrote {path}");
}

/// One traced run per query (B3): per-stage self-time breakdowns, plus
/// the disabled-instrumentation overhead gate.
///
/// Traced runs use 1 thread — the span *structure* is thread-invariant
/// by design (spans only open on the orchestrating thread; DESIGN.md
/// §6), and single-thread self-times are the cleanest stage breakdown.
fn trace_section(
    picked: &[&WorkloadQuery],
    worlds: &questpro_bench::Worlds,
    cells: &[Cell],
    trials: u64,
    trace_json: Option<String>,
    assert_overhead: bool,
) {
    questpro_trace::set_enabled(true);
    let mut traced: Vec<(String, Cell, questpro_trace::TraceRecord)> = Vec::new();
    for w in picked {
        let ont = worlds.for_kind(w.kind);
        let trace =
            questpro_trace::begin(format!("exp_bench {}", w.id)).expect("no trace is active");
        let cell = run_one(ont, w, 1, trials);
        let rec = trace.finish();
        if let Some(cell) = cell {
            traced.push((w.id.to_string(), cell, rec));
        }
    }
    questpro_trace::set_enabled(false);

    // The overhead of compiled-in-but-disabled instrumentation: cost of
    // one inert span, scaled by how many spans + counters a real run
    // records, against the *untraced* 1-thread wall from the sweep.
    const ITERS: u32 = 1_000_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let guard = std::hint::black_box(questpro_trace::span("request"));
        drop(guard);
    }
    let ns_per_span = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);

    let mut worst_pct = 0.0f64;
    let mut worst_calls = 0u64;
    for (id, traced_cell, rec) in &traced {
        let counter_adds: usize = rec.spans.iter().map(|s| s.counters.len()).sum();
        let calls = (rec.spans.len() + counter_adds) as u64;
        let wall_ms = cells
            .iter()
            .find(|c| &c.query == id && c.threads == 1)
            .map_or(traced_cell.wall_ms, |c| c.wall_ms);
        let pct = 100.0 * (calls as f64 * ns_per_span / 1e6) / wall_ms.max(0.001);
        if pct > worst_pct {
            worst_pct = pct;
            worst_calls = calls;
        }
    }
    println!(
        "Disabled-tracing overhead: {ns_per_span:.1} ns/span, worst case \
         {worst_calls} instrumentation call(s) per run = {worst_pct:.3}% of wall."
    );
    if assert_overhead {
        assert!(
            worst_pct < 5.0,
            "disabled-tracing overhead {worst_pct:.3}% breaches the 5% budget \
             ({ns_per_span:.1} ns/span x {worst_calls} calls)"
        );
        println!("Overhead gate passed (< 5%).");
    }

    let Some(path) = trace_json else { return };
    let mut out = String::from("{\n  \"bench\": \"B3 per-stage trace breakdown\",\n");
    let _ = writeln!(
        out,
        "  \"config\": {{\"k\": 3, \"explanations\": {EXPLANATIONS}, \"threads\": 1, \"host_cpus\": {}}},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    out.push_str("  \"runs\": [\n");
    for (i, (id, _, rec)) in traced.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"query\": \"{}\", \"trace_id\": {}, \"total_ms\": {:.3}, \"spans\": {}, \"stages\": [",
            json_escape(id),
            rec.id,
            rec.total_ns as f64 / 1e6,
            rec.spans.len()
        );
        let totals = rec.stage_totals();
        for (j, (name, calls, self_ns)) in totals.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"stage\": \"{}\", \"calls\": {calls}, \"self_ms\": {:.3}}}",
                json_escape(name),
                *self_ns as f64 / 1e6
            );
            out.push_str(if j + 1 == totals.len() { "\n" } else { ",\n" });
        }
        out.push_str("    ]}");
        out.push_str(if i + 1 == traced.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"overhead\": {{\"disabled_span_ns\": {ns_per_span:.1}, \
         \"worst_case_calls\": {worst_calls}, \"worst_case_pct_of_wall\": {worst_pct:.3}, \
         \"budget_pct\": 5.0, \"within_budget\": {}}}",
        worst_pct < 5.0
    );
    out.push_str("}\n");
    std::fs::write(&path, out).expect("write trace json report");
    eprintln!("wrote {path}");
}
