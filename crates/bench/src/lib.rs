//! Shared infrastructure for the experiment harness.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! the paper's Section VI (see `DESIGN.md` §3 for the experiment index).
//! This library holds what they share: the benchmark worlds, the
//! Section VI-B reconstruction loop, markdown table rendering, and a
//! scoped-thread parallel map for per-query sweeps.

pub mod drive;
pub mod microbench;

use std::fmt::Write as _;

use questpro_graph::rng::StdRng;

use questpro_core::{infer_top_k, with_all_diseqs, InferenceStats, TopKConfig};
use questpro_data::{
    bsbm_workload, generate_bsbm, generate_movies, generate_sp2b, movie_workload, sp2b_workload,
    BsbmConfig, MoviesConfig, OntologyKind, Sp2bConfig, WorkloadQuery,
};
use questpro_engine::{evaluate_union, sample_example_set, union_equivalent};
use questpro_graph::{ExampleSet, Ontology};
use questpro_query::UnionQuery;

/// The three benchmark worlds, generated once at default scale.
pub struct Worlds {
    /// SP2B-like publications ontology.
    pub sp2b: Ontology,
    /// BSBM-like e-commerce ontology.
    pub bsbm: Ontology,
    /// DBpedia-movies-like ontology.
    pub movies: Ontology,
}

impl Worlds {
    /// Generates all three worlds at their default scales.
    pub fn generate() -> Self {
        Self {
            sp2b: generate_sp2b(&Sp2bConfig::default()),
            bsbm: generate_bsbm(&BsbmConfig::default()),
            movies: generate_movies(&MoviesConfig::default()),
        }
    }

    /// The ontology a workload query runs against.
    pub fn for_kind(&self, kind: OntologyKind) -> &Ontology {
        match kind {
            OntologyKind::Sp2b => &self.sp2b,
            OntologyKind::Bsbm => &self.bsbm,
            OntologyKind::Movies => &self.movies,
        }
    }
}

/// The full automatic workload: SP2B + BSBM analogs (15 queries, as in
/// the paper's Section VI-B).
pub fn automatic_workload() -> Vec<WorkloadQuery> {
    sp2b_workload().into_iter().chain(bsbm_workload()).collect()
}

/// Everything, including the Table I movie queries.
pub fn full_workload() -> Vec<WorkloadQuery> {
    automatic_workload()
        .into_iter()
        .chain(movie_workload())
        .collect()
}

/// Whether some candidate (in plain or all-disequalities form) matches
/// the target query's semantics.
pub fn reconstructed(
    ont: &Ontology,
    candidates: &[UnionQuery],
    target: &UnionQuery,
    examples: &ExampleSet,
) -> bool {
    let target_results = evaluate_union(ont, target);
    candidates.iter().any(|c| {
        let c_all = with_all_diseqs(ont, c, examples);
        union_equivalent(c, target)
            || union_equivalent(&c_all, target)
            || evaluate_union(ont, c) == target_results
            || evaluate_union(ont, &c_all) == target_results
    })
}

/// Outcome of one Section VI-B reconstruction run.
#[derive(Debug, Clone, Copy)]
pub struct ReconstructionRun {
    /// Explanations needed, or `None` if the cap was hit.
    pub explanations: Option<usize>,
    /// Inference stats accumulated over all attempts of the run.
    pub stats: InferenceStats,
}

/// The reconstruction loop: sample `n = 2, 3, …, cap` explanations of
/// `target` (fresh each round, as the paper's repeated trials do) until
/// some top-k candidate reproduces its semantics.
pub fn reconstruct(
    ont: &Ontology,
    target: &UnionQuery,
    cfg: &TopKConfig,
    seed: u64,
    cap: usize,
) -> ReconstructionRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = InferenceStats::default();
    for n in 2..=cap {
        let examples = sample_example_set(ont, target, n, &mut rng, 6);
        if examples.len() < 2 {
            break;
        }
        let (candidates, stats) = infer_top_k(ont, &examples, cfg);
        total.absorb(stats);
        if reconstructed(ont, &candidates, target, &examples) {
            return ReconstructionRun {
                explanations: Some(n),
                stats: total,
            };
        }
    }
    ReconstructionRun {
        explanations: None,
        stats: total,
    }
}

/// A printable experiment table (markdown and TSV).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed as a heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Renders the table as TSV (no title).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Maps `f` over `items` on scoped threads (one per item), preserving
/// order.
pub fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(move || f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    })
}

/// Returns the value following `--name` (or embedded as `--name=value`)
/// on the command line, if present.
pub fn cli_value(name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// Whether the bare switch `--name` appears on the command line.
pub fn cli_switch(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// The `--threads N` knob shared by the experiment binaries (default 1,
/// clamped to at least 1).
pub fn cli_threads() -> usize {
    cli_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1usize)
        .max(1)
}

/// Median of a (small) sample; panics on empty input.
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown_and_tsv() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect(), |i| i * 2);
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn median_handles_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn workload_counts_match_the_paper() {
        // 8 SP2B + 7 BSBM = the 15 automatic queries; +10 movie queries.
        assert_eq!(automatic_workload().len(), 15);
        assert_eq!(full_workload().len(), 25);
    }

    #[test]
    fn reconstruction_smoke() {
        let worlds = Worlds::generate();
        let w = &automatic_workload()[4]; // q8a: co-authors of Erdos
        let run = reconstruct(
            worlds.for_kind(w.kind),
            &w.query,
            &TopKConfig::default(),
            1,
            6,
        );
        assert!(run.explanations.is_some());
        assert!(run.stats.algorithm1_calls > 0);
    }
}
