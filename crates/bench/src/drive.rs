//! Nonblocking multi-connection HTTP load driver.
//!
//! `loadgen`'s original closed-loop mode holds one OS thread per
//! client, which tops out around a few hundred connections. This
//! driver multiplexes *thousands* of keep-alive connections on a
//! single thread over [`questpro_server::sys::Poller`] — the same
//! readiness facade the server's event loop runs on — so one loadgen
//! process can hold 10k sockets against a server process on the same
//! host.
//!
//! Two arrival disciplines:
//!
//! * **closed loop** (`rate: None`) — every connection keeps exactly
//!   one request in flight; the next request leaves the moment the
//!   response lands. Throughput is whatever the server sustains.
//! * **open loop** (`rate: Some(rps)`) — requests are *scheduled* on a
//!   fixed global timetable (`i / rate` after start) independent of
//!   how fast the server answers, and each latency is measured from
//!   the request's **scheduled** time, not its send time. A request
//!   whose turn arrives while every connection is busy waits in a
//!   backlog and its queueing delay counts against the server — the
//!   standard guard against coordinated omission.
//!
//! Every response can be checked byte-for-byte against a reference
//! body (`expect_body`), carrying the repo's equivalence discipline
//! (server answers ≡ library one-shot answers) into the load path.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use questpro_server::sys::{Event, Interest, Poller};

/// What to run; see the module docs for the two disciplines.
pub struct DriveConfig {
    /// Server to hammer.
    pub addr: SocketAddr,
    /// Concurrent keep-alive connections to hold open.
    pub connections: usize,
    /// One pre-serialized keep-alive HTTP/1.1 request, reused verbatim
    /// on every send.
    pub request: Vec<u8>,
    /// Total requests across all connections.
    pub total_requests: usize,
    /// Open-loop arrival rate in requests/second; `None` = closed loop.
    pub rate: Option<f64>,
    /// Reference body every `200` response must match byte-for-byte;
    /// `None` skips the check.
    pub expect_body: Option<Vec<u8>>,
    /// Hard wall-clock cap on the whole run; anything unanswered at
    /// the deadline is counted as an error, never waited for.
    pub timeout: Duration,
}

/// What happened; quantiles are the caller's job (`latencies_us` is
/// raw and unsorted).
#[derive(Debug, Default)]
pub struct DriveReport {
    /// Connections that finished the handshake.
    pub connected: usize,
    /// Requests that left the socket (or were scheduled and then
    /// abandoned at the deadline).
    pub sent: usize,
    /// `200` responses.
    pub ok: usize,
    /// Non-200s, dead connections with a request in flight, and
    /// requests still unanswered at the deadline.
    pub errors: usize,
    /// `200` responses whose body differed from `expect_body`.
    pub mismatches: usize,
    /// Per-request latency, µs, measured from the scheduled time
    /// (open loop) or the send time (closed loop).
    pub latencies_us: Vec<u64>,
    /// Total run duration.
    pub wall: Duration,
}

/// One multiplexed connection. At most one request is in flight per
/// connection; `wpos` indexes into the shared request bytes.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Bytes of the shared request already written; `None` when not
    /// currently writing.
    wpos: Option<usize>,
    /// Scheduled-or-send instant of the in-flight request.
    t0: Option<Instant>,
    interest: Interest,
    dead: bool,
}

impl Conn {
    fn in_flight(&self) -> bool {
        self.t0.is_some()
    }
}

/// Runs the configured load and blocks until every scheduled request
/// is resolved (answered, failed, or abandoned at the deadline).
///
/// # Errors
/// Setup failures only — binding the poller or failing to establish
/// *any* connection. Once the run starts, per-connection trouble is
/// reported in the [`DriveReport`], not as an `Err`.
pub fn run(cfg: &DriveConfig) -> io::Result<DriveReport> {
    let mut report = DriveReport::default();
    let mut poller = Poller::new(cfg.connections.max(64))?;

    // Establish every connection up front, blocking: loopback
    // handshakes complete in the kernel's accept backlog long before
    // the server's userspace accept runs, so sequential connects are
    // fast even at 10k. The measured window only starts afterwards.
    let mut conns: Vec<Conn> = Vec::with_capacity(cfg.connections);
    for i in 0..cfg.connections {
        let stream = match TcpStream::connect(cfg.addr) {
            Ok(s) => s,
            Err(e) if conns.is_empty() => return Err(e),
            Err(_) => break, // partial fleet: report what we got
        };
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        poller.add(stream.as_raw_fd(), Interest::NONE, i)?;
        conns.push(Conn {
            stream,
            rbuf: Vec::new(),
            wpos: None,
            t0: None,
            interest: Interest::NONE,
            dead: false,
        });
    }
    report.connected = conns.len();

    let started = Instant::now();
    let deadline = started + cfg.timeout;
    let rate = cfg.rate.filter(|r| *r > 0.0);
    // Open loop: requests whose scheduled instant has passed but for
    // which no connection was idle yet. Closed loop leaves this empty.
    let mut backlog: VecDeque<Instant> = VecDeque::new();
    let mut scheduled = 0usize; // open-loop requests released so far
    let mut dispatched = 0usize; // requests handed to a connection
    let mut resolved = 0usize; // ok + errors + mismatch-200s
    let mut idle: Vec<usize> = (0..conns.len()).rev().collect();
    let mut events: Vec<Event> = Vec::new();

    // Closed loop starts saturated: one request per connection.
    if rate.is_none() {
        while dispatched < cfg.total_requests {
            let Some(i) = idle.pop() else { break };
            start_request(&mut conns[i], i, Instant::now(), &mut poller, cfg);
            dispatched += 1;
        }
    }

    while resolved < cfg.total_requests && Instant::now() < deadline {
        // Release open-loop arrivals that are due, then drain the
        // backlog onto idle connections (oldest scheduled first).
        if let Some(rate) = rate {
            let now = Instant::now();
            while scheduled < cfg.total_requests {
                let due = started + Duration::from_secs_f64(scheduled as f64 / rate);
                if due > now {
                    break;
                }
                backlog.push_back(due);
                scheduled += 1;
            }
            while let Some(&due) = backlog.front() {
                let Some(i) = idle.pop() else { break };
                backlog.pop_front();
                start_request(&mut conns[i], i, due, &mut poller, cfg);
                dispatched += 1;
            }
        }

        // Park until the next arrival is due or a socket turns over.
        let wait_ms = match rate {
            _ if !backlog.is_empty() => 1,
            None => 50,
            Some(rate) => {
                let next = started + Duration::from_secs_f64(scheduled as f64 / rate);
                let ms = next
                    .saturating_duration_since(Instant::now())
                    .as_millis()
                    .min(50) as i32;
                ms.max(if scheduled < cfg.total_requests {
                    1
                } else {
                    50
                })
            }
        };
        events.clear();
        poller.wait(wait_ms, &mut events)?;

        for ev in &events {
            let i = ev.token;
            let Some(conn) = conns.get_mut(i) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            if ev.error {
                kill(conn, i, &mut idle, &mut poller, &mut report, &mut resolved);
                continue;
            }
            if ev.writable && conn.wpos.is_some() {
                flush_write(conn, i, &mut poller, cfg);
            }
            if ev.readable {
                match drain_read(conn) {
                    Ok(eof) => {
                        settle_responses(conn, i, cfg, &mut report, &mut resolved, &mut idle);
                        if eof {
                            kill(conn, i, &mut idle, &mut poller, &mut report, &mut resolved);
                            continue;
                        }
                    }
                    Err(_) => {
                        kill(conn, i, &mut idle, &mut poller, &mut report, &mut resolved);
                        continue;
                    }
                }
            }
            // A freed closed-loop connection immediately takes the
            // next request; open-loop idlers wait for the timetable.
            if rate.is_none() && !conn.dead && !conn.in_flight() && dispatched < cfg.total_requests
            {
                if let Some(pos) = idle.iter().rposition(|&x| x == i) {
                    idle.swap_remove(pos);
                    start_request(&mut conns[i], i, Instant::now(), &mut poller, cfg);
                    dispatched += 1;
                }
            }
        }

        if conns.iter().all(|c| c.dead) {
            break; // nobody left to carry the remaining requests
        }
    }

    // Anything still unresolved — in flight at the deadline, backlog
    // never dispatched, or stranded by dead connections — is an error.
    report.sent = dispatched;
    report.errors += cfg.total_requests - resolved;
    report.wall = started.elapsed();
    Ok(report)
}

/// Arms `conn` with one copy of the shared request; `t0` is the
/// latency clock (scheduled time under open loop).
fn start_request(
    conn: &mut Conn,
    token: usize,
    t0: Instant,
    poller: &mut Poller,
    cfg: &DriveConfig,
) {
    conn.t0 = Some(t0);
    conn.wpos = Some(0);
    flush_write(conn, token, poller, cfg);
}

/// Writes as much of the pending request as the socket takes; arms
/// write interest only when the kernel buffer pushes back.
fn flush_write(conn: &mut Conn, token: usize, poller: &mut Poller, cfg: &DriveConfig) {
    let Some(mut pos) = conn.wpos else { return };
    while pos < cfg.request.len() {
        match conn.stream.write(&cfg.request[pos..]) {
            Ok(0) => break,
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // The read path will surface the failure as EOF/error.
                pos = cfg.request.len();
                break;
            }
        }
    }
    conn.wpos = (pos < cfg.request.len()).then_some(pos);
    let want = Interest {
        read: true,
        write: conn.wpos.is_some(),
    };
    rearm(conn, token, want, poller);
}

/// Reads everything currently available; `Ok(true)` on EOF.
fn drain_read(conn: &mut Conn) -> io::Result<bool> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Ok(true),
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Consumes every complete response in `conn.rbuf`; each one resolves
/// the in-flight request and returns the connection to the idle pool.
fn settle_responses(
    conn: &mut Conn,
    token: usize,
    cfg: &DriveConfig,
    report: &mut DriveReport,
    resolved: &mut usize,
    idle: &mut Vec<usize>,
) {
    while let Some((status, body_start, body_len)) = parse_response(&conn.rbuf) {
        if conn.rbuf.len() < body_start + body_len {
            break; // head complete, body still arriving
        }
        let Some(t0) = conn.t0.take() else {
            conn.rbuf.clear(); // unsolicited bytes: drop and move on
            break;
        };
        report
            .latencies_us
            .push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
        if status == 200 {
            report.ok += 1;
            if let Some(want) = &cfg.expect_body {
                if &conn.rbuf[body_start..body_start + body_len] != want.as_slice() {
                    report.mismatches += 1;
                }
            }
        } else {
            report.errors += 1;
        }
        *resolved += 1;
        conn.rbuf.drain(..body_start + body_len);
        idle.push(token);
    }
}

/// Parses one response head: `(status, body_start, content_length)`;
/// `None` while the head terminator has not arrived.
fn parse_response(buf: &[u8]) -> Option<(u16, usize, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    Some((status, head_end, content_length))
}

fn rearm(conn: &mut Conn, token: usize, want: Interest, poller: &mut Poller) {
    if conn.interest != want && poller.rearm(conn.stream.as_raw_fd(), want, token).is_ok() {
        conn.interest = want;
    }
}

/// Retires a connection: deregisters it, purges it from the idle pool,
/// and charges any in-flight request as an error.
fn kill(
    conn: &mut Conn,
    token: usize,
    idle: &mut Vec<usize>,
    poller: &mut Poller,
    report: &mut DriveReport,
    resolved: &mut usize,
) {
    if conn.dead {
        return;
    }
    conn.dead = true;
    poller.remove(conn.stream.as_raw_fd()).ok();
    // When a response and the peer's FIN arrive in one event batch,
    // settle_responses has already returned this token to the idle
    // pool; left there, a dispatcher would arm a request on the dead
    // socket — a request that can never resolve — and stall the run
    // to its wall-clock deadline.
    if let Some(pos) = idle.iter().position(|&x| x == token) {
        idle.swap_remove(pos);
    }
    if conn.t0.take().is_some() {
        report.errors += 1;
        *resolved += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Serves one stub connection: every request gets `body`, except
    /// the `die_after`-th request, after which the stub hangs up
    /// without answering.
    fn serve_stub_conn(
        stream: TcpStream,
        body: &'static str,
        die_after: Option<usize>,
        counter: &AtomicUsize,
    ) {
        let mut writer = stream.try_clone().expect("cloning the stub socket");
        let mut reader = BufReader::new(stream);
        let mut answered = 0usize;
        loop {
            // Read one request head + declared body.
            let mut line = String::new();
            if reader.read_line(&mut line).map_or(true, |n| n == 0) {
                return;
            }
            let mut content_length = 0usize;
            loop {
                let mut header = String::new();
                if reader.read_line(&mut header).map_or(true, |n| n == 0) {
                    return;
                }
                let header = header.trim_end();
                if header.is_empty() {
                    break;
                }
                if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().unwrap_or(0);
                }
            }
            let mut body_buf = vec![0u8; content_length];
            if reader.read_exact(&mut body_buf).is_err() {
                return;
            }
            if die_after.is_some_and(|n| answered >= n) {
                return; // hang up with the request unanswered
            }
            let resp = format!(
                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            if writer.write_all(resp.as_bytes()).is_err() {
                return;
            }
            answered += 1;
            counter.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// A keep-alive stub server; `die_after` applies per connection.
    fn stub(body: &'static str, die_after: Option<usize>) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binding the stub");
        let addr = listener.local_addr().unwrap();
        let served = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&served);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || serve_stub_conn(stream, body, die_after, &counter));
            }
        });
        (addr, served)
    }

    fn a_request() -> Vec<u8> {
        b"GET /x HTTP/1.1\r\nHost: t\r\n\r\n".to_vec()
    }

    #[test]
    fn closed_loop_answers_everything_byte_identically() {
        let (addr, served) = stub("pong-body", None);
        let report = run(&DriveConfig {
            addr,
            connections: 8,
            request: a_request(),
            total_requests: 48,
            rate: None,
            expect_body: Some(b"pong-body".to_vec()),
            timeout: Duration::from_secs(20),
        })
        .expect("driving the stub");
        assert_eq!(report.connected, 8);
        assert_eq!(report.ok, 48, "errors={}", report.errors);
        assert_eq!(report.errors, 0);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.latencies_us.len(), 48);
        assert_eq!(served.load(Ordering::SeqCst), 48);
    }

    #[test]
    fn body_divergence_is_counted_not_hidden() {
        let (addr, _) = stub("actual", None);
        let report = run(&DriveConfig {
            addr,
            connections: 2,
            request: a_request(),
            total_requests: 6,
            rate: None,
            expect_body: Some(b"expected".to_vec()),
            timeout: Duration::from_secs(20),
        })
        .expect("driving the stub");
        assert_eq!(report.ok, 6, "divergent 200s still count as answered");
        assert_eq!(report.mismatches, 6, "every body diverged");
    }

    #[test]
    fn open_loop_paces_arrivals_and_finishes() {
        let (addr, _) = stub("ok", None);
        let started = Instant::now();
        let report = run(&DriveConfig {
            addr,
            connections: 4,
            request: a_request(),
            total_requests: 100,
            rate: Some(1000.0),
            expect_body: Some(b"ok".to_vec()),
            timeout: Duration::from_secs(20),
        })
        .expect("driving the stub");
        assert_eq!(report.ok, 100, "errors={}", report.errors);
        assert_eq!(report.mismatches, 0);
        // 100 arrivals at 1000/s occupy ≥ ~100ms of timetable: the
        // open loop must actually pace, not blast.
        assert!(
            started.elapsed() >= Duration::from_millis(80),
            "open loop finished implausibly fast: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn open_loop_purges_dead_connections_from_the_idle_pool() {
        // The first accepted connection answers one request and closes
        // immediately, so its response and FIN reach the driver in one
        // event batch: settle_responses returns the token to the idle
        // pool, then the EOF kills the connection. The second
        // connection serves forever. If the kill leaves the stale
        // token in the pool, the next open-loop arrival is armed on
        // the dead socket and can never resolve, and — with a live
        // peer still around — the run rides the full wall-clock
        // deadline instead of finishing in milliseconds.
        let listener = TcpListener::bind("127.0.0.1:0").expect("binding the stub");
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut first = true;
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                if first {
                    first = false;
                    std::thread::spawn(move || {
                        let mut seen = Vec::new();
                        let mut buf = [0u8; 1024];
                        while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                            match stream.read(&mut buf) {
                                Ok(0) | Err(_) => return,
                                Ok(n) => seen.extend_from_slice(&buf[..n]),
                            }
                        }
                        let _ = stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
                        // drop closes: the FIN rides right behind the
                        // response bytes
                    });
                } else {
                    std::thread::spawn(move || {
                        serve_stub_conn(stream, "ok", None, &AtomicUsize::new(0));
                    });
                }
            }
        });
        let started = Instant::now();
        let report = run(&DriveConfig {
            addr,
            connections: 2,
            request: a_request(),
            total_requests: 8,
            rate: Some(100.0),
            expect_body: None,
            timeout: Duration::from_secs(10),
        })
        .expect("driving the stub");
        assert_eq!(
            report.ok + report.errors,
            8,
            "every request must resolve: {report:?}"
        );
        assert!(
            report.ok >= 7,
            "the surviving connection carries the load: {report:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(6),
            "a dead idle-pool entry must not stall the run: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn dead_connections_become_errors_not_hangs() {
        // Every connection answers exactly one request, then hangs up
        // mid-conversation; the driver must charge errors and return
        // well before the safety deadline.
        let (addr, _) = stub("once", Some(1));
        let started = Instant::now();
        let report = run(&DriveConfig {
            addr,
            connections: 3,
            request: a_request(),
            total_requests: 12,
            rate: None,
            expect_body: None,
            timeout: Duration::from_secs(8),
        })
        .expect("driving the stub");
        assert_eq!(report.ok, 3, "one answer per connection");
        assert_eq!(report.errors, 9, "the rest must be charged as errors");
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "dead fleet must short-circuit, not ride the deadline"
        );
    }
}
