//! A minimal, dependency-free microbenchmark harness.
//!
//! The four `benches/*.rs` targets used to run under Criterion; the
//! workspace now builds fully offline, so this module provides the small
//! slice of that API the benches actually need: named groups, per-case
//! timing with automatic iteration calibration, and a median-of-samples
//! report printed as one line per case.
//!
//! Tuning knobs (environment variables):
//!
//! * `QUESTPRO_BENCH_SAMPLES` — samples per case (default 11).
//! * `QUESTPRO_BENCH_MIN_SAMPLE_MS` — target wall time per sample, used
//!   to calibrate the inner iteration count (default 20 ms; set to 1 for
//!   a fast smoke run).

use std::time::Instant;

use crate::median;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Top-level harness: hands out named [`Group`]s and holds the shared
/// sampling configuration.
pub struct Criterion {
    samples: usize,
    min_sample_nanos: u128,
}

impl Criterion {
    /// Builds a harness from the `QUESTPRO_BENCH_*` environment knobs.
    pub fn from_env() -> Self {
        Self {
            samples: env_usize("QUESTPRO_BENCH_SAMPLES", 11),
            min_sample_nanos: env_usize("QUESTPRO_BENCH_MIN_SAMPLE_MS", 20) as u128 * 1_000_000,
        }
    }

    /// Starts a named group of related cases.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmark cases; prints `group/case: …` lines.
pub struct Group<'a> {
    c: &'a Criterion,
    name: String,
}

impl Group<'_> {
    /// Times one case. The closure receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the workload.
    pub fn bench_function(&mut self, case: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.c.samples,
            min_sample_nanos: self.c.min_sample_nanos,
            per_iter_nanos: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, case);
    }

    /// Times one parameterized case (`group/case/param`).
    pub fn bench_with_input<I>(
        &mut self,
        case: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(&case.to_string(), |b| f(b, input));
    }

    /// Ends the group (provided for call-site symmetry; groups need no
    /// teardown).
    pub fn finish(self) {}
}

/// Runs and times the workload closure handed to a benchmark case.
pub struct Bencher {
    samples: usize,
    min_sample_nanos: u128,
    per_iter_nanos: Vec<f64>,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count so one sample lasts at
    /// least the configured minimum, then records per-iteration time for
    /// each sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate: double the batch until it reaches the sample budget.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let spent = t.elapsed().as_nanos();
            if spent >= self.min_sample_nanos || batch >= 1 << 20 {
                break;
            }
            // Aim straight for the budget, with 2x headroom capping.
            batch = match (batch as u128 * self.min_sample_nanos).checked_div(spent) {
                Some(target) => (batch * 2).min(target as u64 + 1),
                None => batch * 8,
            };
        }
        self.per_iter_nanos = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
    }

    fn report(&self, group: &str, case: &str) {
        if self.per_iter_nanos.is_empty() {
            println!("{group}/{case}: no measurement (Bencher::iter never called)");
            return;
        }
        let med = median(self.per_iter_nanos.clone());
        let min = self.per_iter_nanos.iter().cloned().fold(f64::MAX, f64::min);
        let max = self.per_iter_nanos.iter().cloned().fold(0.0, f64::max);
        println!(
            "{group}/{case}: median {} (min {}, max {}, {} samples)",
            fmt_nanos(med),
            fmt_nanos(min),
            fmt_nanos(max),
            self.per_iter_nanos.len(),
        );
    }
}

/// Human-readable duration from fractional nanoseconds.
fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            samples: 3,
            min_sample_nanos: 1_000,
        };
        let mut g = c.benchmark_group("smoke");
        let mut calls = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert!(calls > 0, "workload closure never ran");
    }

    #[test]
    fn fmt_nanos_picks_sane_units() {
        assert_eq!(fmt_nanos(12.0), "12 ns");
        assert_eq!(fmt_nanos(12_500.0), "12.50 µs");
        assert_eq!(fmt_nanos(3_500_000.0), "3.50 ms");
        assert_eq!(fmt_nanos(2_000_000_000.0), "2.00 s");
    }
}
