//! **M3/M4** — microbenches of the inference pipeline: a pairwise merge
//! (Algorithm 1), full union inference (Algorithm 2, sequential and
//! multi-threaded), and top-k over the running example and
//! representative workload queries.

use std::hint::black_box;

use questpro_bench::microbench::Criterion;
use questpro_bench::Worlds;
use questpro_core::{
    find_consistent_union, infer_top_k, merge_pair, GreedyConfig, PatternGraph, TopKConfig,
    UnionConfig,
};
use questpro_data::{erdos_example_set, erdos_ontology, sp2b_workload};
use questpro_engine::sample_example_set;
use questpro_graph::rng::StdRng;

fn bench_inference(c: &mut Criterion) {
    let erdos = erdos_ontology();
    let examples = erdos_example_set(&erdos);
    let g1 = PatternGraph::from_explanation(&erdos, &examples.explanations()[0]);
    let g4 = PatternGraph::from_explanation(&erdos, &examples.explanations()[3]);

    let mut g = c.benchmark_group("inference");
    g.bench_function("merge_pair_chains", |b| {
        b.iter(|| black_box(merge_pair(&g1, &g4, &GreedyConfig::default()).is_some()))
    });
    g.bench_function("algorithm2_erdos", |b| {
        b.iter(|| {
            black_box(find_consistent_union(
                &erdos,
                &examples,
                &UnionConfig::default(),
            ))
        })
    });
    for threads in [2usize, 4] {
        g.bench_with_input(format!("algorithm2_erdos_t{threads}"), &threads, |b, &t| {
            b.iter(|| {
                black_box(find_consistent_union(
                    &erdos,
                    &examples,
                    &UnionConfig {
                        threads: t,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    g.bench_function("top3_erdos", |b| {
        b.iter(|| {
            black_box(infer_top_k(
                &erdos,
                &examples,
                &TopKConfig {
                    k: 3,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();

    // Top-k on a real workload query, varying the number of explanations
    // (the E2/E3 axis, as a microbench).
    let worlds = Worlds::generate();
    let q8a = sp2b_workload()
        .into_iter()
        .find(|w| w.id == "q8a")
        .expect("q8a in catalog")
        .query;
    let mut g = c.benchmark_group("topk_q8a_by_explanations");
    for n in [2usize, 4, 7] {
        let mut rng = StdRng::seed_from_u64(0xbe);
        let ex = sample_example_set(&worlds.sp2b, &q8a, n, &mut rng, 6);
        if ex.len() < 2 {
            continue;
        }
        g.bench_with_input(n, &ex, |b, ex| {
            b.iter(|| {
                black_box(infer_top_k(
                    &worlds.sp2b,
                    ex,
                    &TopKConfig {
                        k: 3,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::from_env();
    bench_inference(&mut c);
}
