//! **A1/A2** — ablation benches for the design choices DESIGN.md calls
//! out:
//!
//! * A1 (`gain_weights`): sensitivity of Algorithm 1 to the gain-weight
//!   triple of Def. 3.11 — the paper fixes (3, 15, 1); we also measure a
//!   flat (1, 1, 1) and a freshness-free (3, 0, 1) variant. The metric
//!   that matters is reported via the merge result's variable count in
//!   the accompanying `ablation_quality` console output.
//! * A2 (`numiter`): cost of the diversification loop of Algorithm 1 as
//!   `numIter` grows.

use std::hint::black_box;

use questpro_bench::microbench::Criterion;
use questpro_core::{merge_pair, GainWeights, GreedyConfig, PatternGraph};
use questpro_data::{erdos_example_set, erdos_ontology};

fn bench_ablation(c: &mut Criterion) {
    let erdos = erdos_ontology();
    let examples = erdos_example_set(&erdos);
    let g1 = PatternGraph::from_explanation(&erdos, &examples.explanations()[0]);
    let g4 = PatternGraph::from_explanation(&erdos, &examples.explanations()[3]);

    // A1: gain-weight variants. Also report the inferred-query quality
    // (variable count) once per variant, outside the timed loop.
    let variants: &[(&str, GainWeights)] = &[
        ("paper_3_15_1", GainWeights::paper()),
        ("flat_1_1_1", GainWeights::new(1.0, 1.0, 1.0)),
        ("no_freshness_3_0_1", GainWeights::new(3.0, 0.0, 1.0)),
        ("no_neighbor_3_15_0", GainWeights::new(3.0, 15.0, 0.0)),
    ];
    let mut g = c.benchmark_group("gain_weights");
    for (name, w) in variants {
        let cfg = GreedyConfig {
            weights: *w,
            ..Default::default()
        };
        let vars = merge_pair(&g1, &g4, &cfg)
            .map(|o| o.query.generalization_vars())
            .map(|v| v.to_string())
            .unwrap_or_else(|| "none".to_string());
        eprintln!("ablation_quality gain_weights/{name}: merged-query vars = {vars}");
        g.bench_with_input(name, &cfg, |b, cfg| {
            b.iter(|| black_box(merge_pair(&g1, &g4, cfg).is_some()))
        });
    }
    g.finish();

    // A2: numIter sweep.
    let mut g = c.benchmark_group("numiter");
    for num_iter in [1usize, 2, 4, 8] {
        let cfg = GreedyConfig {
            num_iter,
            ..Default::default()
        };
        g.bench_with_input(num_iter, &cfg, |b, cfg| {
            b.iter(|| black_box(merge_pair(&g1, &g4, cfg).is_some()))
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::from_env();
    bench_ablation(&mut c);
}
