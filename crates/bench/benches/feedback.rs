//! **M5** — microbenches of the interactive stage: disequality
//! inference, Algorithm 3's candidate elimination (with the result-set
//! cache), and a full session on the running example.

use std::hint::black_box;

use questpro_bench::microbench::Criterion;
use questpro_core::{infer_top_k, with_all_diseqs, TopKConfig};
use questpro_data::{erdos_example_set, erdos_ontology};
use questpro_feedback::{choose_query, run_session, FeedbackConfig, SessionConfig, TargetOracle};
use questpro_graph::rng::StdRng;

fn bench_feedback(c: &mut Criterion) {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let (candidates, _) = infer_top_k(
        &ont,
        &examples,
        &TopKConfig {
            k: 4,
            ..Default::default()
        },
    );
    let intended = candidates[0].clone();

    let mut g = c.benchmark_group("feedback");
    g.bench_function("diseq_inference", |b| {
        b.iter(|| black_box(with_all_diseqs(&ont, &candidates[0], &examples).diseq_count()))
    });
    g.bench_function("choose_query_k4", |b| {
        b.iter(|| {
            let mut oracle = TargetOracle::new(intended.clone());
            let mut rng = StdRng::seed_from_u64(5);
            black_box(
                choose_query(
                    &ont,
                    &candidates,
                    &examples,
                    &mut oracle,
                    &mut rng,
                    &FeedbackConfig::default(),
                )
                .chosen_index,
            )
        })
    });
    g.bench_function("full_session_erdos", |b| {
        b.iter(|| {
            let mut oracle = TargetOracle::new(intended.clone());
            let mut rng = StdRng::seed_from_u64(5);
            let cfg = SessionConfig {
                refine: true,
                ..Default::default()
            };
            black_box(
                run_session(&ont, &examples, &mut oracle, &mut rng, &cfg)
                    .selection_transcript
                    .len(),
            )
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::from_env();
    bench_feedback(&mut c);
}
