//! **M1/M2** — microbenches of the evaluation substrate: match
//! enumeration, result-set evaluation (sequential and sharded-parallel),
//! provenance computation, and the onto consistency check.

use std::hint::black_box;

use questpro_bench::microbench::Criterion;
use questpro_data::{erdos_example_set, erdos_ontology, generate_sp2b, sp2b_workload, Sp2bConfig};
use questpro_engine::{
    consistent_with_explanation, evaluate, evaluate_with, provenance_of, Matcher,
};
use questpro_query::fixtures::erdos_q1;

fn bench_matching(c: &mut Criterion) {
    let erdos = erdos_ontology();
    let q1 = erdos_q1();
    let sp2b = generate_sp2b(&Sp2bConfig::default());
    let q8a = sp2b_workload()
        .into_iter()
        .find(|w| w.id == "q8a")
        .expect("q8a in catalog")
        .query
        .into_branches()
        .remove(0);
    let q2 = sp2b_workload()
        .into_iter()
        .find(|w| w.id == "q2")
        .expect("q2 in catalog")
        .query
        .into_branches()
        .remove(0);

    let mut g = c.benchmark_group("matching");
    g.bench_function("count_q1_erdos", |b| {
        b.iter(|| black_box(Matcher::new(&erdos, &q1).count()))
    });
    g.bench_function("evaluate_q8a_sp2b", |b| {
        b.iter(|| black_box(evaluate(&sp2b, &q8a).len()))
    });
    g.bench_function("evaluate_q2_sp2b", |b| {
        b.iter(|| black_box(evaluate(&sp2b, &q2).len()))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(format!("evaluate_q2_sp2b_t{threads}"), &threads, |b, &t| {
            b.iter(|| black_box(evaluate_with(&sp2b, &q2, t).len()))
        });
    }
    let erdos_res = *evaluate(&sp2b, &q8a)
        .iter()
        .next()
        .expect("q8a has results");
    g.bench_function("provenance_q8a_one_result", |b| {
        b.iter(|| black_box(provenance_of(&sp2b, &q8a, erdos_res, Some(8)).len()))
    });
    g.finish();

    // A5: the edge-ordering heuristic — identical results, different
    // search cost.
    let mut g = c.benchmark_group("ordering");
    g.bench_function("most_constrained_first_q2", |b| {
        b.iter(|| black_box(Matcher::new(&sp2b, &q2).count()))
    });
    g.bench_function("sequential_q2", |b| {
        b.iter(|| black_box(Matcher::new(&sp2b, &q2).sequential_order().count()))
    });
    g.finish();

    let examples = erdos_example_set(&erdos);
    let e1 = &examples.explanations()[0];
    let mut g = c.benchmark_group("consistency");
    g.bench_function("onto_check_q1_vs_e1", |b| {
        b.iter(|| black_box(consistent_with_explanation(&erdos, &q1, e1)))
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::from_env();
    bench_matching(&mut c);
}
