//! Hand-rolled argument parsing (no external dependencies).
//!
//! Grammar: `questpro <subcommand> [--flag value]...`. Every flag takes
//! exactly one value except boolean switches (`--diseqs`, `--refine`).

use crate::error::CliError;

/// Top-level usage text.
pub const USAGE: &str = "\
questpro — interactive inference of SPARQL queries using provenance

USAGE:
  questpro generate --world <erdos|sp2b|bsbm|movies> --out FILE [--seed N]
                    [--scale N]   (stream a ~N-triple world instead of the
                    fixed-size generator)
  questpro eval     --ontology FILE --query FILE [--provenance VALUE]
                    [--polynomial] [--limit N] [--threads N|auto]
  questpro infer    --ontology FILE --examples FILE [--k N] [--w1 F] [--w2 F]
                    [--diseqs] [--optional] [--minimize] [--threads N|auto]
  questpro sample   --ontology FILE --query FILE [-n N] [--seed N]
                    [--result VALUE]   (explanations for one chosen result)
  questpro explore  --ontology FILE --node VALUE [--depth N]
  questpro session  --ontology FILE --examples FILE [--target FILE]
                    [--k N] [--seed N] [--refine] [--threads N|auto]
                    (without --target the questions are asked on stdin)
  questpro diagnose --ontology FILE --examples FILE
  questpro serve    [--port N | --addr HOST:PORT] [--workers N] [--queue N]
                    [--event-loops N] [--max-conns N] [--read-timeout-ms N]
                    [--threads N|auto] [--max-sessions N] [--idle-secs N]
                    [--log-file FILE] [--log-level LEVEL] [--slow-ms N]
                    [--store FILE]
                    (HTTP/JSON service; stops on POST /shutdown or terminal EOF;
                    --store preloads a binary snapshot into the registry)
  questpro store    build (--world <erdos|sp2b|bsbm|movies> [--scale N] [--seed N]
                    | --ontology FILE) --out FILE
                    (encode a world or triple file as a binary snapshot;
                    --scale streams triples straight into the encoder)
  questpro store    inspect --file FILE
                    (print snapshot version, section table, and store counts)
  questpro update   --store IN.qps --batch FILE.json --out OUT.qps
                    (apply a batched triple update — JSON {\"insert\": [[s,p,o]...],
                    \"delete\": [...]} — to a binary snapshot, copy-on-write;
                    the result is byte-identical to a from-scratch build)
  questpro trace    (--world <sp2b|bsbm|movies> [--query-id ID]
                    | --ontology FILE --query FILE)
                    [--examples N] [--k N] [--seed N] [--threads N|auto] [--refine]
                    [--chrome FILE]
                    (profile one full inference run; prints the span tree;
                    --chrome also writes Chrome trace-event JSON for
                    chrome://tracing / Perfetto)
  questpro logs     --file FILE [--level LEVEL] [--target T] [--trace-id N]
                    [--limit N]
                    (tail/filter a JSON-lines event log written by
                    `serve --log-file`; LEVEL is trace|debug|info|warn|error)
  questpro fuzz     (--surface <wire|sparql|triples|http|store|update> | --all)
                    [--seed N] [--iters N]
                    (deterministic fuzzing of the input parsers; exits
                    non-zero on any panic or oracle violation)
  questpro top      [--addr HOST:PORT | --port N] [--interval-ms N] [--once]
                    (live terminal dashboard over a running server's
                    /metrics: rps, open connections, per-route latency
                    quantiles, session outcomes and convergence rounds,
                    cache hit rates; --once prints one snapshot and exits)

FILES:
  ontology  — triple text format (`src pred dst`, `@type value Type`), or a
              binary snapshot built by `questpro store build` (auto-detected)
  examples  — explanation blocks (`dis <value>` + edges, blank-line separated)
  query     — SPARQL dialect (`SELECT ?x WHERE { ... }` [UNION ...])
";

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `questpro generate`.
    Generate(GenerateArgs),
    /// `questpro eval`.
    Eval(EvalArgs),
    /// `questpro infer`.
    Infer(InferArgs),
    /// `questpro sample`.
    Sample(SampleArgs),
    /// `questpro session`.
    Session(SessionArgs),
    /// `questpro diagnose`.
    Diagnose(DiagnoseArgs),
    /// `questpro explore`.
    Explore(ExploreArgs),
    /// `questpro serve`.
    Serve(ServeArgs),
    /// `questpro trace`.
    Trace(TraceArgs),
    /// `questpro logs`.
    Logs(LogsArgs),
    /// `questpro fuzz`.
    Fuzz(FuzzArgs),
    /// `questpro store` (build or inspect a binary snapshot).
    Store(StoreCommand),
    /// `questpro update` (apply a triple batch to a snapshot).
    Update(UpdateArgs),
    /// `questpro top` (live dashboard over a server's `/metrics`).
    Top(TopArgs),
}

/// Arguments of `questpro top`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopArgs {
    /// Scrape address (`HOST:PORT`) of the running server.
    pub addr: String,
    /// Milliseconds between scrapes in live mode.
    pub interval_ms: u64,
    /// Print one snapshot and exit instead of looping.
    pub once: bool,
}

/// Arguments of `questpro update`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateArgs {
    /// Input binary snapshot path.
    pub store: String,
    /// JSON batch file (`{"insert": [[s,p,o]...], "delete": [...]}` —
    /// the same shape `POST /ontologies/:name/update` accepts).
    pub batch: String,
    /// Output snapshot path (may equal `store`; the input is fully
    /// validated and the new snapshot fully encoded before anything is
    /// written).
    pub out: String,
}

/// The verb of `questpro store`.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreCommand {
    /// `questpro store build`.
    Build(StoreBuildArgs),
    /// `questpro store inspect`.
    Inspect(StoreInspectArgs),
}

/// Arguments of `questpro store build`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreBuildArgs {
    /// Built-in world to stream into the encoder (mutually exclusive
    /// with `ontology`).
    pub world: Option<String>,
    /// Approximate triple count for world mode (0 = the world's
    /// fixed-size generator).
    pub scale: u64,
    /// Generator seed (world mode).
    pub seed: u64,
    /// Triple-text ontology file to encode (file mode).
    pub ontology: Option<String>,
    /// Snapshot output path.
    pub out: String,
}

/// Arguments of `questpro store inspect`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreInspectArgs {
    /// Snapshot path to inspect.
    pub file: String,
}

/// Arguments of `questpro generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Which world to generate.
    pub world: String,
    /// Output path.
    pub out: String,
    /// Generator seed.
    pub seed: u64,
    /// Approximate triple count to stream (None = the world's
    /// fixed-size generator).
    pub scale: Option<u64>,
}

/// Arguments of `questpro eval`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalArgs {
    /// Ontology path.
    pub ontology: String,
    /// Query path.
    pub query: String,
    /// Value whose provenance should be printed, if any.
    pub provenance: Option<String>,
    /// Bound on the number of provenance graphs printed.
    pub limit: usize,
    /// Print semiring provenance polynomials instead of graphs.
    pub polynomial: bool,
    /// Worker threads for evaluation / provenance enumeration.
    pub threads: usize,
}

/// Arguments of `questpro infer`.
#[derive(Debug, Clone, PartialEq)]
pub struct InferArgs {
    /// Ontology path.
    pub ontology: String,
    /// Examples path.
    pub examples: String,
    /// Beam width / number of candidates.
    pub k: usize,
    /// Generalization weight w1 (variables).
    pub w1: f64,
    /// Generalization weight w2 (branches).
    pub w2: f64,
    /// Whether to augment candidates with inferred disequalities.
    pub diseqs: bool,
    /// Whether to tolerate shape mismatches via OPTIONAL edges.
    pub optional: bool,
    /// Whether to core-minimize candidates before printing.
    pub minimize: bool,
    /// Worker threads for the inference hot path.
    pub threads: usize,
}

/// Arguments of `questpro sample`.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleArgs {
    /// Ontology path.
    pub ontology: String,
    /// Target query path.
    pub query: String,
    /// Number of explanations to sample.
    pub n: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Compile explanations for this specific result value instead of
    /// sampling results (the paper's user flow: pick the output example,
    /// let the system offer its possible explanations).
    pub result: Option<String>,
}

/// Arguments of `questpro explore`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreArgs {
    /// Ontology path.
    pub ontology: String,
    /// Value of the node whose neighborhood to display.
    pub node: String,
    /// Neighborhood radius (the paper's 1-neighborhood browser).
    pub depth: usize,
}

/// Arguments of `questpro session`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionArgs {
    /// Ontology path.
    pub ontology: String,
    /// Examples path.
    pub examples: String,
    /// Target query path (drives the simulated oracle); `None` means
    /// interactive: questions are asked on the terminal.
    pub target: Option<String>,
    /// Beam width.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether to run disequality refinement.
    pub refine: bool,
    /// Worker threads for the inference hot path.
    pub threads: usize,
}

/// Arguments of `questpro serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Bind address (`HOST:PORT`).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded backlog of accepted-but-unserved connections.
    pub queue: usize,
    /// Event-loop (reactor) threads multiplexing connections.
    pub event_loops: usize,
    /// Maximum concurrently open connections across all loops.
    pub max_conns: usize,
    /// Socket read timeout, ms; also caps keep-alive idle time.
    pub read_timeout_ms: u64,
    /// Default inference threads per request.
    pub threads: usize,
    /// Maximum live interactive sessions.
    pub max_sessions: usize,
    /// Idle-session eviction window, seconds.
    pub idle_secs: u64,
    /// JSON-lines sink path for the structured event log, if any.
    pub log_file: Option<String>,
    /// Minimum level kept by the event log (default `info`).
    pub log_level: Option<String>,
    /// Slow-query log threshold in milliseconds (0 disables it).
    pub slow_ms: u64,
    /// Binary snapshot to preload into the ontology registry, if any.
    pub store: Option<String>,
}

/// Arguments of `questpro trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// Built-in world to generate (`sp2b`, `bsbm`, `movies`); mutually
    /// exclusive with `ontology`.
    pub world: Option<String>,
    /// Workload query ID within the world (defaults to the first).
    pub query_id: Option<String>,
    /// Ontology path (file mode).
    pub ontology: Option<String>,
    /// Target query path (file mode).
    pub query: Option<String>,
    /// Number of explanations to sample as the example-set.
    pub examples: usize,
    /// Beam width.
    pub k: usize,
    /// RNG seed (sampling and world generation).
    pub seed: u64,
    /// Worker threads for the inference hot path.
    pub threads: usize,
    /// Whether to run disequality refinement.
    pub refine: bool,
    /// Path for a Chrome trace-event JSON export, if any.
    pub chrome: Option<String>,
}

/// Arguments of `questpro logs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogsArgs {
    /// JSON-lines log file to read (written by `serve --log-file`).
    pub file: String,
    /// Minimum level to keep (`trace|debug|info|warn|error`).
    pub level: Option<String>,
    /// Keep only events with this exact target.
    pub target: Option<String>,
    /// Keep only events joined to this trace ID.
    pub trace_id: Option<u64>,
    /// Print at most the last N matching events.
    pub limit: usize,
}

/// Arguments of `questpro fuzz`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzArgs {
    /// Surface to fuzz (`wire`, `sparql`, `triples`, `http`, `store`,
    /// `update`); `None` with `all` set means every surface.
    pub surface: Option<String>,
    /// Fuzz all surfaces.
    pub all: bool,
    /// Master seed.
    pub seed: u64,
    /// Iterations per surface.
    pub iters: u64,
}

/// Arguments of `questpro diagnose`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnoseArgs {
    /// Ontology path.
    pub ontology: String,
    /// Examples path.
    pub examples: String,
}

/// Parses a full argument vector (excluding the program name).
///
/// # Errors
/// Returns [`CliError::Usage`] with a helpful message on any problem.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some((sub, rest)) = argv.split_first() else {
        return Err(CliError::Usage(format!("missing subcommand\n\n{USAGE}")));
    };
    if sub == "store" {
        // `store` takes a verb positional before its flags.
        return parse_store(rest);
    }
    let flags = Flags::parse(rest)?;
    if let Some((_, allowed)) = KNOWN_FLAGS.iter().find(|(name, _)| name == sub) {
        flags.check(sub, allowed)?;
    }
    match sub.as_str() {
        "generate" => Ok(Command::Generate(GenerateArgs {
            world: flags.require("world")?,
            out: flags.require("out")?,
            seed: flags.num("seed", 0)?,
            scale: match flags.get("scale") {
                None => None,
                Some(_) => Some(flags.num("scale", 0)?.max(1)),
            },
        })),
        "eval" => Ok(Command::Eval(EvalArgs {
            ontology: flags.require("ontology")?,
            query: flags.require("query")?,
            provenance: flags.get("provenance"),
            limit: flags.num("limit", 8)? as usize,
            polynomial: flags.switch("polynomial"),
            threads: flags.threads("threads")?,
        })),
        "infer" => Ok(Command::Infer(InferArgs {
            ontology: flags.require("ontology")?,
            examples: flags.require("examples")?,
            k: flags.num("k", 3)? as usize,
            w1: flags.float("w1", 2.0)?,
            w2: flags.float("w2", 5.0)?,
            diseqs: flags.switch("diseqs"),
            optional: flags.switch("optional"),
            minimize: flags.switch("minimize"),
            threads: flags.threads("threads")?,
        })),
        "sample" => Ok(Command::Sample(SampleArgs {
            ontology: flags.require("ontology")?,
            query: flags.require("query")?,
            n: flags.num("n", 3)? as usize,
            seed: flags.num("seed", 0)?,
            result: flags.get("result"),
        })),
        "session" => Ok(Command::Session(SessionArgs {
            ontology: flags.require("ontology")?,
            examples: flags.require("examples")?,
            target: flags.get("target"),
            k: flags.num("k", 3)? as usize,
            seed: flags.num("seed", 0)?,
            refine: flags.switch("refine"),
            threads: flags.threads("threads")?,
        })),
        "diagnose" => Ok(Command::Diagnose(DiagnoseArgs {
            ontology: flags.require("ontology")?,
            examples: flags.require("examples")?,
        })),
        "serve" => {
            let port = flags.num("port", 7474)?;
            Ok(Command::Serve(ServeArgs {
                addr: flags
                    .get("addr")
                    .unwrap_or_else(|| format!("127.0.0.1:{port}")),
                workers: flags.num("workers", 8)?.max(1) as usize,
                queue: flags.num("queue", 64)?.max(1) as usize,
                event_loops: flags.num("event-loops", 1)?.max(1) as usize,
                max_conns: flags.num("max-conns", 10_240)?.max(1) as usize,
                read_timeout_ms: flags.num("read-timeout-ms", 5_000)?.max(1),
                threads: flags.threads("threads")?,
                max_sessions: flags.num("max-sessions", 64)?.max(1) as usize,
                idle_secs: flags.num("idle-secs", 1_800)?.max(1),
                log_file: flags.get("log-file"),
                log_level: flags.get("log-level"),
                slow_ms: flags.num("slow-ms", 500)?,
                store: flags.get("store"),
            }))
        }
        "explore" => Ok(Command::Explore(ExploreArgs {
            ontology: flags.require("ontology")?,
            node: flags.require("node")?,
            depth: flags.num("depth", 1)? as usize,
        })),
        "trace" => Ok(Command::Trace(TraceArgs {
            world: flags.get("world"),
            query_id: flags.get("query-id"),
            ontology: flags.get("ontology"),
            query: flags.get("query"),
            examples: flags.num("examples", 4)?.max(1) as usize,
            k: flags.num("k", 3)?.max(1) as usize,
            seed: flags.num("seed", 0)?,
            threads: flags.threads("threads")?,
            refine: flags.switch("refine"),
            chrome: flags.get("chrome"),
        })),
        "logs" => Ok(Command::Logs(LogsArgs {
            file: flags.require("file")?,
            level: flags.get("level"),
            target: flags.get("target"),
            trace_id: flags
                .get("trace-id")
                .map(|v| v.parse())
                .transpose()
                .map_err(|_| CliError::Usage("--trace-id expects an integer".to_string()))?,
            limit: flags.num("limit", 64)?.max(1) as usize,
        })),
        "fuzz" => {
            let args = FuzzArgs {
                surface: flags.get("surface"),
                all: flags.switch("all"),
                seed: flags.num("seed", 0)?,
                iters: flags.num("iters", 10_000)?.max(1),
            };
            if args.surface.is_none() && !args.all {
                return Err(CliError::Usage(
                    "fuzz needs --surface <wire|sparql|triples|http|store|update> or --all"
                        .to_string(),
                ));
            }
            Ok(Command::Fuzz(args))
        }
        "update" => Ok(Command::Update(UpdateArgs {
            store: flags.require("store")?,
            batch: flags.require("batch")?,
            out: flags.require("out")?,
        })),
        "top" => {
            let port = flags.num("port", 7474)?;
            Ok(Command::Top(TopArgs {
                addr: flags
                    .get("addr")
                    .unwrap_or_else(|| format!("127.0.0.1:{port}")),
                interval_ms: flags.num("interval-ms", 2_000)?.max(100),
                once: flags.switch("once"),
            }))
        }
        "help" | "--help" | "-h" => Err(CliError::Usage(USAGE.to_string())),
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other:?}\n\n{USAGE}"
        ))),
    }
}

/// Parses `questpro store <verb> [--flags]`.
fn parse_store(rest: &[String]) -> Result<Command, CliError> {
    let Some((verb, rest)) = rest.split_first() else {
        return Err(CliError::Usage(
            "store needs a verb: `questpro store build ...` or `questpro store inspect ...`"
                .to_string(),
        ));
    };
    let flags = Flags::parse(rest)?;
    match verb.as_str() {
        "build" => {
            flags.check(
                "store build",
                &["world", "scale", "seed", "ontology", "out"],
            )?;
            let args = StoreBuildArgs {
                world: flags.get("world"),
                scale: flags.num("scale", 0)?,
                seed: flags.num("seed", 0)?,
                ontology: flags.get("ontology"),
                out: flags.require("out")?,
            };
            match (&args.world, &args.ontology) {
                (Some(_), Some(_)) => Err(CliError::Usage(
                    "store build takes --world or --ontology, not both".to_string(),
                )),
                (None, None) => Err(CliError::Usage(
                    "store build needs --world <erdos|sp2b|bsbm|movies> or --ontology FILE"
                        .to_string(),
                )),
                _ => Ok(Command::Store(StoreCommand::Build(args))),
            }
        }
        "inspect" => {
            flags.check("store inspect", &["file"])?;
            Ok(Command::Store(StoreCommand::Inspect(StoreInspectArgs {
                file: flags.require("file")?,
            })))
        }
        other => Err(CliError::Usage(format!(
            "unknown store verb {other:?} (expected build or inspect)"
        ))),
    }
}

/// Flag map with typed accessors.
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

/// Boolean switches that take no value.
const SWITCHES: &[&str] = &[
    "diseqs",
    "refine",
    "optional",
    "minimize",
    "polynomial",
    "all",
    "once",
];

/// Per-subcommand flag allowlists. A flag outside its subcommand's list
/// — or any flag given twice — is a hard usage error, never silently
/// ignored.
const KNOWN_FLAGS: &[(&str, &[&str])] = &[
    ("generate", &["world", "out", "seed", "scale"]),
    (
        "eval",
        &[
            "ontology",
            "query",
            "provenance",
            "limit",
            "polynomial",
            "threads",
        ],
    ),
    (
        "infer",
        &[
            "ontology", "examples", "k", "w1", "w2", "diseqs", "optional", "minimize", "threads",
        ],
    ),
    ("sample", &["ontology", "query", "n", "seed", "result"]),
    (
        "session",
        &[
            "ontology", "examples", "target", "k", "seed", "refine", "threads",
        ],
    ),
    ("diagnose", &["ontology", "examples"]),
    (
        "serve",
        &[
            "port",
            "addr",
            "workers",
            "queue",
            "event-loops",
            "max-conns",
            "read-timeout-ms",
            "threads",
            "max-sessions",
            "idle-secs",
            "log-file",
            "log-level",
            "slow-ms",
            "store",
        ],
    ),
    ("explore", &["ontology", "node", "depth"]),
    (
        "trace",
        &[
            "world", "query-id", "ontology", "query", "examples", "k", "seed", "threads", "refine",
            "chrome",
        ],
    ),
    ("logs", &["file", "level", "target", "trace-id", "limit"]),
    ("fuzz", &["surface", "all", "seed", "iters"]),
    ("update", &["store", "batch", "out"]),
    ("top", &["addr", "port", "interval-ms", "once"]),
];

impl Flags {
    fn parse(rest: &[String]) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut it = rest.iter().peekable();
        while let Some(tok) = it.next() {
            let name = tok
                .strip_prefix("--")
                .or_else(|| tok.strip_prefix('-').filter(|s| !s.is_empty()))
                .ok_or_else(|| CliError::Usage(format!("expected a --flag, found {tok:?}")))?;
            if SWITCHES.contains(&name) {
                pairs.push((name.to_string(), None));
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
                pairs.push((name.to_string(), Some(value.clone())));
            }
        }
        Ok(Self { pairs })
    }

    /// Rejects unknown and duplicated flags for `sub` against its
    /// allowlist.
    fn check(&self, sub: &str, allowed: &[&str]) -> Result<(), CliError> {
        for (i, (name, _)) in self.pairs.iter().enumerate() {
            if !allowed.contains(&name.as_str()) {
                let expected: Vec<String> = allowed.iter().map(|f| format!("--{f}")).collect();
                return Err(CliError::Usage(format!(
                    "unknown flag --{name} for `questpro {sub}` (expected one of: {})\n\n\
                     run `questpro help` for the full usage",
                    expected.join(", ")
                )));
            }
            if self.pairs[..i].iter().any(|(n, _)| n == name) {
                return Err(CliError::Usage(format!(
                    "flag --{name} given more than once for `questpro {sub}`\n\n\
                     run `questpro help` for the full usage"
                )));
            }
        }
        Ok(())
    }

    fn get(&self, name: &str) -> Option<String> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.clone())
    }

    fn switch(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn require(&self, name: &str) -> Result<String, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got {v:?}"))),
        }
    }

    fn float(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects a number, got {v:?}"))),
        }
    }

    /// Thread-count flag: an integer, or `auto` for the host's available
    /// parallelism. `0` and `auto`-on-a-degraded-host clamp to 1.
    fn threads(&self, name: &str) -> Result<usize, CliError> {
        match self.get(name) {
            None => Ok(1),
            Some(v) if v == "auto" => {
                Ok(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
            }
            Some(v) => v.parse::<usize>().map(|n| n.max(1)).map_err(|_| {
                CliError::Usage(format!("--{name} expects an integer or `auto`, got {v:?}"))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&argv("generate --world sp2b --out w.triples --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate(GenerateArgs {
                world: "sp2b".into(),
                out: "w.triples".into(),
                seed: 7,
                scale: None,
            })
        );
        let cmd = parse(&argv("generate --world sp2b --out w --scale 100000")).unwrap();
        match cmd {
            Command::Generate(g) => assert_eq!(g.scale, Some(100_000)),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_store_build_and_inspect() {
        let cmd = parse(&argv(
            "store build --world bsbm --scale 50000 --seed 3 --out w.qps",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Store(StoreCommand::Build(StoreBuildArgs {
                world: Some("bsbm".into()),
                scale: 50_000,
                seed: 3,
                ontology: None,
                out: "w.qps".into(),
            }))
        );
        let cmd = parse(&argv("store build --ontology o.triples --out o.qps")).unwrap();
        match cmd {
            Command::Store(StoreCommand::Build(b)) => {
                assert_eq!(b.ontology.as_deref(), Some("o.triples"));
                assert!(b.world.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse(&argv("store inspect --file w.qps")).unwrap();
        assert_eq!(
            cmd,
            Command::Store(StoreCommand::Inspect(StoreInspectArgs {
                file: "w.qps".into(),
            }))
        );
    }

    #[test]
    fn store_argument_errors_are_reported() {
        let err = parse(&argv("store")).unwrap_err();
        assert!(err.to_string().contains("store needs a verb"), "{err}");
        let err = parse(&argv("store frobnicate --out x")).unwrap_err();
        assert!(err.to_string().contains("unknown store verb"), "{err}");
        let err = parse(&argv("store build --out x")).unwrap_err();
        assert!(err.to_string().contains("--world"), "{err}");
        let err = parse(&argv("store build --world sp2b --ontology o --out x")).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
        let err = parse(&argv("store build --world sp2b")).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
        let err = parse(&argv("store build --world sp2b --out x --bogus y")).unwrap_err();
        assert!(err.to_string().contains("unknown flag --bogus"), "{err}");
        let err = parse(&argv("store inspect --file a --file b")).unwrap_err();
        assert!(err.to_string().contains("more than once"), "{err}");
    }

    #[test]
    fn parses_serve_with_store_preload() {
        let cmd = parse(&argv("serve --store w.qps")).unwrap();
        match cmd {
            Command::Serve(s) => assert_eq!(s.store.as_deref(), Some("w.qps")),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_infer_with_defaults_and_switch() {
        let cmd = parse(&argv("infer --ontology o --examples e --diseqs")).unwrap();
        match cmd {
            Command::Infer(i) => {
                assert_eq!(i.k, 3);
                assert_eq!(i.w1, 2.0);
                assert!(i.diseqs);
                assert!(!i.optional);
                assert_eq!(i.threads, 1);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn missing_required_flag_is_reported() {
        let err = parse(&argv("eval --ontology o")).unwrap_err();
        assert!(err.to_string().contains("--query"));
    }

    #[test]
    fn update_requires_all_three_paths() {
        match parse(&argv("update --store in.qps --batch b.json --out out.qps")).unwrap() {
            Command::Update(u) => {
                assert_eq!(u.store, "in.qps");
                assert_eq!(u.batch, "b.json");
                assert_eq!(u.out, "out.qps");
            }
            other => panic!("parsed {other:?}"),
        }
        for missing in [
            "update --batch b.json --out o.qps",
            "update --store i.qps --out o.qps",
            "update --store i.qps --batch b.json",
        ] {
            assert!(parse(&argv(missing)).is_err(), "{missing}");
        }
        // Unknown flags are rejected, not ignored.
        assert!(parse(&argv("update --store i --batch b --out o --k 3")).is_err());
    }

    #[test]
    fn parses_top_with_defaults_and_overrides() {
        let cmd = parse(&argv("top")).unwrap();
        assert_eq!(
            cmd,
            Command::Top(TopArgs {
                addr: "127.0.0.1:7474".into(),
                interval_ms: 2_000,
                once: false,
            })
        );
        let cmd = parse(&argv("top --addr 10.0.0.1:9999 --interval-ms 50 --once")).unwrap();
        match cmd {
            Command::Top(t) => {
                assert_eq!(t.addr, "10.0.0.1:9999");
                assert_eq!(t.interval_ms, 100, "interval clamps to 100ms");
                assert!(t.once);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse(&argv("top --port 8080 --once")).unwrap();
        match cmd {
            Command::Top(t) => assert_eq!(t.addr, "127.0.0.1:8080"),
            other => panic!("wrong command {other:?}"),
        }
        let err = parse(&argv("top --bogus x")).unwrap_err();
        assert!(err.to_string().contains("unknown flag --bogus"), "{err}");
    }

    #[test]
    fn unknown_subcommand_shows_usage() {
        let err = parse(&argv("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("unknown subcommand"));
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn flag_without_value_is_reported() {
        let err = parse(&argv("eval --ontology")).unwrap_err();
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn bad_number_is_reported() {
        let err = parse(&argv("infer --ontology o --examples e --k many")).unwrap_err();
        assert!(err.to_string().contains("integer"));
    }

    #[test]
    fn parses_threads_flag() {
        let cmd = parse(&argv("infer --ontology o --examples e --threads 8")).unwrap();
        match cmd {
            Command::Infer(i) => assert_eq!(i.threads, 8),
            other => panic!("wrong command {other:?}"),
        }
        // 0 is clamped to 1 (sequential).
        let cmd = parse(&argv("eval --ontology o --query q --threads 0")).unwrap();
        match cmd {
            Command::Eval(e) => assert_eq!(e.threads, 1),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_threads_auto() {
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        for cmd in [
            "eval --ontology o --query q --threads auto",
            "infer --ontology o --examples e --threads auto",
            "session --ontology o --examples e --threads auto",
            "serve --threads auto",
            "trace --world sp2b --threads auto",
        ] {
            let threads = match parse(&argv(cmd)).unwrap() {
                Command::Eval(a) => a.threads,
                Command::Infer(a) => a.threads,
                Command::Session(a) => a.threads,
                Command::Serve(a) => a.threads,
                Command::Trace(a) => a.threads,
                other => panic!("wrong command {other:?}"),
            };
            assert_eq!(threads, hw, "{cmd}");
        }
        // Anything else non-numeric is still an error, with `auto` in the hint.
        let err = parse(&argv("infer --ontology o --examples e --threads both")).unwrap_err();
        assert!(err.to_string().contains("`auto`"), "{err}");
    }

    #[test]
    fn parses_serve_with_port_and_addr_override() {
        let cmd = parse(&argv("serve --port 9000 --workers 4")).unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.addr, "127.0.0.1:9000");
                assert_eq!(s.workers, 4);
                assert_eq!(s.queue, 64);
                assert_eq!(s.event_loops, 1);
                assert_eq!(s.max_conns, 10_240);
                assert_eq!(s.read_timeout_ms, 5_000);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse(&argv("serve --addr 0.0.0.0:80 --port 9000")).unwrap();
        match cmd {
            Command::Serve(s) => assert_eq!(s.addr, "0.0.0.0:80", "--addr wins"),
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse(&argv(
            "serve --event-loops 4 --max-conns 20000 --read-timeout-ms 60000",
        ))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.event_loops, 4);
                assert_eq!(s.max_conns, 20_000);
                assert_eq!(s.read_timeout_ms, 60_000);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_trace_in_both_modes() {
        let cmd = parse(&argv("trace --world sp2b --query-id q8a --threads 8")).unwrap();
        match cmd {
            Command::Trace(t) => {
                assert_eq!(t.world.as_deref(), Some("sp2b"));
                assert_eq!(t.query_id.as_deref(), Some("q8a"));
                assert_eq!(t.examples, 4);
                assert_eq!(t.threads, 8);
                assert!(!t.refine);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse(&argv("trace --ontology o --query q --refine")).unwrap();
        match cmd {
            Command::Trace(t) => {
                assert!(t.world.is_none());
                assert_eq!(t.ontology.as_deref(), Some("o"));
                assert_eq!(t.query.as_deref(), Some("q"));
                assert!(t.refine);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn help_prints_usage() {
        let err = parse(&argv("help")).unwrap_err();
        assert!(err.to_string().contains("questpro generate"));
    }

    #[test]
    fn unknown_flag_is_a_hard_error_with_a_hint() {
        let err = parse(&argv("trace --world sp2b --frobnicate 3")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown flag --frobnicate"), "{msg}");
        assert!(
            msg.contains("--query-id"),
            "hint lists the real flags: {msg}"
        );
        assert!(msg.contains("questpro help"), "{msg}");

        let err = parse(&argv("fuzz --all --sneed 7")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown flag --sneed"), "{msg}");
        assert!(msg.contains("`questpro fuzz`"), "{msg}");

        // Every subcommand is covered, not just trace/fuzz.
        for cmd in [
            "generate --world sp2b --out w --bogus x",
            "eval --ontology o --query q --bogus x",
            "infer --ontology o --examples e --bogus x",
            "sample --ontology o --query q --bogus x",
            "session --ontology o --examples e --bogus x",
            "diagnose --ontology o --examples e --bogus x",
            "serve --bogus x",
            "explore --ontology o --node n --bogus x",
            "logs --file f --bogus x",
        ] {
            let err = parse(&argv(cmd)).unwrap_err();
            assert!(
                err.to_string().contains("unknown flag --bogus"),
                "{cmd}: {err}"
            );
        }
    }

    #[test]
    fn duplicated_flag_is_a_hard_error() {
        let err = parse(&argv("trace --world sp2b --seed 1 --seed 2")).unwrap_err();
        assert!(
            err.to_string().contains("--seed given more than once"),
            "{err}"
        );
        let err = parse(&argv("fuzz --all --iters 5 --iters 9")).unwrap_err();
        assert!(
            err.to_string().contains("--iters given more than once"),
            "{err}"
        );
        // Repeated switches count too.
        let err = parse(&argv("fuzz --all --all")).unwrap_err();
        assert!(
            err.to_string().contains("--all given more than once"),
            "{err}"
        );
    }

    #[test]
    fn parses_trace_with_chrome_export() {
        let cmd = parse(&argv("trace --world sp2b --chrome out.json")).unwrap();
        match cmd {
            Command::Trace(t) => assert_eq!(t.chrome.as_deref(), Some("out.json")),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_logs_with_filters() {
        let cmd = parse(&argv(
            "logs --file app.log --level warn --target server.access --trace-id 42 --limit 5",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Logs(LogsArgs {
                file: "app.log".into(),
                level: Some("warn".into()),
                target: Some("server.access".into()),
                trace_id: Some(42),
                limit: 5,
            })
        );
        // --file is required; --trace-id must be numeric.
        let err = parse(&argv("logs --level warn")).unwrap_err();
        assert!(err.to_string().contains("--file"), "{err}");
        let err = parse(&argv("logs --file f --trace-id abc")).unwrap_err();
        assert!(err.to_string().contains("integer"), "{err}");
    }

    #[test]
    fn parses_serve_logging_flags() {
        let cmd = parse(&argv(
            "serve --log-file s.log --log-level debug --slow-ms 250",
        ))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.log_file.as_deref(), Some("s.log"));
                assert_eq!(s.log_level.as_deref(), Some("debug"));
                assert_eq!(s.slow_ms, 250);
            }
            other => panic!("wrong command {other:?}"),
        }
    }
}
