//! The `questpro` command-line interface.
//!
//! Everything a downstream user needs to drive QuestPro-RS from a shell:
//!
//! ```text
//! questpro generate --world sp2b --out world.triples
//! questpro sample   --ontology world.triples --query q.sparql -n 3 > ex.txt
//! questpro infer    --ontology world.triples --examples ex.txt --k 3
//! questpro eval     --ontology world.triples --query q.sparql
//! questpro session  --ontology world.triples --examples ex.txt --target q.sparql
//! ```
//!
//! The library half ([`run`]) is a pure function from parsed arguments
//! to output text, so the whole CLI is unit-testable without spawning
//! processes; `main.rs` only parses `std::env::args` and prints.

pub mod args;
pub mod commands;
pub mod error;

pub use args::Command;
pub use error::CliError;

/// Executes a parsed command, returning its stdout text.
///
/// # Errors
/// Returns a [`CliError`] describing bad input files, malformed
/// queries/examples, or unsatisfiable requests.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Generate(g) => commands::generate::run(&g),
        Command::Eval(e) => commands::eval::run(&e),
        Command::Infer(i) => commands::infer::run(&i),
        Command::Sample(s) => commands::sample::run(&s),
        Command::Session(s) => commands::session::run(&s),
        Command::Diagnose(d) => commands::diagnose::run(&d),
        Command::Explore(e) => commands::explore::run(&e),
        Command::Serve(s) => commands::serve::run(&s),
        Command::Trace(t) => commands::trace::run(&t),
        Command::Logs(l) => commands::logs::run(&l),
        Command::Fuzz(f) => commands::fuzz::run(&f),
        Command::Store(s) => commands::store::run(&s),
        Command::Update(u) => commands::update::run(&u),
        Command::Top(t) => commands::top::run(&t),
    }
}
