//! Implementations of the CLI subcommands.
//!
//! Every command is a pure function from parsed arguments to output
//! text; file IO goes through the [`io`] helpers so failures carry their
//! paths.

pub mod io {
    //! File-reading helpers shared by the subcommands.

    use questpro_graph::{triples, ExampleSet, Ontology};
    use questpro_query::{sparql, UnionQuery};

    use crate::error::CliError;

    /// Reads an ontology from either the triple text format or a binary
    /// snapshot (`questpro store build`), sniffed by the 4-byte magic —
    /// so every `--ontology FILE` flag accepts both transparently.
    pub fn load_ontology(path: &str) -> Result<Ontology, CliError> {
        let bytes = std::fs::read(path).map_err(|e| CliError::io(path, e))?;
        if bytes.starts_with(&questpro_store::MAGIC) {
            let store = questpro_store::decode(&bytes).map_err(CliError::input)?;
            return store.to_ontology().map_err(CliError::input);
        }
        let text = String::from_utf8(bytes).map_err(|_| {
            CliError::Input(format!(
                "{path} is neither UTF-8 triple text nor a questpro snapshot"
            ))
        })?;
        triples::parse(&text).map_err(CliError::input)
    }

    /// Reads and parses a (union) query in the SPARQL dialect.
    pub fn load_query(path: &str) -> Result<UnionQuery, CliError> {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
        sparql::parse_union(&text).map_err(CliError::input)
    }

    /// Reads and parses an example-set against an ontology.
    pub fn load_examples(path: &str, ont: &Ontology) -> Result<ExampleSet, CliError> {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
        let set = questpro_graph::exformat::parse_examples(ont, &text).map_err(CliError::input)?;
        if set.is_empty() {
            return Err(CliError::Input(format!("{path} contains no explanations")));
        }
        Ok(set)
    }
}

pub mod generate {
    //! `questpro generate` — write a synthetic world to disk.

    use questpro_data::{
        generate_bsbm, generate_movies, generate_sp2b, scale_stream, BsbmConfig, MoviesConfig,
        ScaleConfig, ScaleItem, ScaleWorld, Sp2bConfig,
    };
    use questpro_graph::triples;

    use crate::args::GenerateArgs;
    use crate::error::CliError;

    /// Streams a `--scale N` world to disk item by item — the triple
    /// text never exists in memory, so 10⁷-triple files are fine.
    /// Scale-world labels are `snake_case` identifiers, which need no
    /// percent-escaping in the text format.
    fn run_scaled(args: &GenerateArgs, target: u64) -> Result<String, CliError> {
        use std::io::Write as _;
        let world = ScaleWorld::from_name(&args.world).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown world {:?} (expected erdos|sp2b|bsbm|movies)",
                args.world
            ))
        })?;
        let cfg = ScaleConfig {
            world,
            triples: target,
            seed: args.seed,
        };
        let file = std::fs::File::create(&args.out).map_err(|e| CliError::io(&args.out, e))?;
        let mut w = std::io::BufWriter::new(file);
        let (mut triples, mut types) = (0u64, 0u64);
        for item in scale_stream(&cfg) {
            match item {
                ScaleItem::Triple { s, p, o } => {
                    triples += 1;
                    writeln!(w, "{s} {p} {o}").map_err(|e| CliError::io(&args.out, e))?;
                }
                ScaleItem::Type { node, ty } => {
                    types += 1;
                    writeln!(w, "@type {node} {ty}").map_err(|e| CliError::io(&args.out, e))?;
                }
            }
        }
        w.flush().map_err(|e| CliError::io(&args.out, e))?;
        Ok(format!(
            "wrote {} ({triples} triple(s), {types} type declaration(s), streamed)\n",
            args.out
        ))
    }

    /// Runs the command.
    pub fn run(args: &GenerateArgs) -> Result<String, CliError> {
        if let Some(target) = args.scale {
            return run_scaled(args, target);
        }
        let ont = match args.world.as_str() {
            "erdos" => questpro_data::erdos_ontology(),
            "sp2b" => generate_sp2b(&Sp2bConfig {
                seed: args.seed,
                ..Default::default()
            }),
            "bsbm" => generate_bsbm(&BsbmConfig {
                seed: args.seed,
                ..Default::default()
            }),
            "movies" => generate_movies(&MoviesConfig {
                seed: args.seed,
                ..Default::default()
            }),
            other => {
                return Err(CliError::Usage(format!(
                    "unknown world {other:?} (expected erdos|sp2b|bsbm|movies)"
                )))
            }
        };
        let text = triples::serialize(&ont);
        std::fs::write(&args.out, text).map_err(|e| CliError::io(&args.out, e))?;
        let mut out = format!(
            "wrote {} ({} nodes, {} edges)\n",
            args.out,
            ont.node_count(),
            ont.edge_count()
        );
        for (ty, count) in ont.type_histogram() {
            out.push_str(&format!("  {count:>6}  {ty}\n"));
        }
        Ok(out)
    }
}

pub mod eval {
    //! `questpro eval` — evaluate a query, optionally with provenance.

    use std::fmt::Write as _;

    use questpro_engine::{evaluate_union_with, polynomial_of_union, provenance_of_union_with};

    use crate::args::EvalArgs;
    use crate::commands::io;
    use crate::error::CliError;

    /// Runs the command.
    pub fn run(args: &EvalArgs) -> Result<String, CliError> {
        let ont = io::load_ontology(&args.ontology)?;
        let query = io::load_query(&args.query)?;
        let mut out = String::new();
        let results = evaluate_union_with(&ont, &query, args.threads);
        let _ = writeln!(out, "{} result(s):", results.len());
        for &r in &results {
            let _ = writeln!(out, "  {}", ont.value_str(r));
        }
        if let Some(value) = &args.provenance {
            let node = ont
                .node_by_value(value)
                .ok_or_else(|| CliError::Input(format!("no node with value {value:?}")))?;
            if !results.contains(&node) {
                return Err(CliError::Unsatisfiable(format!(
                    "{value} is not a result of the query"
                )));
            }
            if args.polynomial {
                let p = polynomial_of_union(&ont, &query, node, Some(args.limit.max(1)));
                let _ = writeln!(
                    out,
                    "\nprovenance polynomial of {value} ({} monomial(s), limit {}):",
                    p.len(),
                    args.limit
                );
                let _ = writeln!(out, "{}", p.describe(&ont));
            } else {
                let graphs = provenance_of_union_with(
                    &ont,
                    &query,
                    node,
                    Some(args.limit.max(1)),
                    args.threads,
                );
                let _ = writeln!(
                    out,
                    "\nprovenance of {value} ({} graph(s), limit {}):",
                    graphs.len(),
                    args.limit
                );
                for (i, g) in graphs.iter().enumerate() {
                    let _ = writeln!(out, "--- graph {} ---", i + 1);
                    let _ = writeln!(out, "{}", g.describe(&ont));
                }
            }
        }
        Ok(out)
    }
}

pub mod infer {
    //! `questpro infer` — top-k query inference from explanations.

    use std::fmt::Write as _;

    use questpro_core::{infer_top_k, with_all_diseqs, GreedyConfig, TopKConfig};
    use questpro_query::GeneralizationWeights;

    use crate::args::InferArgs;
    use crate::commands::io;
    use crate::error::CliError;

    /// Runs the command.
    pub fn run(args: &InferArgs) -> Result<String, CliError> {
        let ont = io::load_ontology(&args.ontology)?;
        let examples = io::load_examples(&args.examples, &ont)?;
        let weights = GeneralizationWeights::new(args.w1, args.w2);
        let cfg = TopKConfig {
            k: args.k.max(1),
            weights,
            greedy: GreedyConfig {
                allow_optional: args.optional,
                ..Default::default()
            },
            threads: args.threads.max(1),
        };
        let (mut candidates, stats) = infer_top_k(&ont, &examples, &cfg);
        if args.minimize {
            use questpro_query::UnionQuery;
            candidates = candidates
                .into_iter()
                .map(|u| {
                    UnionQuery::new(u.branches().iter().map(questpro_engine::minimize).collect())
                        .expect("branch count unchanged")
                })
                .collect();
        }
        if candidates.is_empty() {
            return Err(CliError::Unsatisfiable(
                "no consistent query found for the example-set".to_string(),
            ));
        }
        let mut out = String::new();
        for (i, q) in candidates.iter().enumerate() {
            let q = if args.diseqs {
                with_all_diseqs(&ont, q, &examples)
            } else {
                q.clone()
            };
            let _ = writeln!(
                out,
                "# candidate {} — cost {:.1} ({} branch(es), {} var(s){})",
                i + 1,
                q.cost(weights),
                q.len(),
                q.total_vars(),
                if args.diseqs {
                    format!(", {} diseq(s)", q.diseq_count())
                } else {
                    String::new()
                }
            );
            let _ = writeln!(out, "{q}\n");
        }
        let _ = writeln!(
            out,
            "# explored {} intermediate queries in {} round(s)",
            stats.algorithm1_calls, stats.rounds
        );
        Ok(out)
    }
}

pub mod sample {
    //! `questpro sample` — draw an example-set from a target query.

    use questpro_engine::sample_example_set;
    use questpro_graph::exformat;
    use questpro_graph::rng::StdRng;

    use crate::args::SampleArgs;
    use crate::commands::io;
    use crate::error::CliError;

    /// Runs the command.
    pub fn run(args: &SampleArgs) -> Result<String, CliError> {
        let ont = io::load_ontology(&args.ontology)?;
        let query = io::load_query(&args.query)?;
        if let Some(value) = &args.result {
            // Compile explanations for one chosen output example (the
            // paper's user flow through the ontology visualizer).
            let node = ont
                .node_by_value(value)
                .ok_or_else(|| CliError::Input(format!("no node with value {value:?}")))?;
            let graphs =
                questpro_engine::provenance_of_union(&ont, &query, node, Some(args.n.max(1)));
            if graphs.is_empty() {
                return Err(CliError::Unsatisfiable(format!(
                    "{value} is not a result of the query (no explanations to compile)"
                )));
            }
            let set: questpro_graph::ExampleSet = graphs
                .into_iter()
                .map(|g| {
                    questpro_graph::Explanation::new(g, node)
                        .expect("a provenance image contains its result")
                })
                .collect();
            return Ok(exformat::serialize_examples(&ont, &set));
        }
        let mut rng = StdRng::seed_from_u64(args.seed);
        let set = sample_example_set(&ont, &query, args.n.max(1), &mut rng, 8);
        if set.is_empty() {
            return Err(CliError::Unsatisfiable(
                "the query has no results to sample from".to_string(),
            ));
        }
        Ok(exformat::serialize_examples(&ont, &set))
    }
}

pub mod session {
    //! `questpro session` — the full pipeline, with either a simulated
    //! oracle (from a `--target` query file) or an interactive user
    //! answering yes/no questions on the terminal.

    use std::fmt::Write as _;
    use std::io::{BufRead, Write};

    use questpro_core::TopKConfig;
    use questpro_engine::evaluate_union;
    use questpro_feedback::{run_session, Oracle, SessionConfig, TargetOracle};
    use questpro_graph::rng::StdRng;
    use questpro_graph::{NodeId, Ontology, Subgraph};

    use crate::args::SessionArgs;
    use crate::commands::io;
    use crate::error::CliError;

    /// An oracle that asks a human: prints the question to `prompt` and
    /// reads `y`/`n` answers from `answers` (empty input counts as no).
    pub struct PromptOracle<'a> {
        answers: &'a mut dyn BufRead,
        prompt: &'a mut dyn Write,
    }

    impl<'a> PromptOracle<'a> {
        /// Creates a prompt-backed oracle.
        pub fn new(answers: &'a mut dyn BufRead, prompt: &'a mut dyn Write) -> Self {
            Self { answers, prompt }
        }
    }

    impl Oracle for PromptOracle<'_> {
        fn accept(&mut self, ont: &Ontology, res: NodeId, provenance: &Subgraph) -> bool {
            let _ = writeln!(
                self.prompt,
                "\nShould {} be in your results? Because:\n{}\n[y/N] ",
                ont.value_str(res),
                provenance.describe(ont)
            );
            let _ = self.prompt.flush();
            let mut line = String::new();
            if self.answers.read_line(&mut line).is_err() {
                return false;
            }
            matches!(line.trim(), "y" | "Y" | "yes" | "Yes")
        }
    }

    /// Runs the command against stdin/stderr for interactive questions.
    pub fn run(args: &SessionArgs) -> Result<String, CliError> {
        let stdin = std::io::stdin();
        let mut answers = stdin.lock();
        let mut prompt = std::io::stderr();
        run_with_io(args, &mut answers, &mut prompt)
    }

    /// Runs the command with explicit question/answer streams (used by
    /// tests; `run` wires stdin/stderr).
    pub fn run_with_io(
        args: &SessionArgs,
        answers: &mut dyn BufRead,
        prompt: &mut dyn Write,
    ) -> Result<String, CliError> {
        let ont = io::load_ontology(&args.ontology)?;
        let examples = io::load_examples(&args.examples, &ont)?;
        let target = args.target.as_deref().map(io::load_query).transpose()?;
        let mut rng = StdRng::seed_from_u64(args.seed);
        let cfg = SessionConfig {
            topk: TopKConfig {
                k: args.k.max(1),
                threads: args.threads.max(1),
                ..Default::default()
            },
            refine: args.refine,
            ..Default::default()
        };
        let result = match &target {
            Some(t) => {
                let mut oracle = TargetOracle::new(t.clone());
                run_session(&ont, &examples, &mut oracle, &mut rng, &cfg)
            }
            None => {
                let mut oracle = PromptOracle::new(answers, prompt);
                run_session(&ont, &examples, &mut oracle, &mut rng, &cfg)
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "# {} candidate(s) inferred", result.candidates.len());
        for rec in &result.selection_transcript {
            let _ = writeln!(
                out,
                "\nquestion: include {}?\n{}\nanswer: {}",
                ont.value_str(rec.result),
                rec.provenance.describe(&ont),
                if rec.answer { "yes" } else { "no" }
            );
        }
        let _ = writeln!(
            out,
            "\n# {} selection question(s), {} refinement question(s)",
            result.selection_transcript.len(),
            result.refinement_questions
        );
        let _ = writeln!(out, "\n{}", result.query);
        if let Some(t) = &target {
            let same = evaluate_union(&ont, &result.query) == evaluate_union(&ont, t);
            let _ = writeln!(
                out,
                "\n# target semantics {}",
                if same {
                    "REACHED"
                } else {
                    "NOT reached (try more examples)"
                }
            );
        }
        Ok(out)
    }
}

pub mod diagnose {
    //! `questpro diagnose` — flag suspect explanations.

    use std::fmt::Write as _;

    use questpro_core::{diagnose_examples, GreedyConfig, Suspicion};

    use crate::args::DiagnoseArgs;
    use crate::commands::io;
    use crate::error::CliError;

    /// Runs the command.
    pub fn run(args: &DiagnoseArgs) -> Result<String, CliError> {
        let ont = io::load_ontology(&args.ontology)?;
        let examples = io::load_examples(&args.examples, &ont)?;
        let diagnoses = diagnose_examples(&ont, &examples, &GreedyConfig::default());
        let mut out = String::new();
        for d in &diagnoses {
            let ex = &examples.explanations()[d.index];
            let _ = writeln!(
                out,
                "explanation {} (dis {}): {:?} — merges with {} other(s){}",
                d.index + 1,
                ont.value_str(ex.distinguished()),
                d.suspicion,
                d.mergeable_with,
                d.best_merge_vars
                    .map(|v| format!(", best merge uses {v} var(s)"))
                    .unwrap_or_default()
            );
        }
        let suspects = diagnoses
            .iter()
            .filter(|d| d.suspicion != Suspicion::Clean)
            .count();
        let _ = writeln!(
            out,
            "\n{} suspect explanation(s) out of {}",
            suspects,
            diagnoses.len()
        );
        Ok(out)
    }
}

pub mod explore {
    //! `questpro explore` — the terminal rendition of the paper's
    //! ontology visualizer: print a node's k-neighborhood so users can
    //! formulate explanation files by hand.

    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    use questpro_graph::NodeId;

    use crate::args::ExploreArgs;
    use crate::commands::io;
    use crate::error::CliError;

    /// Runs the command.
    pub fn run(args: &ExploreArgs) -> Result<String, CliError> {
        let ont = io::load_ontology(&args.ontology)?;
        let start = ont
            .node_by_value(&args.node)
            .ok_or_else(|| CliError::Input(format!("no node with value {:?}", args.node)))?;
        let mut out = String::new();
        let ty = ont
            .node_type(start)
            .map(|t| format!(" ({})", ont.type_str(t)))
            .unwrap_or_default();
        let _ = writeln!(out, "{}{}", args.node, ty);
        let mut frontier: BTreeSet<NodeId> = BTreeSet::from([start]);
        let mut seen = frontier.clone();
        for depth in 1..=args.depth.max(1) {
            let mut next: BTreeSet<NodeId> = BTreeSet::new();
            let mut lines: Vec<String> = Vec::new();
            for &n in &frontier {
                for &e in ont.out_edges(n) {
                    let d = ont.edge(e);
                    lines.push(format!(
                        "  {} -{}-> {}",
                        ont.value_str(d.src),
                        ont.pred_str(d.pred),
                        ont.value_str(d.dst)
                    ));
                    next.insert(d.dst);
                }
                for &e in ont.in_edges(n) {
                    let d = ont.edge(e);
                    lines.push(format!(
                        "  {} -{}-> {}",
                        ont.value_str(d.src),
                        ont.pred_str(d.pred),
                        ont.value_str(d.dst)
                    ));
                    next.insert(d.src);
                }
            }
            lines.sort();
            lines.dedup();
            let _ = writeln!(out, "-- depth {depth} ({} edge(s)) --", lines.len());
            for l in lines {
                let _ = writeln!(out, "{l}");
            }
            next.retain(|n| !seen.contains(n));
            seen.extend(next.iter().copied());
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        Ok(out)
    }
}

pub mod trace {
    //! `questpro trace` — profile one full inference run and print the
    //! recorded span tree plus a per-stage self-time breakdown.
    //!
    //! The pipeline mirrors `questpro session --target`: sample an
    //! example-set from the target query, infer top-k candidates, and
    //! let the simulated oracle answer the selection (and optionally
    //! refinement) questions — all under one enabled trace.

    use std::fmt::Write as _;

    use questpro_core::TopKConfig;
    use questpro_data::{
        bsbm_workload, generate_bsbm, generate_movies, generate_sp2b, movie_workload,
        sp2b_workload, BsbmConfig, MoviesConfig, Sp2bConfig,
    };
    use questpro_engine::sample_example_set;
    use questpro_feedback::{run_session, SessionConfig, TargetOracle};
    use questpro_graph::rng::StdRng;
    use questpro_graph::Ontology;
    use questpro_query::UnionQuery;

    use crate::args::TraceArgs;
    use crate::commands::io;
    use crate::error::CliError;

    /// Resolves the ontology, target query, and trace label from either
    /// a built-in world (+ workload query ID) or a file pair.
    fn load(args: &TraceArgs) -> Result<(Ontology, UnionQuery, String), CliError> {
        if let Some(world) = &args.world {
            let (ont, workload) = match world.as_str() {
                "sp2b" => (
                    generate_sp2b(&Sp2bConfig {
                        seed: args.seed,
                        ..Default::default()
                    }),
                    sp2b_workload(),
                ),
                "bsbm" => (
                    generate_bsbm(&BsbmConfig {
                        seed: args.seed,
                        ..Default::default()
                    }),
                    bsbm_workload(),
                ),
                "movies" => (
                    generate_movies(&MoviesConfig {
                        seed: args.seed,
                        ..Default::default()
                    }),
                    movie_workload(),
                ),
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown world {other:?} (expected sp2b|bsbm|movies)"
                    )))
                }
            };
            let chosen = match &args.query_id {
                Some(id) => workload.into_iter().find(|w| w.id == *id).ok_or_else(|| {
                    CliError::Input(format!("no workload query {id:?} in world {world}"))
                })?,
                None => workload
                    .into_iter()
                    .next()
                    .expect("built-in workloads are non-empty"),
            };
            let label = format!("trace {world}/{}", chosen.id);
            Ok((ont, chosen.query, label))
        } else {
            let (Some(ontology), Some(query)) = (&args.ontology, &args.query) else {
                return Err(CliError::Usage(
                    "trace needs either --world or both --ontology and --query".into(),
                ));
            };
            let ont = io::load_ontology(ontology)?;
            let q = io::load_query(query)?;
            Ok((ont, q, format!("trace {query}")))
        }
    }

    /// Runs the command.
    pub fn run(args: &TraceArgs) -> Result<String, CliError> {
        let (ont, target, label) = load(args)?;
        let chrome = args.chrome.clone();
        questpro_trace::set_enabled(true);
        let trace = questpro_trace::begin(label)
            .ok_or_else(|| CliError::Input("a trace is already active on this thread".into()))?;
        let mut rng = StdRng::seed_from_u64(args.seed);
        let examples = sample_example_set(&ont, &target, args.examples, &mut rng, 8);
        if examples.is_empty() {
            drop(trace);
            return Err(CliError::Unsatisfiable(
                "the target query has no results to sample from".to_string(),
            ));
        }
        let cfg = SessionConfig {
            topk: TopKConfig {
                k: args.k,
                threads: args.threads,
                ..Default::default()
            },
            refine: args.refine,
            ..Default::default()
        };
        let mut oracle = TargetOracle::new(target.clone());
        let result = run_session(&ont, &examples, &mut oracle, &mut rng, &cfg);
        let rec = trace.finish();

        let mut out = rec.render_tree();
        if let Some(path) = &chrome {
            std::fs::write(path, rec.to_chrome_json()).map_err(|e| CliError::io(path, e))?;
            let _ = writeln!(
                out,
                "\nwrote Chrome trace-event JSON to {path} (load in chrome://tracing or Perfetto)"
            );
        }
        let _ = writeln!(out, "\nstage totals (by self time):");
        for (name, calls, ns) in rec.stage_totals() {
            let _ = writeln!(
                out,
                "  {name:<28} {calls:>5} call(s)  {:>10.3} ms",
                ns as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "\n# {} selection question(s), {} refinement question(s); inferred:\n{}",
            result.selection_transcript.len(),
            result.refinement_questions,
            result.query
        );
        Ok(out)
    }
}

pub mod logs {
    //! `questpro logs` — tail and filter a structured JSON-lines event
    //! log (the file written by `questpro serve --log-file`).
    //!
    //! Every line is parsed with the wire-format parser; lines that are
    //! not valid JSON are counted and reported rather than crashing the
    //! tail, so a log truncated mid-write is still readable.

    use std::fmt::Write as _;

    use questpro_log::Level;
    use questpro_wire::Json;

    use crate::args::LogsArgs;
    use crate::error::CliError;

    /// Does one parsed event pass the requested filters?
    fn keep(
        event: &Json,
        min_level: Option<Level>,
        target: Option<&str>,
        trace_id: Option<u64>,
    ) -> bool {
        if let Some(min) = min_level {
            let level = event
                .get("level")
                .and_then(Json::as_str)
                .and_then(Level::parse);
            if level.is_none_or(|l| l < min) {
                return false;
            }
        }
        if let Some(want) = target {
            if event.get("target").and_then(Json::as_str) != Some(want) {
                return false;
            }
        }
        if let Some(id) = trace_id {
            if event.get("trace_id").and_then(Json::as_u64) != Some(id) {
                return false;
            }
        }
        true
    }

    /// Runs the command.
    pub fn run(args: &LogsArgs) -> Result<String, CliError> {
        let min_level = match &args.level {
            None => None,
            Some(s) => Some(Level::parse(s).ok_or_else(|| {
                CliError::Usage(format!(
                    "--level expects trace|debug|info|warn|error, got {s:?}"
                ))
            })?),
        };
        let text = std::fs::read_to_string(&args.file).map_err(|e| CliError::io(&args.file, e))?;
        let mut kept: Vec<&str> = Vec::new();
        let mut malformed = 0usize;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match questpro_wire::parse(line) {
                Ok(ev) if keep(&ev, min_level, args.target.as_deref(), args.trace_id) => {
                    kept.push(line);
                }
                Ok(_) => {}
                Err(_) => malformed += 1,
            }
        }
        let mut out = String::new();
        // Tail semantics: the LAST `limit` matching events, oldest first.
        let matched = kept.len();
        for line in kept.into_iter().skip(matched.saturating_sub(args.limit)) {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(
            out,
            "# {matched} matching event(s){}",
            if malformed > 0 {
                format!(", {malformed} malformed line(s) skipped")
            } else {
                String::new()
            }
        );
        Ok(out)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// Writes `lines` to a unique temp file and returns its path.
        fn log_file(name: &str, lines: &str) -> String {
            let path = std::env::temp_dir().join(format!("questpro-logs-test-{name}.jsonl"));
            std::fs::write(&path, lines).unwrap();
            path.to_string_lossy().into_owned()
        }

        fn event(seq: u64, level: &str, target: &str, trace_id: Option<u64>) -> String {
            let mut pairs = vec![
                ("seq", Json::Num(seq as f64)),
                ("ts_ms", Json::Num(1.0)),
                ("level", Json::str(level)),
                ("target", Json::str(target)),
                ("msg", Json::str("m")),
            ];
            if let Some(id) = trace_id {
                pairs.push(("trace_id", Json::Num(id as f64)));
            }
            Json::obj(pairs).to_text()
        }

        #[test]
        fn filters_by_level_target_and_trace_id() {
            let lines = [
                event(1, "info", "server.access", Some(7)),
                event(2, "warn", "server.slow", Some(7)),
                event(3, "error", "server.panic", Some(9)),
                event(4, "debug", "engine.match", None),
            ]
            .join("\n");
            let file = log_file("filters", &lines);
            let base = LogsArgs {
                file: file.clone(),
                level: None,
                target: None,
                trace_id: None,
                limit: 64,
            };

            let out = run(&base).unwrap();
            assert!(out.contains("# 4 matching event(s)"), "{out}");

            let out = run(&LogsArgs {
                level: Some("warn".into()),
                ..base.clone()
            })
            .unwrap();
            assert!(out.contains("server.slow") && out.contains("server.panic"));
            assert!(!out.contains("server.access"), "{out}");

            let out = run(&LogsArgs {
                target: Some("server.access".into()),
                ..base.clone()
            })
            .unwrap();
            assert!(out.contains("# 1 matching event(s)"), "{out}");

            let out = run(&LogsArgs {
                trace_id: Some(7),
                ..base
            })
            .unwrap();
            assert!(out.contains("# 2 matching event(s)"), "{out}");
            assert!(!out.contains("server.panic"), "{out}");
        }

        #[test]
        fn tails_the_last_limit_events_and_counts_malformed() {
            let mut lines: Vec<String> = (0..10)
                .map(|i| event(i, "info", "server.access", None))
                .collect();
            lines.push("{not json".to_string());
            let file = log_file("tail", &lines.join("\n"));
            let out = run(&LogsArgs {
                file,
                level: None,
                target: None,
                trace_id: None,
                limit: 3,
            })
            .unwrap();
            // Only the last 3 of the 10 matches are printed.
            assert!(!out.contains("\"seq\":6"), "{out}");
            for seq in 7..10 {
                assert!(out.contains(&format!("\"seq\":{seq}")), "{out}");
            }
            assert!(out.contains("# 10 matching event(s), 1 malformed line(s) skipped"));
        }

        #[test]
        fn bad_level_and_missing_file_are_reported() {
            let err = run(&LogsArgs {
                file: "irrelevant".into(),
                level: Some("loud".into()),
                target: None,
                trace_id: None,
                limit: 1,
            })
            .unwrap_err();
            assert!(err.to_string().contains("--level expects"), "{err}");

            let err = run(&LogsArgs {
                file: "/nonexistent/questpro.log".into(),
                level: None,
                target: None,
                trace_id: None,
                limit: 1,
            })
            .unwrap_err();
            assert!(
                err.to_string().contains("/nonexistent/questpro.log"),
                "{err}"
            );
        }
    }
}

pub mod serve {
    //! `questpro serve` — the HTTP/JSON session service.

    use std::net::SocketAddr;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    use questpro_server::{ServerConfig, ServerHandle};

    use crate::args::ServeArgs;
    use crate::error::CliError;

    /// Runs the command: serve until `POST /shutdown` or stdin EOF.
    pub fn run(args: &ServeArgs) -> Result<String, CliError> {
        run_with_ready(args, |addr| {
            eprintln!("questpro-server listening on http://{addr}");
        })
    }

    /// [`run`] with a hook observing the bound address (tests bind
    /// `:0` and need the real port before the call blocks).
    pub fn run_with_ready(
        args: &ServeArgs,
        on_ready: impl FnOnce(SocketAddr),
    ) -> Result<String, CliError> {
        let log_level = match &args.log_level {
            None => questpro_log::Level::Info,
            Some(s) => questpro_log::Level::parse(s).ok_or_else(|| {
                CliError::Usage(format!(
                    "--log-level expects trace|debug|info|warn|error, got {s:?}"
                ))
            })?,
        };
        let handle = questpro_server::start(&ServerConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            queue: args.queue,
            event_loops: args.event_loops,
            max_conns: args.max_conns,
            read_timeout_ms: args.read_timeout_ms,
            threads: args.threads,
            max_sessions: args.max_sessions,
            session_idle_secs: args.idle_secs,
            log_level,
            log_file: args.log_file.clone(),
            slow_query_ms: args.slow_ms,
            stores: args.store.clone().into_iter().collect(),
            ..ServerConfig::default()
        })
        .map_err(|e| CliError::io(&args.addr, e))?;
        let addr = handle.addr();
        on_ready(addr);
        watch_stdin(&handle);
        while !handle.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(50));
        }
        handle.join();
        Ok(format!("server on {addr} shut down cleanly\n"))
    }

    /// An operator closing the pipe (Ctrl-D, or the parent process
    /// exiting) is the local counterpart of `POST /shutdown`. The
    /// watcher thread blocks on a read and is leaked on shutdown-by-
    /// endpoint — acceptable: the process is about to exit.
    ///
    /// Only an interactive stdin is watched: a daemonized
    /// `questpro serve </dev/null &` would otherwise see instant EOF
    /// and shut down before serving anything.
    fn watch_stdin(handle: &ServerHandle) {
        use std::io::IsTerminal;
        if !std::io::stdin().is_terminal() {
            return;
        }
        let flag = std::sync::Arc::clone(&handle.state().shutdown);
        let _ = std::thread::Builder::new()
            .name("questpro-stdin-watch".into())
            .spawn(move || {
                use std::io::BufRead;
                let stdin = std::io::stdin();
                let mut line = String::new();
                loop {
                    line.clear();
                    match stdin.lock().read_line(&mut line) {
                        Ok(0) | Err(_) => break, // EOF or a broken pipe
                        Ok(_) => {}
                    }
                }
                flag.store(true, Ordering::SeqCst);
            });
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::args::ServeArgs;
        use std::io::Write;

        #[test]
        fn serves_until_shutdown_endpoint_fires() {
            let args = ServeArgs {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue: 8,
                event_loops: 1,
                max_conns: 64,
                read_timeout_ms: 5_000,
                threads: 1,
                max_sessions: 4,
                idle_secs: 60,
                log_file: None,
                log_level: None,
                slow_ms: 500,
                store: None,
            };
            let out = run_with_ready(&args, |addr| {
                // Shut the server down from a client thread as soon as
                // it is up; run() then unblocks and reports.
                std::thread::spawn(move || {
                    let mut s = std::net::TcpStream::connect(addr).unwrap();
                    write!(
                        s,
                        "POST /shutdown HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
                    )
                    .unwrap();
                    let _ = std::io::Read::read_to_end(&mut s, &mut Vec::new());
                });
            })
            .unwrap();
            assert!(out.contains("shut down cleanly"));
        }
    }
}

pub mod store {
    //! `questpro store` — build and inspect binary snapshots.
    //!
    //! `build` encodes a world (streamed at `--scale`, or a fixed-size
    //! generator) or a triple-text file into the versioned snapshot
    //! format; `inspect` validates a snapshot's header/section table and
    //! prints its counts without assembling an ontology.

    use std::fmt::Write as _;

    use questpro_data::{scale_stream, ScaleConfig, ScaleItem, ScaleWorld};
    use questpro_store::{decode, encode, snapshot, StoreBuilder, TripleStore};

    use crate::args::{StoreBuildArgs, StoreCommand, StoreInspectArgs};
    use crate::commands::io;
    use crate::error::CliError;

    /// Runs the command.
    pub fn run(cmd: &StoreCommand) -> Result<String, CliError> {
        match cmd {
            StoreCommand::Build(b) => build(b),
            StoreCommand::Inspect(i) => inspect(i),
        }
    }

    /// Builds a [`TripleStore`] by streaming a scale world into the
    /// dictionary encoder — no triple text is ever materialized.
    fn stream_world(world: ScaleWorld, triples: u64, seed: u64) -> Result<TripleStore, CliError> {
        let mut b = StoreBuilder::new();
        for item in scale_stream(&ScaleConfig {
            world,
            triples,
            seed,
        }) {
            match item {
                ScaleItem::Triple { s, p, o } => b.add_triple(&s, &p, &o),
                ScaleItem::Type { node, ty } => {
                    b.add_type(&node, &ty).map_err(CliError::input)?;
                }
            }
        }
        b.build().map_err(CliError::input)
    }

    fn build(args: &StoreBuildArgs) -> Result<String, CliError> {
        let store = if let Some(path) = &args.ontology {
            let ont = io::load_ontology(path)?;
            TripleStore::from_ontology(&ont).map_err(CliError::input)?
        } else {
            let name = args.world.as_deref().unwrap_or_default();
            let world = ScaleWorld::from_name(name).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown world {name:?} (expected erdos|sp2b|bsbm|movies)"
                ))
            })?;
            if args.scale > 0 {
                stream_world(world, args.scale, args.seed)?
            } else {
                // No --scale: encode the world's fixed-size generator.
                let ont = match world {
                    ScaleWorld::Erdos => questpro_data::erdos_ontology(),
                    ScaleWorld::Sp2b => questpro_data::generate_sp2b(&questpro_data::Sp2bConfig {
                        seed: args.seed,
                        ..Default::default()
                    }),
                    ScaleWorld::Bsbm => questpro_data::generate_bsbm(&questpro_data::BsbmConfig {
                        seed: args.seed,
                        ..Default::default()
                    }),
                    ScaleWorld::Movies => {
                        questpro_data::generate_movies(&questpro_data::MoviesConfig {
                            seed: args.seed,
                            ..Default::default()
                        })
                    }
                };
                TripleStore::from_ontology(&ont).map_err(CliError::input)?
            }
        };
        let bytes = encode(&store);
        std::fs::write(&args.out, &bytes).map_err(|e| CliError::io(&args.out, e))?;
        let s = store.stats();
        Ok(format!(
            "wrote {} ({} bytes): {} triple(s), {} node(s), {} pred(s), {} type(s)\n",
            args.out,
            bytes.len(),
            s.triples,
            s.nodes,
            s.preds,
            s.types
        ))
    }

    fn inspect(args: &StoreInspectArgs) -> Result<String, CliError> {
        let bytes = std::fs::read(&args.file).map_err(|e| CliError::io(&args.file, e))?;
        let sections = snapshot::sections(&bytes).map_err(CliError::input)?;
        let store = decode(&bytes).map_err(CliError::input)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: questpro snapshot v{} ({} bytes, checksum ok)",
            args.file,
            snapshot::FORMAT_VERSION,
            bytes.len()
        );
        let _ = writeln!(out, "\nsections:");
        for s in sections {
            let _ = writeln!(
                out,
                "  {:>2}  {:<11} {:>12} byte(s) at {:>8}",
                s.id, s.name, s.len, s.offset
            );
        }
        let st = store.stats();
        let _ = writeln!(
            out,
            "\ncounts: {} triple(s), {} node(s), {} pred(s), {} type(s), \
             {} typed node(s), {} label byte(s)",
            st.triples, st.nodes, st.preds, st.types, st.typed_nodes, st.label_bytes
        );
        Ok(out)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn tmp(name: &str) -> String {
            std::env::temp_dir()
                .join(format!("questpro-store-cmd-{name}"))
                .to_string_lossy()
                .into_owned()
        }

        #[test]
        fn builds_inspects_and_reloads_a_scaled_snapshot() {
            let out = tmp("scaled.qps");
            let msg = build(&StoreBuildArgs {
                world: Some("sp2b".into()),
                scale: 2_000,
                seed: 7,
                ontology: None,
                out: out.clone(),
            })
            .unwrap();
            assert!(msg.contains("triple(s)"), "{msg}");

            let report = inspect(&StoreInspectArgs { file: out.clone() }).unwrap();
            assert!(report.contains("questpro snapshot v1"), "{report}");
            assert!(report.contains("checksum ok"), "{report}");
            for name in ["nodes", "preds", "types", "triples", "pos", "osp"] {
                assert!(report.contains(name), "{report}");
            }

            // Every --ontology flag accepts the snapshot transparently.
            let ont = io::load_ontology(&out).unwrap();
            assert!(ont.edge_count() >= 2_000, "{}", ont.edge_count());
            let _ = std::fs::remove_file(&out);
        }

        #[test]
        fn snapshot_of_text_file_round_trips_the_ontology() {
            let text = tmp("tiny.triples");
            std::fs::write(&text, "a p b\nb p c\n@type a T\n").unwrap();
            let out = tmp("tiny.qps");
            build(&StoreBuildArgs {
                world: None,
                scale: 0,
                seed: 0,
                ontology: Some(text.clone()),
                out: out.clone(),
            })
            .unwrap();
            let ont = io::load_ontology(&out).unwrap();
            assert_eq!(ont.edge_count(), 2);
            assert_eq!(ont.node_count(), 3);
            let a = ont.node_by_value("a").unwrap();
            assert_eq!(ont.type_str(ont.node_type(a).unwrap()), "T");
            let _ = std::fs::remove_file(&text);
            let _ = std::fs::remove_file(&out);
        }

        #[test]
        fn corrupted_snapshot_is_a_named_error() {
            let out = tmp("corrupt.qps");
            build(&StoreBuildArgs {
                world: Some("erdos".into()),
                scale: 0,
                seed: 0,
                ontology: None,
                out: out.clone(),
            })
            .unwrap();
            let mut bytes = std::fs::read(&out).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            std::fs::write(&out, &bytes).unwrap();
            let err = inspect(&StoreInspectArgs { file: out.clone() }).unwrap_err();
            // The last byte lands in the osp permutation, validated
            // structurally rather than by checksum (the checksum stops
            // at the pos section); either named rejection counts.
            let msg = err.to_string();
            assert!(
                msg.contains("checksum mismatch") || msg.contains("bad osp section"),
                "{msg}"
            );
            let _ = std::fs::remove_file(&out);
        }

        #[test]
        fn unknown_world_is_a_usage_error() {
            let err = build(&StoreBuildArgs {
                world: Some("atlantis".into()),
                scale: 0,
                seed: 0,
                ontology: None,
                out: tmp("never.qps"),
            })
            .unwrap_err();
            assert!(err.to_string().contains("unknown world"), "{err}");
        }
    }
}

pub mod fuzz {
    //! `questpro fuzz` — deterministic fuzzing of every input parser.

    use std::fmt::Write as _;

    use questpro_fuzz::{run_all, run_surface, FuzzConfig, Surface};

    use crate::args::FuzzArgs;
    use crate::error::CliError;

    /// Runs the command: fuzz the selected surface(s) and report.
    ///
    /// A clean run returns the per-surface summary lines; any panic or
    /// oracle violation becomes a [`CliError::Input`] carrying the full
    /// report (reproducers included), so scripts and CI fail on it.
    pub fn run(args: &FuzzArgs) -> Result<String, CliError> {
        let cfg = FuzzConfig {
            seed: args.seed,
            iters: args.iters,
            ..FuzzConfig::default()
        };
        let reports = match &args.surface {
            Some(name) => {
                let surface = Surface::from_name(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown surface {name:?}; expected wire, sparql, triples, http, or store"
                    ))
                })?;
                vec![run_surface(surface, &cfg)]
            }
            None => run_all(&cfg),
        };
        let mut out = String::new();
        for report in &reports {
            let _ = write!(out, "{report}");
        }
        if reports.iter().all(|r| r.clean()) {
            Ok(out)
        } else {
            Err(CliError::Input(format!(
                "fuzzing found failures (replay with --seed {}):\n{out}",
                args.seed
            )))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn args(surface: Option<&str>, all: bool) -> FuzzArgs {
            FuzzArgs {
                surface: surface.map(String::from),
                all,
                seed: 4,
                iters: 50,
            }
        }

        #[test]
        fn single_surface_runs_clean() {
            let out = run(&args(Some("wire"), false)).unwrap();
            assert!(out.contains("surface wire: 50 iters, 0 panics, 0 violations"));
        }

        #[test]
        fn all_surfaces_run_clean() {
            let out = run(&args(None, true)).unwrap();
            for name in ["wire", "sparql", "triples", "http", "store", "update"] {
                assert!(out.contains(&format!("surface {name}:")), "{out}");
            }
        }

        #[test]
        fn unknown_surface_is_a_usage_error() {
            let err = run(&args(Some("nope"), false)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)));
        }
    }
}

pub mod top {
    //! `questpro top` — a live terminal dashboard over a running
    //! server's `/metrics` scrape.
    //!
    //! The dashboard is a pure function of two consecutive scrapes
    //! (rates come from counter diffs, latency quantiles from the
    //! cumulative log2 histogram buckets), so everything below the
    //! polling loop is unit-testable on canned scrape text. Live mode
    //! redraws with plain ANSI (clear + home) every `--interval-ms` and
    //! exits cleanly when the server goes away; `--once` prints a
    //! single snapshot without touching the terminal state.

    use std::collections::HashMap;
    use std::fmt::Write as _;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    use crate::args::TopArgs;
    use crate::error::CliError;

    /// One parsed `/metrics` scrape: every sample keyed by its full
    /// series name (family plus rendered label set).
    struct Scrape {
        series: HashMap<String, f64>,
    }

    impl Scrape {
        /// Parses Prometheus text exposition: `name{labels} value`
        /// lines, comments skipped. Unparsable values are dropped
        /// rather than failing the whole scrape.
        fn parse(text: &str) -> Self {
            let mut series = HashMap::new();
            for line in text.lines() {
                if line.starts_with('#') || line.trim().is_empty() {
                    continue;
                }
                if let Some((key, value)) = line.rsplit_once(' ') {
                    if let Ok(v) = value.parse::<f64>() {
                        series.insert(key.to_string(), v);
                    }
                }
            }
            Self { series }
        }

        /// Value of one exact series, 0 when absent.
        fn get(&self, key: &str) -> f64 {
            self.series.get(key).copied().unwrap_or(0.0)
        }

        /// Sums every series of `family` (all label combinations).
        fn sum(&self, family: &str) -> f64 {
            let braced = format!("{family}{{");
            self.series
                .iter()
                .filter(|(k, _)| *k == family || k.starts_with(&braced))
                .map(|(_, v)| v)
                .sum()
        }

        /// Cumulative histogram points `(le, count)` for one labeled
        /// family, sorted by bound; `+Inf` maps to `f64::INFINITY`.
        fn buckets(&self, family: &str, selector: &str) -> Vec<(f64, f64)> {
            let prefix = format!("{family}_bucket{{");
            let mut points: Vec<(f64, f64)> = self
                .series
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix) && k.contains(selector))
                .filter_map(|(k, &v)| {
                    let le = k.split("le=\"").nth(1)?.split('"').next()?;
                    let le = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse().ok()?
                    };
                    Some((le, v))
                })
                .collect();
            points.sort_by(|a, b| a.0.total_cmp(&b.0));
            points
        }

        /// Every distinct value of `label` across one family's
        /// `_count` series (used to enumerate routes from the scrape
        /// itself, so the dashboard needs no route table of its own).
        fn label_values(&self, family: &str, label: &str) -> Vec<String> {
            let prefix = format!("{family}_count{{{label}=\"");
            let mut values: Vec<String> = self
                .series
                .keys()
                .filter_map(|k| k.strip_prefix(&prefix))
                .filter_map(|rest| rest.split('"').next())
                .map(String::from)
                .collect();
            values.sort();
            values
        }
    }

    /// Quantile of a cumulative histogram by linear interpolation
    /// within the owning bucket (the `histogram_quantile` rule). An
    /// empty histogram yields `None`; a quantile landing in the `+Inf`
    /// bucket reports the last finite bound.
    fn quantile(points: &[(f64, f64)], q: f64) -> Option<f64> {
        let count = points.last().map(|&(_, c)| c)?;
        if count <= 0.0 {
            return None;
        }
        let target = q * count;
        let mut lower_bound = 0.0;
        let mut lower_count = 0.0;
        for &(le, cum) in points {
            if cum >= target {
                if le.is_infinite() {
                    return Some(lower_bound);
                }
                let span = cum - lower_count;
                let frac = if span > 0.0 {
                    (target - lower_count) / span
                } else {
                    1.0
                };
                return Some(lower_bound + frac * (le - lower_bound));
            }
            lower_bound = le;
            lower_count = cum;
        }
        points.iter().rev().find(|p| p.0.is_finite()).map(|p| p.0)
    }

    /// Formats nanoseconds at human scale (`870ns`, `13.1µs`, `2.4ms`,
    /// `1.7s`).
    fn fmt_ns(ns: f64) -> String {
        if ns < 1_000.0 {
            format!("{ns:.0}ns")
        } else if ns < 1_000_000.0 {
            format!("{:.1}µs", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            format!("{:.1}ms", ns / 1_000_000.0)
        } else {
            format!("{:.2}s", ns / 1_000_000_000.0)
        }
    }

    /// `hits/lookups` as a percentage, `-` when nothing was looked up.
    fn hit_rate(hits: f64, lookups: f64) -> String {
        if lookups <= 0.0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * hits / lookups)
        }
    }

    /// The three quantiles of one labeled histogram as one cell each.
    fn quantile_cells(scrape: &Scrape, family: &str, selector: &str) -> [String; 3] {
        let points = scrape.buckets(family, selector);
        [0.50, 0.95, 0.99].map(|q| quantile(&points, q).map_or_else(|| "-".to_string(), fmt_ns))
    }

    /// Renders one dashboard frame. `prev` (with the elapsed seconds
    /// since it) turns monotonic counters into rates; without it the
    /// rate column shows `-`.
    fn render(addr: &str, prev: Option<(&Scrape, f64)>, cur: &Scrape) -> String {
        let mut out = String::new();
        let rate = |family: &str| -> String {
            match prev {
                Some((p, secs)) if secs > 0.0 => {
                    format!("{:.1}/s", (cur.sum(family) - p.sum(family)).max(0.0) / secs)
                }
                _ => "-".to_string(),
            }
        };
        let _ = writeln!(out, "questpro top — {addr}");
        let _ = writeln!(
            out,
            "\ntraffic   requests {:>10}   rps {:>9}   open conns {:>5}   sessions live {:>4}",
            cur.get("questpro_http_requests_total"),
            rate("questpro_http_requests_total"),
            cur.get("questpro_http_connections_open"),
            cur.get("questpro_sessions_live"),
        );
        let _ = writeln!(
            out,
            "status    2xx {:>10}   4xx {:>8}   5xx {:>8}   overload {:>6}   timeouts {:>6}",
            cur.get("questpro_http_responses_2xx_total"),
            cur.get("questpro_http_responses_4xx_total"),
            cur.get("questpro_http_responses_5xx_total"),
            cur.get("questpro_http_overload_rejections_total"),
            cur.get("questpro_http_request_timeouts_total"),
        );

        let _ = writeln!(
            out,
            "\nroutes                          count        p50        p95        p99"
        );
        let mut routes: Vec<(String, f64)> = cur
            .label_values("questpro_route_duration_ns", "route")
            .into_iter()
            .map(|r| {
                let count = cur.get(&format!(
                    "questpro_route_duration_ns_count{{route=\"{r}\"}}"
                ));
                (r, count)
            })
            .filter(|(_, c)| *c > 0.0)
            .collect();
        routes.sort_by(|a, b| b.1.total_cmp(&a.1));
        if routes.is_empty() {
            let _ = writeln!(out, "  (no requests served yet)");
        }
        for (route, count) in routes.iter().take(10) {
            let [p50, p95, p99] = quantile_cells(
                cur,
                "questpro_route_duration_ns",
                &format!("route=\"{route}\""),
            );
            let _ = writeln!(
                out,
                "  {route:<28} {count:>7} {p50:>10} {p95:>10} {p99:>10}"
            );
        }

        let _ = writeln!(
            out,
            "\nsessions  outcome     finished  questions   rounds p50/p95/p99      wall p95"
        );
        for outcome in ["converged", "abandoned", "evicted"] {
            let selector = format!("outcome=\"{outcome}\"");
            let finished = cur.get(&format!("questpro_session_outcomes_total{{{selector}}}"));
            let questions = cur.get(&format!("questpro_session_questions_total{{{selector}}}"));
            let rounds = cur.buckets("questpro_session_rounds", &selector);
            let rq = [0.50, 0.95, 0.99].map(|q| {
                quantile(&rounds, q).map_or_else(|| "-".to_string(), |v| format!("{v:.1}"))
            });
            let wall = quantile(
                &cur.buckets("questpro_session_duration_ns", &selector),
                0.95,
            )
            .map_or_else(|| "-".to_string(), fmt_ns);
            let _ = writeln!(
                out,
                "          {outcome:<10} {finished:>8} {questions:>10}   {:>17} {wall:>13}",
                rq.join("/")
            );
        }

        let session_merge_hits = cur.sum("questpro_session_merge_hits_total");
        let session_merge_lookups = cur.sum("questpro_session_merge_lookups_total");
        let _ = writeln!(
            out,
            "\ncaches    consistency hit {:>7}   session merge hit {:>7}",
            hit_rate(
                cur.get("questpro_consistency_hits_total"),
                cur.get("questpro_consistency_lookups_total"),
            ),
            hit_rate(session_merge_hits, session_merge_lookups),
        );
        let _ = writeln!(
            out,
            "telemetry records {:>8} (dropped {})   keys {:>3}   traces {:>5} held/{} dropped\n\
             log       emitted {:>8}   drained {:>8}   dropped {:>6}   retained {:>6}",
            cur.get("questpro_session_records_total"),
            cur.get("questpro_session_records_dropped_total"),
            cur.get("questpro_session_keys_live"),
            cur.get("questpro_traces_retained"),
            cur.get("questpro_traces_dropped_total"),
            cur.get("questpro_log_events_total"),
            cur.get("questpro_log_drained_total"),
            cur.get("questpro_log_dropped_total"),
            cur.get("questpro_log_retained"),
        );
        out
    }

    /// Fetches `/metrics` from `addr` over a fresh connection.
    fn fetch(addr: &str) -> Result<Scrape, CliError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| CliError::io(addr, e))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| CliError::io(addr, e))?;
        write!(
            stream,
            "GET /metrics HTTP/1.1\r\nHost: top\r\nConnection: close\r\n\r\n"
        )
        .map_err(|e| CliError::io(addr, e))?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| CliError::io(addr, e))?;
        let status = line.split_whitespace().nth(1).unwrap_or("");
        if status != "200" {
            return Err(CliError::Input(format!(
                "{addr} answered {} to GET /metrics",
                status.trim()
            )));
        }
        let mut content_length = 0usize;
        loop {
            line.clear();
            reader
                .read_line(&mut line)
                .map_err(|e| CliError::io(addr, e))?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some(v) = trimmed
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v
                    .parse()
                    .map_err(|_| CliError::Input(format!("{addr}: bad content-length")))?;
            }
        }
        let mut body = vec![0u8; content_length];
        reader
            .read_exact(&mut body)
            .map_err(|e| CliError::io(addr, e))?;
        let text = String::from_utf8(body)
            .map_err(|_| CliError::Input(format!("{addr}: non-UTF-8 scrape")))?;
        Ok(Scrape::parse(&text))
    }

    /// Runs the command. `--once` returns a single frame; live mode
    /// redraws until the server becomes unreachable (the first scrape
    /// must succeed so a wrong address still fails loudly).
    pub fn run(args: &TopArgs) -> Result<String, CliError> {
        let first = fetch(&args.addr)?;
        if args.once {
            return Ok(render(&args.addr, None, &first));
        }
        let interval = Duration::from_millis(args.interval_ms);
        let mut prev = first;
        let mut stdout = std::io::stdout();
        let _ = write!(stdout, "\x1b[2J\x1b[H{}", render(&args.addr, None, &prev));
        let _ = stdout.flush();
        loop {
            std::thread::sleep(interval);
            let Ok(cur) = fetch(&args.addr) else {
                return Ok(format!("\nserver at {} is gone; exiting\n", args.addr));
            };
            let elapsed = interval.as_secs_f64();
            let frame = render(&args.addr, Some((&prev, elapsed)), &cur);
            let _ = write!(stdout, "\x1b[2J\x1b[H{frame}");
            let _ = stdout.flush();
            prev = cur;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn hist(family: &str, label: &str, counts: &[(u64, u64)], total: u64) -> String {
            let mut out = String::new();
            for (le, cum) in counts {
                let _ = writeln!(out, "{family}_bucket{{{label},le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{family}_bucket{{{label},le=\"+Inf\"}} {total}");
            let _ = writeln!(out, "{family}_sum{{{label}}} 0");
            let _ = writeln!(out, "{family}_count{{{label}}} {total}");
            out
        }

        #[test]
        fn quantiles_interpolate_within_the_owning_bucket() {
            // 10 samples: 5 at ≤1024, all 10 at ≤2048.
            let points = vec![(1024.0, 5.0), (2048.0, 10.0), (f64::INFINITY, 10.0)];
            assert_eq!(quantile(&points, 0.5), Some(1024.0));
            let p99 = quantile(&points, 0.99).unwrap();
            assert!((2027.0..=2048.0).contains(&p99), "{p99}");
            // Everything in the overflow bucket reports the last
            // finite bound rather than infinity.
            let overflow = vec![(1024.0, 0.0), (f64::INFINITY, 3.0)];
            assert_eq!(quantile(&overflow, 0.95), Some(1024.0));
            assert_eq!(quantile(&[], 0.5), None);
            assert_eq!(quantile(&[(1024.0, 0.0), (f64::INFINITY, 0.0)], 0.5), None);
        }

        #[test]
        fn renders_a_frame_from_canned_scrape_text() {
            let mut scrape = String::from(
                "# HELP questpro_http_requests_total Requests.\n\
                 # TYPE questpro_http_requests_total counter\n\
                 questpro_http_requests_total 120\n\
                 questpro_http_responses_2xx_total 100\n\
                 questpro_http_connections_open 3\n\
                 questpro_sessions_live 2\n\
                 questpro_session_outcomes_total{outcome=\"converged\"} 4\n\
                 questpro_session_outcomes_total{outcome=\"abandoned\"} 1\n\
                 questpro_session_outcomes_total{outcome=\"evicted\"} 0\n\
                 questpro_session_questions_total{outcome=\"converged\"} 12\n\
                 questpro_consistency_lookups_total 200\n\
                 questpro_consistency_hits_total 150\n\
                 questpro_session_merge_lookups_total{outcome=\"converged\"} 40\n\
                 questpro_session_merge_hits_total{outcome=\"converged\"} 10\n\
                 questpro_session_records_total 5\n",
            );
            scrape.push_str(&hist(
                "questpro_route_duration_ns",
                "route=\"GET /healthz\"",
                &[(1024, 90), (2048, 100)],
                100,
            ));
            scrape.push_str(&hist(
                "questpro_session_rounds",
                "outcome=\"converged\"",
                &[(1, 0), (2, 1), (4, 4)],
                4,
            ));
            let cur = Scrape::parse(&scrape);

            let frame = render("127.0.0.1:7474", None, &cur);
            assert!(frame.contains("questpro top — 127.0.0.1:7474"), "{frame}");
            assert!(frame.contains("GET /healthz"), "{frame}");
            assert!(frame.contains("converged"), "{frame}");
            assert!(frame.contains("75.0%"), "consistency hit rate: {frame}");
            assert!(frame.contains("25.0%"), "merge hit rate: {frame}");
            // No previous sample: the rate column is a placeholder.
            assert!(frame.contains("rps         -"), "{frame}");

            // With a 2s-older scrape at 100 requests, rps = 10.0.
            let old = Scrape::parse("questpro_http_requests_total 100\n");
            let frame = render("127.0.0.1:7474", Some((&old, 2.0)), &cur);
            assert!(frame.contains("10.0/s"), "{frame}");
        }

        #[test]
        fn once_mode_snapshots_a_live_server() {
            let server = questpro_server::start(&questpro_server::ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue: 8,
                ..questpro_server::ServerConfig::default()
            })
            .expect("an ephemeral server");
            let addr = server.addr().to_string();
            // One request so the route table is non-empty.
            let _ = fetch(&addr).unwrap();
            let out = run(&TopArgs {
                addr: addr.clone(),
                interval_ms: 1_000,
                once: true,
            })
            .unwrap();
            assert!(out.contains(&format!("questpro top — {addr}")), "{out}");
            assert!(out.contains("GET /metrics"), "{out}");
            assert!(out.contains("telemetry records"), "{out}");
            server.join();
        }

        #[test]
        fn unreachable_server_is_a_named_error() {
            // A port from the ephemeral range with nothing bound.
            let err = run(&TopArgs {
                addr: "127.0.0.1:1".into(),
                interval_ms: 1_000,
                once: true,
            })
            .unwrap_err();
            assert!(err.to_string().contains("127.0.0.1:1"), "{err}");
        }
    }
}

pub mod update {
    //! `questpro update` — apply a batched triple update to a binary
    //! snapshot, copy-on-write.
    //!
    //! The batch file is the same JSON shape the server's
    //! `POST /ontologies/:name/update` endpoint accepts
    //! (`{"insert": [[s,p,o]...], "delete": [...]}`), so a batch can be
    //! rehearsed offline against a snapshot and then replayed against a
    //! live server — or vice versa. The incremental apply is guaranteed
    //! byte-identical to rebuilding the snapshot from scratch, and the
    //! input file is never touched until the new snapshot is fully
    //! encoded, so `--out` may safely equal `--store`.

    use questpro_store::{decode, encode};

    use crate::args::UpdateArgs;
    use crate::error::CliError;

    /// Runs the command.
    pub fn run(args: &UpdateArgs) -> Result<String, CliError> {
        let bytes = std::fs::read(&args.store).map_err(|e| CliError::io(&args.store, e))?;
        let store = decode(&bytes).map_err(CliError::input)?;
        let text =
            std::fs::read_to_string(&args.batch).map_err(|e| CliError::io(&args.batch, e))?;
        let body = questpro_wire::parse(&text)
            .map_err(|e| CliError::Input(format!("{}: invalid JSON: {e}", args.batch)))?;
        let delta = questpro_wire::update::parse_update(&body)
            .map_err(|e| CliError::Input(format!("{}: {e}", args.batch)))?;
        let updated = store.apply_update(&delta).map_err(CliError::input)?;
        let out_bytes = encode(&updated);
        std::fs::write(&args.out, &out_bytes).map_err(|e| CliError::io(&args.out, e))?;
        let s = updated.stats();
        Ok(format!(
            "applied {} insert(s), {} delete(s); wrote {} ({} bytes): \
             {} triple(s), {} node(s), {} pred(s)\n",
            delta.inserts.len(),
            delta.deletes.len(),
            args.out,
            out_bytes.len(),
            s.triples,
            s.nodes,
            s.preds
        ))
    }

    #[cfg(test)]
    mod tests {
        use questpro_store::{decode, encode, TripleStore};

        use super::*;

        fn tmp(name: &str) -> String {
            let dir = std::env::temp_dir().join(format!("questpro-update-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            dir.join(name).to_string_lossy().into_owned()
        }

        fn seed_snapshot(path: &str) {
            let ont = questpro_graph::triples::parse("a knows b\nb knows c\n").unwrap();
            let store = TripleStore::from_ontology(&ont).unwrap();
            std::fs::write(path, encode(&store)).unwrap();
        }

        #[test]
        fn updates_a_snapshot_in_place_and_matches_a_scratch_build() {
            let store_path = tmp("world.qps");
            let batch_path = tmp("batch.json");
            seed_snapshot(&store_path);
            std::fs::write(
                &batch_path,
                r#"{"insert": [["c", "knows", "a"]], "delete": [["a", "knows", "b"]]}"#,
            )
            .unwrap();
            let out = run(&UpdateArgs {
                store: store_path.clone(),
                batch: batch_path,
                out: store_path.clone(),
            })
            .unwrap();
            assert!(out.contains("applied 1 insert(s), 1 delete(s)"), "{out}");

            // The in-place result is byte-identical to building the
            // post-update world from scratch.
            let want = encode(
                &TripleStore::from_ontology(
                    &questpro_graph::triples::parse("b knows c\nc knows a\n").unwrap(),
                )
                .unwrap(),
            );
            let got = std::fs::read(&store_path).unwrap();
            assert_eq!(got, want, "incremental and scratch snapshots diverge");
            assert_eq!(decode(&got).unwrap().stats().triples, 2);
        }

        #[test]
        fn rejected_batches_leave_the_input_untouched() {
            let store_path = tmp("keep.qps");
            let batch_path = tmp("bad.json");
            seed_snapshot(&store_path);
            let before = std::fs::read(&store_path).unwrap();
            for (bad, needle) in [
                (r#"{"delete": [["x", "y", "z"]]}"#, "no such triple"),
                (r#"{}"#, "update batch is empty"),
                (r#"{"insert": [["a", "b"]]}"#, "exactly 3"),
                ("not json", "invalid JSON"),
            ] {
                std::fs::write(&batch_path, bad).unwrap();
                let err = run(&UpdateArgs {
                    store: store_path.clone(),
                    batch: batch_path.clone(),
                    out: store_path.clone(),
                })
                .unwrap_err()
                .to_string();
                assert!(err.contains(needle), "{bad}: {err}");
                assert_eq!(
                    std::fs::read(&store_path).unwrap(),
                    before,
                    "a rejected batch must not touch the snapshot"
                );
            }
        }

        #[test]
        fn missing_files_carry_their_paths() {
            let err = run(&UpdateArgs {
                store: "/no/such/file.qps".into(),
                batch: "/no/such/batch.json".into(),
                out: "/no/such/out.qps".into(),
            })
            .unwrap_err()
            .to_string();
            assert!(err.contains("/no/such/file.qps"), "{err}");
        }
    }
}
