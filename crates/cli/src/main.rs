//! The `questpro` binary: parse argv, dispatch, print, exit.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match questpro_cli::args::parse(&argv).and_then(questpro_cli::run) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
