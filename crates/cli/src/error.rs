//! CLI error type: every failure a command can report.

use std::fmt;

/// Errors surfaced to the CLI user with a non-zero exit code.
#[derive(Debug)]
pub enum CliError {
    /// Command-line arguments were malformed; includes usage help.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// An ontology / example / query file failed to parse or validate.
    Input(String),
    /// The request is well-formed but unsatisfiable (e.g. no consistent
    /// query exists for the example-set).
    Unsatisfiable(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io { path, source } => write!(f, "io error on {path}: {source}"),
            CliError::Input(msg) => write!(f, "input error: {msg}"),
            CliError::Unsatisfiable(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Wraps an io error with its path.
    pub fn io(path: &str, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.to_string(),
            source,
        }
    }

    /// Wraps any displayable parse/validation error.
    pub fn input(e: impl fmt::Display) -> Self {
        CliError::Input(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("bad flag".into())
            .to_string()
            .contains("bad flag"));
        assert!(CliError::input("oops").to_string().contains("oops"));
        let e = CliError::io(
            "x.triples",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("x.triples"));
    }
}
