//! End-to-end CLI flow: generate → sample → infer → eval → session,
//! exercising the command functions on real files in a temp directory.

use std::path::PathBuf;

use questpro_cli::args::{parse, Command};
use questpro_cli::run;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("questpro-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cmd(parts: &[&str]) -> Command {
    let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    parse(&argv).expect("arguments parse")
}

#[test]
fn full_pipeline_through_the_cli() {
    let tmp = TempDir::new("pipeline");
    let world = tmp.path("world.triples");
    let query = tmp.path("target.sparql");
    let examples = tmp.path("examples.txt");

    // generate
    let out = run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    assert!(out.contains("nodes"));

    // hand-write the target query: co-authors of Erdos.
    std::fs::write(&query, "SELECT ?x WHERE { ?p :wb ?x . ?p :wb :Erdos . }\n")
        .expect("write query");

    // sample explanations from the target
    let sampled = run(cmd(&[
        "sample",
        "--ontology",
        &world,
        "--query",
        &query,
        "-n",
        "3",
        "--seed",
        "5",
    ]))
    .expect("sample");
    assert!(sampled.contains("dis "));
    std::fs::write(&examples, &sampled).expect("write examples");

    // infer from the sampled explanations
    let inferred = run(cmd(&[
        "infer",
        "--ontology",
        &world,
        "--examples",
        &examples,
        "--k",
        "3",
        "--diseqs",
    ]))
    .expect("infer");
    assert!(inferred.contains("SELECT ?"));
    assert!(inferred.contains("candidate 1"));

    // eval the target with provenance for a known result
    let eval = run(cmd(&[
        "eval",
        "--ontology",
        &world,
        "--query",
        &query,
        "--provenance",
        "Carol",
    ]))
    .expect("eval");
    assert!(eval.contains("result(s):"));
    assert!(eval.contains("provenance of Carol"));
    assert!(eval.contains("paper3 -wb-> Carol"));

    // full session with the target as oracle
    let session = run(cmd(&[
        "session",
        "--ontology",
        &world,
        "--examples",
        &examples,
        "--target",
        &query,
        "--refine",
    ]))
    .expect("session");
    assert!(session.contains("target semantics REACHED"), "{session}");
}

#[test]
fn eval_reports_non_results() {
    let tmp = TempDir::new("nonresult");
    let world = tmp.path("world.triples");
    let query = tmp.path("q.sparql");
    run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    std::fs::write(&query, "SELECT ?x WHERE { ?p :wb ?x . ?p :wb :Erdos . }").unwrap();
    let err = run(cmd(&[
        "eval",
        "--ontology",
        &world,
        "--query",
        &query,
        "--provenance",
        "paper1",
    ]))
    .expect_err("paper1 is not a result");
    assert!(err.to_string().contains("not a result"));
}

#[test]
fn missing_files_are_reported_with_paths() {
    let err = run(cmd(&[
        "eval",
        "--ontology",
        "/nonexistent/world.triples",
        "--query",
        "whatever.sparql",
    ]))
    .expect_err("missing ontology");
    assert!(err.to_string().contains("/nonexistent/world.triples"));
}

#[test]
fn malformed_examples_are_reported() {
    let tmp = TempDir::new("badex");
    let world = tmp.path("world.triples");
    let examples = tmp.path("bad.txt");
    run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    std::fs::write(&examples, "paper1 wb Alice\n").unwrap();
    let err = run(cmd(&[
        "infer",
        "--ontology",
        &world,
        "--examples",
        &examples,
    ]))
    .expect_err("edges before dis line");
    assert!(err.to_string().contains("dis"));
}

#[test]
fn unmergeable_examples_still_yield_a_union() {
    // Explanations with different predicate sets cannot merge into one
    // simple query, but the trivial union is always consistent — infer
    // must succeed with separate branches.
    let tmp = TempDir::new("unmergeable");
    let world = tmp.path("world.triples");
    std::fs::write(&world, "a p b\nc q d\n").unwrap();
    let examples = tmp.path("ex.txt");
    std::fs::write(&examples, "dis b\na p b\n\ndis d\nc q d\n").unwrap();
    let out = run(cmd(&[
        "infer",
        "--ontology",
        &world,
        "--examples",
        &examples,
    ]))
    .expect("trivial union works");
    assert!(out.contains("UNION"));
}

#[test]
fn diagnose_flags_suspect_blocks() {
    let tmp = TempDir::new("diagnose");
    let world = tmp.path("world.triples");
    let examples = tmp.path("ex.txt");
    run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    // Two clean co-author explanations plus one bare-node suspect.
    std::fs::write(
        &examples,
        "dis Carol\npaper3 wb Carol\npaper3 wb Erdos\n\n\
         dis Dave\npaper4 wb Dave\npaper4 wb Erdos\n\n\
         dis Solo\n",
    )
    .unwrap();
    let out = run(cmd(&[
        "diagnose",
        "--ontology",
        &world,
        "--examples",
        &examples,
    ]))
    .expect("diagnose");
    assert!(out.contains("ShapeMismatch"), "{out}");
    assert!(out.contains("1 suspect explanation(s) out of 3"), "{out}");
}

#[test]
fn interactive_session_reads_answers_from_the_stream() {
    use questpro_cli::args::SessionArgs;
    use questpro_cli::commands::session::run_with_io;
    use std::io::Cursor;

    let tmp = TempDir::new("interactive");
    let world = tmp.path("world.triples");
    let examples = tmp.path("ex.txt");
    run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    std::fs::write(
        &examples,
        "dis Carol\npaper3 wb Carol\npaper3 wb Erdos\n\n\
         dis Dave\npaper4 wb Dave\npaper4 wb Erdos\n",
    )
    .unwrap();
    let args = SessionArgs {
        ontology: world,
        examples,
        target: None,
        k: 3,
        seed: 7,
        refine: true,
        threads: 2,
    };
    // Answer "no" to everything: the most specific surviving candidate
    // wins and all questions are consumed from the stream.
    let mut answers = Cursor::new(b"n\nn\nn\nn\nn\nn\nn\nn\n".to_vec());
    let mut prompt = Vec::new();
    let out = run_with_io(&args, &mut answers, &mut prompt).expect("interactive session");
    assert!(out.contains("candidate(s) inferred"), "{out}");
    assert!(out.contains("SELECT ?"), "{out}");
    // No target ⇒ no target-semantics verdict line.
    assert!(!out.contains("target semantics"));
    let prompt_text = String::from_utf8(prompt).unwrap();
    if out.contains("question:") {
        assert!(prompt_text.contains("[y/N]"), "{prompt_text}");
    }
}

#[test]
fn eval_prints_provenance_polynomials() {
    let tmp = TempDir::new("poly");
    let world = tmp.path("world.triples");
    let query = tmp.path("q.sparql");
    run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    std::fs::write(&query, "SELECT ?x WHERE { ?p :wb ?x . ?p :wb :Erdos . }").unwrap();
    let out = run(cmd(&[
        "eval",
        "--ontology",
        &world,
        "--query",
        &query,
        "--provenance",
        "Carol",
        "--polynomial",
    ]))
    .expect("eval with polynomial");
    assert!(out.contains("provenance polynomial of Carol"), "{out}");
    assert!(out.contains("paper3 -wb-> Carol"), "{out}");
    assert!(out.contains(" · "), "{out}");
}

#[test]
fn explore_shows_the_neighborhood() {
    let tmp = TempDir::new("explore");
    let world = tmp.path("world.triples");
    run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    let out = run(cmd(&[
        "explore",
        "--ontology",
        &world,
        "--node",
        "Carol",
        "--depth",
        "2",
    ]))
    .expect("explore");
    assert!(out.starts_with("Carol (Author)"), "{out}");
    assert!(out.contains("-- depth 1"), "{out}");
    assert!(out.contains("paper3 -wb-> Carol"), "{out}");
    // Depth 2 expands Carol's papers to her co-authors.
    assert!(out.contains("-- depth 2"), "{out}");
    assert!(out.contains("paper3 -wb-> Erdos"), "{out}");
    assert!(out.contains("paper2 -wb-> Bob"), "{out}");
}

#[test]
fn sample_result_compiles_explanations_for_one_example() {
    let tmp = TempDir::new("sampleresult");
    let world = tmp.path("world.triples");
    let query = tmp.path("q.sparql");
    run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    std::fs::write(&query, "SELECT ?x WHERE { ?p :wb ?x . ?p :wb :Erdos . }").unwrap();
    let out = run(cmd(&[
        "sample",
        "--ontology",
        &world,
        "--query",
        &query,
        "--result",
        "Carol",
        "-n",
        "4",
    ]))
    .expect("sample --result");
    assert!(out.contains("dis Carol"), "{out}");
    assert!(out.contains("paper3 wb Carol"), "{out}");
    // A non-result is reported cleanly.
    let err = run(cmd(&[
        "sample",
        "--ontology",
        &world,
        "--query",
        &query,
        "--result",
        "Solo",
    ]))
    .expect_err("Solo is not a co-author of Erdos");
    assert!(err.to_string().contains("not a result"), "{err}");
}

#[test]
fn trace_prints_a_span_tree_for_a_full_run() {
    let tmp = TempDir::new("trace");
    let world = tmp.path("world.triples");
    let query = tmp.path("target.sparql");
    run(cmd(&["generate", "--world", "erdos", "--out", &world])).expect("generate");
    std::fs::write(&query, "SELECT ?x WHERE { ?p :wb ?x . ?p :wb :Erdos . }").unwrap();
    let out = run(cmd(&[
        "trace",
        "--ontology",
        &world,
        "--query",
        &query,
        "--examples",
        "3",
        "--seed",
        "5",
    ]))
    .expect("trace");
    // The flame tree names the pipeline stages with timings...
    assert!(out.starts_with("trace #"), "{out}");
    assert!(out.contains("engine.sample_examples"), "{out}");
    assert!(out.contains("infer.topk"), "{out}");
    assert!(out.contains("infer.round"), "{out}");
    assert!(out.contains("feedback.choose_query"), "{out}");
    assert!(out.contains(" ms"), "{out}");
    // ...plus the aggregated per-stage breakdown and the answer.
    assert!(out.contains("stage totals (by self time):"), "{out}");
    assert!(out.contains("selection question(s)"), "{out}");
    assert!(out.contains("SELECT"), "{out}");
}

#[test]
fn trace_requires_a_world_or_file_pair() {
    let err = run(cmd(&["trace", "--examples", "2"])).expect_err("no input given");
    assert!(err.to_string().contains("--world"), "{err}");
    let err = run(cmd(&["trace", "--world", "atlantis"])).expect_err("unknown world");
    assert!(err.to_string().contains("unknown world"), "{err}");
}
