//! Exact minimum-variable merging, for measuring the greedy heuristic.
//!
//! The paper proves that finding a consistent simple query with a
//! minimal number of variables is NP-hard (Prop. 3.5) and leaves "a
//! theoretical analysis of the quality of our heuristic algorithms" as
//! future work. This module provides the empirical instrument: an
//! exhaustive search over complete relations that is exponential but
//! feasible for small explanation pairs, so tests and benches can
//! quantify the greedy algorithm's optimality gap.
//!
//! Search space: by Prop. 3.9 every consistent query stems from a
//! complete relation, and adding pairs to a relation never removes
//! query nodes (classes are keyed by endpoint pairs), so a
//! minimum-variable query is reachable from a relation that is the
//! union of a left-total map `E(G1) → E(G2)` and a right-total map
//! `E(G2) → E(G1)` (each edge chooses one partner). We enumerate those
//! unions — `Π |partners(e)|` over both sides — and assemble each with
//! the minimum-variable construction of Prop. 3.10, keeping the best.

use questpro_query::SimpleQuery;

use crate::assemble::build_query;
use crate::pattern::PatternGraph;
use crate::relation::is_complete_relation;

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// A minimum-variable consistent query (over the searched space).
    pub query: SimpleQuery,
    /// The relation that produced it.
    pub relation: Vec<(usize, usize)>,
    /// Number of relations examined.
    pub examined: u64,
}

/// Exhaustively merges two **optional-free** pattern graphs, returning
/// the consistent query with the fewest generalization variables.
///
/// Returns `None` when no consistent query exists *or* when the search
/// space exceeds `budget` relations (use the greedy algorithm instead).
pub fn exact_merge_pair(g1: &PatternGraph, g2: &PatternGraph, budget: u64) -> Option<ExactOutcome> {
    if g1.has_optional() || g2.has_optional() {
        return None;
    }
    if g1.edge_count() == 0 || g2.edge_count() == 0 {
        return None;
    }
    // Partner lists per side.
    let partners1: Vec<Vec<usize>> = g1
        .edges()
        .iter()
        .map(|e1| {
            g2.edges()
                .iter()
                .enumerate()
                .filter(|(_, e2)| e2.pred == e1.pred)
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    let partners2: Vec<Vec<usize>> = g2
        .edges()
        .iter()
        .map(|e2| {
            g1.edges()
                .iter()
                .enumerate()
                .filter(|(_, e1)| e1.pred == e2.pred)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    if partners1.iter().any(Vec::is_empty) || partners2.iter().any(Vec::is_empty) {
        return None; // predicate shapes differ — no complete relation
    }
    let space: u64 = partners1
        .iter()
        .chain(partners2.iter())
        .try_fold(1u64, |acc, p| acc.checked_mul(p.len() as u64))?;
    if space > budget {
        return None;
    }

    let m1 = g1.edge_count();
    let m2 = g2.edge_count();
    let mut choice1 = vec![0usize; m1];
    let mut choice2 = vec![0usize; m2];
    let mut best: Option<ExactOutcome> = None;
    let mut examined = 0u64;
    loop {
        examined += 1;
        // Materialize the relation: f1 ∪ f2.
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(m1 + m2);
        for (i, &c) in choice1.iter().enumerate() {
            pairs.push((i, partners1[i][c]));
        }
        for (j, &c) in choice2.iter().enumerate() {
            let pair = (partners2[j][c], j);
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        if is_complete_relation(g1, g2, &pairs) {
            let query = build_query(g1, g2, &pairs);
            let better = best
                .as_ref()
                .is_none_or(|b| query.generalization_vars() < b.query.generalization_vars());
            if better {
                best = Some(ExactOutcome {
                    query,
                    relation: pairs,
                    examined,
                });
            }
        }
        // Odometer over both choice vectors.
        let mut advanced = false;
        for (slot, limit) in choice1
            .iter_mut()
            .zip(partners1.iter().map(Vec::len))
            .chain(choice2.iter_mut().zip(partners2.iter().map(Vec::len)))
        {
            *slot += 1;
            if *slot < limit {
                advanced = true;
                break;
            }
            *slot = 0;
        }
        if !advanced {
            break;
        }
    }
    best.map(|mut b| {
        b.examined = examined;
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{merge_pair, GreedyConfig};
    use questpro_engine::consistent_with_explanation;
    use questpro_graph::{Explanation, Ontology};

    fn world() -> (Ontology, Explanation, Explanation) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        (o, e1, e2)
    }

    #[test]
    fn exact_finds_the_q3_merge() {
        let (o, e1, e2) = world();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let out = exact_merge_pair(&g1, &g2, 1 << 20).expect("search succeeds");
        assert_eq!(out.query.generalization_vars(), 1);
        assert!(out.query.node_of_const("Erdos").is_some());
        assert!(consistent_with_explanation(&o, &out.query, &e1));
        assert!(consistent_with_explanation(&o, &out.query, &e2));
        // 2×2 edges, all same predicate: 2^4 = 16 relations examined.
        assert_eq!(out.examined, 16);
    }

    #[test]
    fn greedy_matches_exact_on_the_running_example() {
        let (o, e1, e2) = world();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let exact = exact_merge_pair(&g1, &g2, 1 << 20).expect("exact");
        let greedy = merge_pair(&g1, &g2, &GreedyConfig::default()).expect("greedy");
        assert_eq!(
            greedy.query.generalization_vars(),
            exact.query.generalization_vars()
        );
    }

    #[test]
    fn budget_overflow_returns_none() {
        let (o, e1, _) = world();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        assert!(exact_merge_pair(&g1, &g1, 3).is_none());
    }

    #[test]
    fn mismatched_shapes_return_none() {
        let mut b = Ontology::builder();
        b.edge("a", "wb", "x").unwrap();
        b.edge("c", "cites", "d").unwrap();
        let o = b.build();
        let e1 = Explanation::from_triples(&o, &[("a", "wb", "x")], "x").unwrap();
        let e2 = Explanation::from_triples(&o, &[("c", "cites", "d")], "d").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        assert!(exact_merge_pair(&g1, &g2, 1 << 20).is_none());
    }
}
