//! Pattern graphs: the common shape of explanations and queries.
//!
//! Section III's extension to `n` explanations "generalizes pairs of
//! graphs which are not necessarily explanations but also intermediate
//! queries". [`PatternGraph`] is that common currency: a directed,
//! predicate-labeled graph whose nodes are constants or (anonymous)
//! variables, plus one distinguished node. Explanations lower to
//! all-constant pattern graphs; simple queries keep their labels and use
//! the projected node as distinguished.

use std::collections::BTreeSet;
use std::sync::Arc;

use questpro_graph::{Explanation, Ontology};
use questpro_query::{NodeLabel, SimpleQuery};

/// Label of a pattern-graph node. Variables are anonymous: variable
/// *identity* is node identity, names are irrelevant to merging.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PLabel {
    /// An ontology value.
    Const(Arc<str>),
    /// An anonymous variable.
    Var,
}

impl PLabel {
    /// The constant value, if this label is one.
    pub fn as_const(&self) -> Option<&str> {
        match self {
            PLabel::Const(c) => Some(c),
            PLabel::Var => None,
        }
    }
}

/// An edge of a pattern graph (indexes into the node vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PEdge {
    /// Source node index.
    pub src: u32,
    /// Target node index.
    pub dst: u32,
    /// Predicate label.
    pub pred: Arc<str>,
    /// Whether the edge is OPTIONAL (always false for explanations;
    /// carried over from intermediate queries produced by
    /// optional-tolerant merging).
    pub optional: bool,
}

/// A labeled graph with a distinguished node — the shared representation
/// of explanations and intermediate queries during inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternGraph {
    labels: Vec<PLabel>,
    edges: Vec<PEdge>,
    dis: u32,
}

impl PatternGraph {
    /// Lowers an explanation: every node becomes its constant value, the
    /// distinguished node stays distinguished.
    pub fn from_explanation(ont: &Ontology, ex: &Explanation) -> Self {
        let nodes = ex.nodes();
        let index_of = |n| {
            nodes
                .binary_search(&n)
                .expect("edge endpoint belongs to the explanation") as u32
        };
        let labels = nodes
            .iter()
            .map(|&n| PLabel::Const(ont.value_str(n).into()))
            .collect();
        let edges = ex
            .edges()
            .iter()
            .map(|&e| {
                let d = ont.edge(e);
                PEdge {
                    src: index_of(d.src),
                    dst: index_of(d.dst),
                    pred: ont.pred_str(d.pred).into(),
                    optional: false,
                }
            })
            .collect();
        Self {
            labels,
            edges,
            dis: index_of(ex.distinguished()),
        }
    }

    /// Lowers a simple query: labels carry over (variable names are
    /// dropped), the projected node becomes the distinguished node.
    /// Disequalities are not represented — they are re-inferred after
    /// merging (Section V).
    pub fn from_query(q: &SimpleQuery) -> Self {
        let labels = q
            .labels()
            .iter()
            .map(|l| match l {
                NodeLabel::Const(c) => PLabel::Const(c.clone()),
                NodeLabel::Var(_) => PLabel::Var,
            })
            .collect();
        let edges = q
            .edges()
            .iter()
            .map(|e| PEdge {
                src: e.src.index() as u32,
                dst: e.dst.index() as u32,
                pred: e.pred.clone(),
                optional: e.optional,
            })
            .collect();
        Self {
            labels,
            edges,
            dis: q.projected().index() as u32,
        }
    }

    /// Node labels, by node index.
    pub fn labels(&self) -> &[PLabel] {
        &self.labels
    }

    /// The label of node `n`.
    pub fn label(&self, n: u32) -> &PLabel {
        &self.labels[n as usize]
    }

    /// The edges.
    pub fn edges(&self) -> &[PEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// The distinguished node index.
    pub fn dis(&self) -> u32 {
        self.dis
    }

    /// An injective serialization of this graph, independent of variable
    /// *names* (which `PatternGraph` never stores): two queries that
    /// differ only in how their variables are spelled produce the same
    /// key. Constants and predicates are length-prefixed, so no choice
    /// of label text can collide with the structure of the encoding.
    ///
    /// `merge_pair` is a pure function of its two pattern graphs, which
    /// makes this the right memo key for pairwise-merge caching — the
    /// SPARQL text used previously split α-equivalent branches into
    /// distinct cache entries.
    pub fn canonical_key(&self) -> String {
        let mut s = String::with_capacity(16 + 16 * self.edges.len());
        s.push('d');
        s.push_str(&self.dis.to_string());
        for l in &self.labels {
            match l {
                PLabel::Const(c) => {
                    s.push('C');
                    s.push_str(&c.len().to_string());
                    s.push(':');
                    s.push_str(c);
                }
                PLabel::Var => s.push('V'),
            }
        }
        for e in &self.edges {
            s.push(if e.optional { 'o' } else { 'e' });
            s.push_str(&e.src.to_string());
            s.push(',');
            s.push_str(&e.dst.to_string());
            s.push(',');
            s.push_str(&e.pred.len().to_string());
            s.push(':');
            s.push_str(&e.pred);
        }
        s
    }

    /// The set of distinct edge predicates (required and optional).
    pub fn edge_label_set(&self) -> BTreeSet<Arc<str>> {
        self.edges.iter().map(|e| e.pred.clone()).collect()
    }

    /// Whether any edge is OPTIONAL.
    pub fn has_optional(&self) -> bool {
        self.edges.iter().any(|e| e.optional)
    }

    /// Number of required (non-optional) edges.
    pub fn required_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.optional).count()
    }

    /// How many edges carry predicate `pred`.
    pub fn count_label(&self, pred: &str) -> usize {
        self.edges.iter().filter(|e| &*e.pred == pred).count()
    }

    /// Predicates of edges whose **source** is the distinguished node.
    pub fn dis_source_labels(&self) -> BTreeSet<Arc<str>> {
        self.edges
            .iter()
            .filter(|e| e.src == self.dis)
            .map(|e| e.pred.clone())
            .collect()
    }

    /// Predicates of edges whose **target** is the distinguished node.
    pub fn dis_target_labels(&self) -> BTreeSet<Arc<str>> {
        self.edges
            .iter()
            .filter(|e| e.dst == self.dis)
            .map(|e| e.pred.clone())
            .collect()
    }

    /// Whether edge `e`'s source (resp. target, per `source`) is the
    /// distinguished node.
    pub fn edge_touches_dis(&self, e: usize, source: bool) -> bool {
        let edge = &self.edges[e];
        if source {
            edge.src == self.dis
        } else {
            edge.dst == self.dis
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::Explanation;
    use questpro_query::fixtures::erdos_q1;

    fn world() -> (Ontology, Explanation) {
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "wb", "Bob").unwrap();
        b.edge("paper2", "cites", "paper1").unwrap();
        let o = b.build();
        let ex = Explanation::from_triples(
            &o,
            &[("paper1", "wb", "Alice"), ("paper2", "cites", "paper1")],
            "Alice",
        )
        .unwrap();
        (o, ex)
    }

    #[test]
    fn explanations_lower_to_constant_graphs() {
        let (o, ex) = world();
        let g = PatternGraph::from_explanation(&o, &ex);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.labels().iter().all(|l| l.as_const().is_some()));
        assert_eq!(g.label(g.dis()).as_const(), Some("Alice"));
        assert_eq!(
            g.edge_label_set().into_iter().collect::<Vec<_>>(),
            vec!["cites".into(), "wb".into()] as Vec<Arc<str>>
        );
    }

    #[test]
    fn queries_lower_with_projected_as_dis() {
        let q = erdos_q1();
        let g = PatternGraph::from_query(&q);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert!(g.labels().iter().all(|l| l.as_const().is_none()));
        assert_eq!(g.dis(), q.projected().index() as u32);
        assert_eq!(g.count_label("wb"), 6);
    }

    #[test]
    fn dis_incidence_helpers() {
        let (o, ex) = world();
        let g = PatternGraph::from_explanation(&o, &ex);
        // Alice is only a target (of wb).
        assert!(g.dis_source_labels().is_empty());
        assert_eq!(g.dis_target_labels().len(), 1);
        let wb_edge = g.edges().iter().position(|e| &*e.pred == "wb").unwrap();
        assert!(g.edge_touches_dis(wb_edge, false));
        assert!(!g.edge_touches_dis(wb_edge, true));
    }
}
