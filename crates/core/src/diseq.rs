//! Disequality inference (Section V).
//!
//! For an inferred branch `q` and the explanations it covers, we read off
//! the value each query node took in each explanation (via the onto
//! matches that witness consistency). A disequality may be added between
//! two nodes when
//!
//! * at least one of them is a variable (a constant pair is vacuous),
//! * their matched ontology nodes have the **same type** in every
//!   covered explanation (the paper uses type information from the
//!   ontology to scope candidate pairs; untyped nodes only pair with
//!   untyped nodes), and
//! * in **every** covered explanation the two nodes took **different**
//!   values — a single explanation assigning the same value to both
//!   (the paper's Dave example, 5.1) forbids the disequality.
//!
//! `Q^all` — the query with every possible disequality — is what the
//! feedback loop runs on the "kept" side of difference queries, so that
//! users never disqualify a query because of an over-strict disequality.

use questpro_engine::ConsistencyCache;
use questpro_graph::{ExampleSet, Explanation, NodeId, Ontology};
use questpro_query::{QueryNodeId, SimpleQuery, UnionQuery};

/// Infers every admissible disequality for `q` over the explanations it
/// covers (inconsistent explanations are skipped).
///
/// Returns canonicalized node-id pairs; empty when `q` covers no
/// explanation or no pair qualifies.
pub fn infer_diseqs(
    ont: &Ontology,
    q: &SimpleQuery,
    examples: &ExampleSet,
) -> Vec<(QueryNodeId, QueryNodeId)> {
    infer_diseqs_cached(ont, q, examples, &mut ConsistencyCache::new())
}

/// [`infer_diseqs`] with a shared [`ConsistencyCache`]: the feedback
/// loop re-derives disequalities for the same branches after every
/// refinement step, so the `(branch, explanation)` onto matches recur.
pub fn infer_diseqs_cached(
    ont: &Ontology,
    q: &SimpleQuery,
    examples: &ExampleSet,
    cache: &mut ConsistencyCache,
) -> Vec<(QueryNodeId, QueryNodeId)> {
    // Per covered explanation: the image of every query node (`None`
    // for nodes bound only by skipped OPTIONAL edges).
    let qkey = questpro_engine::consistency::query_key(q);
    let assignments: Vec<Vec<Option<NodeId>>> = examples
        .iter()
        .filter_map(|ex| {
            cache
                .find_onto_match_keyed(qkey, ont, q, ex)
                .map(|m| m.nodes)
        })
        .collect();
    if assignments.is_empty() {
        return Vec::new();
    }
    let n = q.node_count();
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let na = QueryNodeId::from_index(a);
            let nb = QueryNodeId::from_index(b);
            if !q.label(na).is_var() && !q.label(nb).is_var() {
                continue;
            }
            let admissible = assignments.iter().all(|asg| {
                // A node left unbound in some explanation (skipped
                // OPTIONAL edge) cannot certify the disequality there.
                let (Some(va), Some(vb)) = (asg[a], asg[b]) else {
                    return false;
                };
                va != vb && ont.node_type(va) == ont.node_type(vb)
            });
            if admissible {
                out.push((na, nb));
            }
        }
    }
    out
}

/// The paper's `Q^all`: every branch of `u` augmented with all its
/// admissible disequalities.
pub fn with_all_diseqs(ont: &Ontology, u: &UnionQuery, examples: &ExampleSet) -> UnionQuery {
    with_all_diseqs_cached(ont, u, examples, &mut ConsistencyCache::new())
}

/// [`with_all_diseqs`] with a shared [`ConsistencyCache`].
pub fn with_all_diseqs_cached(
    ont: &Ontology,
    u: &UnionQuery,
    examples: &ExampleSet,
    cache: &mut ConsistencyCache,
) -> UnionQuery {
    let branches = u
        .branches()
        .iter()
        .map(|q| {
            let d = infer_diseqs_cached(ont, q, examples, cache);
            q.with_diseqs(d)
                .expect("inferred disequalities are valid by construction")
        })
        .collect();
    UnionQuery::new(branches).expect("branch count unchanged")
}

/// Convenience: the explanations of `examples` that `q` covers.
pub fn covered_explanations<'e>(
    ont: &Ontology,
    q: &SimpleQuery,
    examples: &'e ExampleSet,
) -> Vec<&'e Explanation> {
    covered_explanations_cached(ont, q, examples, &mut ConsistencyCache::new())
}

/// [`covered_explanations`] with a shared [`ConsistencyCache`].
pub fn covered_explanations_cached<'e>(
    ont: &Ontology,
    q: &SimpleQuery,
    examples: &'e ExampleSet,
    cache: &mut ConsistencyCache,
) -> Vec<&'e Explanation> {
    let qkey = questpro_engine::consistency::query_key(q);
    examples
        .iter()
        .filter(|ex| cache.find_onto_match_keyed(qkey, ont, q, ex).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_engine::{consistent_with_explanation, evaluate};
    use questpro_graph::Explanation;

    /// Typed running example: authors and papers. Dave co-authors with
    /// himself-only paper (models Example 5.1's "Dave appears for both
    /// variables" case).
    fn world() -> (Ontology, ExampleSet) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        for a in ["Alice", "Bob", "Carol", "Erdos", "Dave"] {
            b.typed_node(a, "Author").unwrap();
        }
        for p in ["paper1", "paper2", "paper3", "paper4"] {
            b.typed_node(p, "Paper").unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        (o, ExampleSet::from_explanations(vec![e1, e2]))
    }

    /// `?p wb ?x . ?p wb ?other` — co-authorship without constants.
    fn coauthor_query() -> SimpleQuery {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let other = b.var("other");
        b.edge(p, "wb", x).edge(p, "wb", other).project(x);
        b.build().unwrap()
    }

    #[test]
    fn same_type_distinct_values_admit_diseq() {
        let (o, examples) = world();
        let q = coauthor_query();
        assert!(examples
            .iter()
            .all(|e| consistent_with_explanation(&o, &q, e)));
        let d = infer_diseqs(&o, &q, &examples);
        // ?x vs ?other: Carol≠Erdos and Dave≠Erdos → admissible.
        let x = q.node_of_var("x").unwrap();
        let other = q.node_of_var("other").unwrap();
        assert!(d.contains(&(x.min(other), x.max(other))));
        // ?p is a Paper; it never pairs with the Author variables.
        let p = q.node_of_var("p").unwrap();
        assert!(!d.iter().any(|&(a, b)| a == p || b == p));
    }

    #[test]
    fn shared_value_in_one_explanation_blocks_diseq() {
        // Add an explanation where ?x and ?other both map to Dave (the
        // onto match must fold them): paper4 with only Dave as author.
        let mut b = Ontology::builder();
        b.edge("paperD", "wb", "Dave").unwrap();
        b.edge("paper3", "wb", "Carol").unwrap();
        b.edge("paper3", "wb", "Erdos").unwrap();
        for a in ["Carol", "Erdos", "Dave"] {
            b.typed_node(a, "Author").unwrap();
        }
        for p in ["paperD", "paper3"] {
            b.typed_node(p, "Paper").unwrap();
        }
        let o = b.build();
        let fold = Explanation::from_triples(&o, &[("paperD", "wb", "Dave")], "Dave").unwrap();
        let normal = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let examples = ExampleSet::from_explanations(vec![fold, normal]);
        let q = coauthor_query();
        let d = infer_diseqs(&o, &q, &examples);
        let x = q.node_of_var("x").unwrap();
        let other = q.node_of_var("other").unwrap();
        assert!(!d.contains(&(x.min(other), x.max(other))));
    }

    #[test]
    fn diseq_changes_query_semantics() {
        let (o, examples) = world();
        let q = coauthor_query();
        let u = UnionQuery::single(q.clone());
        let u_all = with_all_diseqs(&o, &u, &examples);
        assert!(u_all.diseq_count() > 0);
        let plain = evaluate(&o, &q);
        let strict = evaluate(&o, &u_all.branches()[0]);
        // With ?x != ?other, sole-author matches disappear; here everyone
        // has a distinct co-author so the sets coincide on authors with
        // co-authors, but strict ⊆ plain always.
        assert!(strict.is_subset(&plain));
    }

    #[test]
    fn var_const_diseqs_are_inferred() {
        // Query with the Erdos constant: ?p wb ?x . ?p wb :Erdos.
        let (o, examples) = world();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        let q = b.build().unwrap();
        let d = infer_diseqs(&o, &q, &examples);
        // ?x is Carol/Dave, both ≠ Erdos and same type → (x, :Erdos)
        // admissible (the paper's `?a1 != Bob` pattern).
        let en = q.node_of_const("Erdos").unwrap();
        let x = q.node_of_var("x").unwrap();
        assert!(d.contains(&(x.min(en), x.max(en))));
    }

    #[test]
    fn inconsistent_branch_yields_no_diseqs() {
        let (o, examples) = world();
        // A query over a predicate absent from the explanations covers
        // nothing (note: the diseq-free Q1 chain *does* fold onto short
        // chains, so it would not do here).
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.edge(y, "cites", x).project(x);
        let q = b.build().unwrap();
        assert!(infer_diseqs(&o, &q, &examples).is_empty());
        assert!(covered_explanations(&o, &q, &examples).is_empty());
    }

    #[test]
    fn covered_explanations_filters_correctly() {
        let (o, examples) = world();
        let q = coauthor_query();
        assert_eq!(covered_explanations(&o, &q, &examples).len(), 2);
    }

    #[test]
    fn cached_variants_agree_and_share_lookups() {
        let (o, examples) = world();
        let q = coauthor_query();
        let u = UnionQuery::single(q.clone());
        let mut cache = ConsistencyCache::new();
        assert_eq!(
            infer_diseqs_cached(&o, &q, &examples, &mut cache),
            infer_diseqs(&o, &q, &examples)
        );
        assert_eq!(cache.hits(), 0);
        // Re-deriving over the same branches hits the cache every time.
        let u_all = with_all_diseqs_cached(&o, &u, &examples, &mut cache);
        assert_eq!(
            u_all.diseq_count(),
            with_all_diseqs(&o, &u, &examples).diseq_count()
        );
        assert_eq!(cache.hits(), examples.len() as u64);
        let covered = covered_explanations_cached(&o, &q, &examples, &mut cache);
        assert_eq!(covered.len(), covered_explanations(&o, &q, &examples).len());
        assert_eq!(cache.hits(), 2 * examples.len() as u64);
    }
}
