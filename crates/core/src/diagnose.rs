//! Diagnosing suspect explanations (the paper's last future-work item:
//! "dealing with incorrect provenance provided by users").
//!
//! A wrong explanation — a reversed relation, a forgotten edge, a
//! mis-clicked neighbor — poisons inference: Algorithm 1 either fails
//! outright (predicate shapes stop matching) or absorbs the error into
//! an over-general pattern. This module scores each explanation by how
//! well it merges with the rest of the example-set:
//!
//! * **shape mismatch** — the explanation merges (strictly) with *no*
//!   other explanation: its predicate shape is foreign to the set, the
//!   signature of a wrong-relation error;
//! * **outlier** — it merges, but only into queries with far more
//!   variables than the set's typical pairwise merge, the signature of
//!   an explanation that structurally disagrees with the others;
//! * **clean** — everything else.
//!
//! [`infer_top_k_robust`] filters shape-mismatch suspects before running
//! the standard top-k inference and reports which explanations were set
//! aside, so an interactive front-end can ask the user to re-draw them.

use questpro_graph::{ExampleSet, Ontology};
use questpro_query::UnionQuery;

use crate::greedy::{merge_pair, GreedyConfig};
use crate::pattern::PatternGraph;
use crate::stats::InferenceStats;
use crate::topk::{infer_top_k, TopKConfig};

/// How suspicious an explanation looks within its example-set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suspicion {
    /// Merges normally with the rest of the set.
    Clean,
    /// Merges with no other explanation (foreign predicate shape).
    ShapeMismatch,
    /// Merges only into unusually variable-heavy queries.
    Outlier,
}

/// Diagnosis of one explanation.
#[derive(Debug, Clone)]
pub struct ExampleDiagnosis {
    /// Index of the explanation in the example-set.
    pub index: usize,
    /// Number of other explanations it pairwise-merges with.
    pub mergeable_with: usize,
    /// Fewest generalization variables over its successful merges
    /// (`None` when nothing merges).
    pub best_merge_vars: Option<usize>,
    /// The verdict.
    pub suspicion: Suspicion,
}

/// Scores every explanation of the set. With fewer than two
/// explanations everything is trivially [`Suspicion::Clean`].
///
/// Mergeability is judged with the **optional-tolerant** merge
/// regardless of `cfg.allow_optional`: legitimately varied explanations
/// (one mentions a genre, another does not) must not be flagged — only
/// explanations that cannot be reconciled at all are suspect.
pub fn diagnose_examples(
    ont: &Ontology,
    examples: &ExampleSet,
    cfg: &GreedyConfig,
) -> Vec<ExampleDiagnosis> {
    let cfg = &GreedyConfig {
        allow_optional: true,
        ..*cfg
    };
    let n = examples.len();
    let graphs: Vec<PatternGraph> = examples
        .iter()
        .map(|e| PatternGraph::from_explanation(ont, e))
        .collect();
    let mut mergeable = vec![0usize; n];
    let mut best_vars: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(out) = merge_pair(&graphs[i], &graphs[j], cfg) {
                mergeable[i] += 1;
                mergeable[j] += 1;
                let v = out.query.generalization_vars();
                for idx in [i, j] {
                    best_vars[idx] = Some(best_vars[idx].map_or(v, |b: usize| b.min(v)));
                }
            }
        }
    }
    // Median of the best-merge variable counts over explanations that
    // merge at all, as the set's notion of a "normal" fit.
    let mut merged_vars: Vec<usize> = best_vars.iter().flatten().copied().collect();
    merged_vars.sort_unstable();
    let median = merged_vars.get(merged_vars.len() / 2).copied();

    (0..n)
        .map(|i| {
            let suspicion = if n <= 1 {
                Suspicion::Clean
            } else if mergeable[i] == 0 {
                Suspicion::ShapeMismatch
            } else {
                match (best_vars[i], median) {
                    // An explanation whose *best* merge needs more than
                    // twice the median variables (plus slack for tiny
                    // medians) structurally disagrees with the set.
                    (Some(v), Some(m)) if v > 2 * m + 1 => Suspicion::Outlier,
                    _ => Suspicion::Clean,
                }
            };
            ExampleDiagnosis {
                index: i,
                mergeable_with: mergeable[i],
                best_merge_vars: best_vars[i],
                suspicion,
            }
        })
        .collect()
}

/// Top-k inference that sets shape-mismatch suspects aside first.
///
/// Returns the candidates inferred from the clean subset, the indexes of
/// the explanations that were set aside, and the inference stats. When
/// filtering would leave fewer than two explanations (or nothing is
/// suspect), the full set is used unchanged.
pub fn infer_top_k_robust(
    ont: &Ontology,
    examples: &ExampleSet,
    cfg: &TopKConfig,
) -> (Vec<UnionQuery>, Vec<usize>, InferenceStats) {
    let diagnoses = diagnose_examples(ont, examples, &cfg.greedy);
    let suspects: Vec<usize> = diagnoses
        .iter()
        .filter(|d| d.suspicion == Suspicion::ShapeMismatch)
        .map(|d| d.index)
        .collect();
    let clean_count = examples.len() - suspects.len();
    if suspects.is_empty() || clean_count < 2 {
        let (candidates, stats) = infer_top_k(ont, examples, cfg);
        return (candidates, Vec::new(), stats);
    }
    let kept: ExampleSet = examples
        .iter()
        .enumerate()
        .filter(|(i, _)| !suspects.contains(i))
        .map(|(_, e)| e.clone())
        .collect();
    let (candidates, stats) = infer_top_k(ont, &kept, cfg);
    (candidates, suspects, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_engine::consistent_with_explanation;
    use questpro_graph::Explanation;

    /// Three clean co-author explanations plus one wrong-relation one
    /// (a `cites` edge instead of `wb`).
    fn world() -> (Ontology, ExampleSet) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper5", "Iris"),
            ("paper5", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        b.edge("paper6", "cites", "paper3").unwrap();
        let o = b.build();
        let mk = |p: &str, a: &str| {
            Explanation::from_triples(&o, &[(p, "wb", a), (p, "wb", "Erdos")], a).unwrap()
        };
        let wrong =
            Explanation::from_triples(&o, &[("paper6", "cites", "paper3")], "paper3").unwrap();
        let set = ExampleSet::from_explanations(vec![
            mk("paper3", "Carol"),
            mk("paper4", "Dave"),
            mk("paper5", "Iris"),
            wrong,
        ]);
        (o, set)
    }

    #[test]
    fn wrong_relation_is_flagged_as_shape_mismatch() {
        let (o, set) = world();
        let d = diagnose_examples(&o, &set, &GreedyConfig::default());
        assert_eq!(d.len(), 4);
        assert_eq!(d[0].suspicion, Suspicion::Clean);
        assert_eq!(d[1].suspicion, Suspicion::Clean);
        assert_eq!(d[2].suspicion, Suspicion::Clean);
        assert_eq!(d[3].suspicion, Suspicion::ShapeMismatch);
        assert_eq!(d[3].mergeable_with, 0);
        assert!(d[3].best_merge_vars.is_none());
        assert_eq!(d[0].mergeable_with, 2);
    }

    #[test]
    fn robust_inference_sets_the_suspect_aside() {
        let (o, set) = world();
        let (candidates, suspects, _) = infer_top_k_robust(&o, &set, &TopKConfig::default());
        assert_eq!(suspects, vec![3]);
        // The clean subset fuses into one co-author-of-Erdos pattern.
        let best = &candidates[0];
        assert_eq!(best.len(), 1);
        for (i, ex) in set.iter().enumerate() {
            if i != 3 {
                assert!(consistent_with_explanation(&o, &best.branches()[0], ex));
            }
        }
    }

    #[test]
    fn clean_sets_are_untouched() {
        let (o, set) = world();
        let clean: ExampleSet = set.iter().take(3).cloned().collect();
        let d = diagnose_examples(&o, &clean, &GreedyConfig::default());
        assert!(d.iter().all(|x| x.suspicion == Suspicion::Clean));
        let (_, suspects, _) = infer_top_k_robust(&o, &clean, &TopKConfig::default());
        assert!(suspects.is_empty());
    }

    #[test]
    fn single_explanation_is_clean() {
        let (o, set) = world();
        let one: ExampleSet = set.iter().take(1).cloned().collect();
        let d = diagnose_examples(&o, &one, &GreedyConfig::default());
        assert_eq!(d[0].suspicion, Suspicion::Clean);
    }

    #[test]
    fn all_mutually_foreign_sets_fall_back_to_full_inference() {
        // Two explanations, mutually unmergeable: filtering would leave
        // fewer than two, so the full set is used (trivial union).
        let (o, set) = world();
        let pair: ExampleSet = set
            .iter()
            .enumerate()
            .filter(|(i, _)| *i == 0 || *i == 3)
            .map(|(_, e)| e.clone())
            .collect();
        let (candidates, suspects, _) = infer_top_k_robust(&o, &pair, &TopKConfig::default());
        assert!(suspects.is_empty());
        assert_eq!(candidates[0].len(), 2);
    }
}
