//! Top-k beam-search variant of Algorithm 2 (end of Section IV).
//!
//! Instead of committing to the single best merge at each round, the
//! beam keeps the `k` lowest-cost candidate states. The first round
//! expands the initial state into its top-k merge successors; every
//! subsequent round expands each beam state into its top-k successors
//! (up to `k²` candidates), pools them with the surviving parents — the
//! paper's Example 4.4 explicitly keeps the un-mergeable
//! `Union({Q4,E1,E3})` around — deduplicates up to isomorphism, and
//! keeps the `k` cheapest. The loop stops when a round adds nothing new.
//!
//! As the paper notes, this is still a heuristic: filtering to top-k at
//! every round does not guarantee the global top-k (the `k = 1` case is
//! already NP-hard).

use questpro_engine::{metrics, ConsistencyCache};
use questpro_graph::{ExampleSet, Ontology};
use questpro_query::iso::union_isomorphic;
use questpro_query::{GeneralizationWeights, UnionQuery};

use crate::greedy::GreedyConfig;
use crate::stats::InferenceStats;
use crate::union::{
    apply_merge, branches_cost, initial_branches, merge_candidates, union_consistent_cached,
    Branch, MergeCache,
};

/// Configuration of the top-k inference.
#[derive(Debug, Clone, Copy)]
pub struct TopKConfig {
    /// Beam width / number of queries to return.
    pub k: usize,
    /// Weights of the generalization cost function `f`.
    pub weights: GeneralizationWeights,
    /// Configuration of the inner Algorithm 1 runs.
    pub greedy: GreedyConfig,
    /// Worker threads for the `MergeBestTwo` pair scans (1 = sequential;
    /// results and stats are identical at every value).
    pub threads: usize,
}

impl Default for TopKConfig {
    fn default() -> Self {
        Self {
            k: 3,
            weights: GeneralizationWeights::default(),
            greedy: GreedyConfig::default(),
            threads: 1,
        }
    }
}

struct State {
    branches: Vec<Branch>,
    cost: f64,
    query: UnionQuery,
    /// Sorted multiset of branch shape hashes. Shape hashes are
    /// isomorphism-invariant, so unequal fingerprints mean the states
    /// cannot be union-isomorphic — the pool dedup compares these `u64`
    /// vectors first and runs the backtracking isomorphism search only
    /// on fingerprint collisions.
    fingerprint: Vec<u64>,
    /// Whether this state has already been expanded in a previous round.
    expanded: bool,
}

fn make_state(branches: Vec<Branch>, w: GeneralizationWeights) -> State {
    let cost = branches_cost(&branches, w);
    let query = UnionQuery::new(branches.iter().map(|b| b.query.as_ref().clone()).collect())
        .expect("states always have at least one branch");
    let mut fingerprint: Vec<u64> = branches.iter().map(|b| b.shape).collect();
    fingerprint.sort_unstable();
    State {
        branches,
        cost,
        query,
        fingerprint,
        expanded: false,
    }
}

/// Runs the top-k inference, returning up to `k` candidate union queries
/// ranked by ascending generalization cost, plus instrumentation.
///
/// Every returned query is consistent with the example-set.
///
/// ```
/// use questpro_core::{infer_top_k, TopKConfig};
/// use questpro_graph::{ExampleSet, Explanation, Ontology};
///
/// let mut b = Ontology::builder();
/// b.edge("paper3", "wb", "Carol")?;
/// b.edge("paper3", "wb", "Erdos")?;
/// b.edge("paper4", "wb", "Dave")?;
/// b.edge("paper4", "wb", "Erdos")?;
/// let ont = b.build();
/// let e1 = Explanation::from_triples(
///     &ont, &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")], "Carol")?;
/// let e2 = Explanation::from_triples(
///     &ont, &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")], "Dave")?;
/// let examples = ExampleSet::from_explanations(vec![e1, e2]);
///
/// let (candidates, stats) = infer_top_k(&ont, &examples, &TopKConfig::default());
/// assert!(!candidates.is_empty());
/// assert!(stats.algorithm1_calls > 0);
/// // The best candidate fuses both explanations into one pattern.
/// assert_eq!(candidates[0].len(), 1);
/// # Ok::<(), questpro_graph::GraphError>(())
/// ```
pub fn infer_top_k(
    ont: &Ontology,
    examples: &ExampleSet,
    cfg: &TopKConfig,
) -> (Vec<UnionQuery>, InferenceStats) {
    assert!(cfg.k >= 1, "k must be at least 1");
    assert!(!examples.is_empty(), "example-set must be non-empty");
    let t_span = questpro_trace::span("infer.topk");
    let t_total = std::time::Instant::now();
    let nodes0 = metrics::nodes_expanded();
    let mut stats = InferenceStats::default();
    let mut cache = MergeCache::default();
    let mut ccache = ConsistencyCache::new();
    let mut beam: Vec<State> = vec![make_state(initial_branches(ont, examples), cfg.weights)];

    // Each merge reduces a state's branch count by one, so chains of
    // merges are bounded by the number of explanations.
    for _round in 0..=examples.len() {
        let _r = questpro_trace::span("infer.round");
        stats.rounds += 1;
        let mut pool: Vec<State> = Vec::new();
        let mut any_new = false;
        let mut successors: Vec<State> = Vec::new();
        for state in &mut beam {
            if state.expanded || state.branches.len() == 1 {
                continue;
            }
            state.expanded = true;
            stats.states_examined += 1;
            let candidates = merge_candidates(
                &state.branches,
                &cfg.greedy,
                cfg.k,
                cfg.threads,
                &mut stats,
                &mut cache,
            );
            for cand in candidates {
                let next = apply_merge(&state.branches, &cand);
                successors.push(make_state(next, cfg.weights));
            }
        }
        pool.append(&mut beam);
        for s in successors {
            if !pool
                .iter()
                .any(|p| p.fingerprint == s.fingerprint && union_isomorphic(&p.query, &s.query))
            {
                // Re-verify the admitted successor (memoized: beam states
                // share most branches across rounds, so almost every
                // lookup after round one is a cache hit).
                let t_c = std::time::Instant::now();
                let c_span = questpro_trace::span("infer.consistency");
                let ok = union_consistent_cached(ont, &s.branches, examples, &mut ccache);
                drop(c_span);
                stats.consistency_nanos += t_c.elapsed().as_nanos();
                assert!(
                    ok,
                    "successor state must stay consistent with the example-set"
                );
                stats.merges_applied += 1;
                any_new = true;
                pool.push(s);
            }
        }
        pool.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
        pool.truncate(cfg.k);
        beam = pool;
        if !any_new {
            break;
        }
    }

    let queries = beam.into_iter().map(|s| s.query).collect();
    stats.consistency_checks = ccache.lookups() as usize;
    stats.consistency_cache_hits = ccache.hits() as usize;
    stats.matcher_nodes_expanded = metrics::nodes_expanded().wrapping_sub(nodes0);
    stats.total_nanos = t_total.elapsed().as_nanos();
    crate::stats::record_global(&stats);
    questpro_trace::add("rounds", stats.rounds as u64);
    questpro_trace::add("algorithm1_calls", stats.algorithm1_calls as u64);
    questpro_trace::add("consistency_checks", stats.consistency_checks as u64);
    drop(t_span);
    if questpro_log::enabled(questpro_log::Level::Debug) {
        questpro_log::emit(
            questpro_log::Level::Debug,
            "core.topk",
            "top-k inference finished",
            vec![
                ("k", cfg.k.into()),
                ("rounds", stats.rounds.into()),
                ("algorithm1_calls", stats.algorithm1_calls.into()),
                ("states_examined", stats.states_examined.into()),
                ("consistency_checks", stats.consistency_checks.into()),
                ("total_ns", (stats.total_nanos as u64).into()),
            ],
        );
    }
    (queries, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_engine::consistent_with_examples;
    use questpro_graph::Explanation;

    /// The four Figure 1 explanations (as in `union::tests`).
    fn world() -> (Ontology, ExampleSet) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper5", "Felix"),
            ("paper5", "Gina"),
            ("paper6", "Gina"),
            ("paper6", "Hank"),
            ("paper7", "Hank"),
            ("paper7", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let chain3 = |p1: &str, a1: &str, a2: &str, p2: &str, a3: &str, p3: &str, a4: &str| {
            Explanation::from_triples(
                &o,
                &[
                    (p1, "wb", a1),
                    (p1, "wb", a2),
                    (p2, "wb", a2),
                    (p2, "wb", a3),
                    (p3, "wb", a3),
                    (p3, "wb", a4),
                ],
                a1,
            )
            .unwrap()
        };
        let chain1 = |p: &str, a: &str| {
            Explanation::from_triples(&o, &[(p, "wb", a), (p, "wb", "Erdos")], a).unwrap()
        };
        let e1 = chain3(
            "paper1", "Alice", "Bob", "paper2", "Carol", "paper3", "Erdos",
        );
        let e2 = chain1("paper3", "Carol");
        let e3 = chain1("paper4", "Dave");
        let e4 = chain3(
            "paper5", "Felix", "Gina", "paper6", "Hank", "paper7", "Erdos",
        );
        (o, ExampleSet::from_explanations(vec![e1, e2, e3, e4]))
    }

    #[test]
    fn returns_at_most_k_distinct_consistent_queries() {
        let (o, examples) = world();
        let cfg = TopKConfig {
            k: 3,
            weights: GeneralizationWeights::example_4_4(),
            ..Default::default()
        };
        let (queries, stats) = infer_top_k(&o, &examples, &cfg);
        assert!(!queries.is_empty());
        assert!(queries.len() <= 3);
        for q in &queries {
            assert!(consistent_with_examples(&o, q, &examples));
        }
        // No two returned queries are isomorphic.
        for i in 0..queries.len() {
            for j in (i + 1)..queries.len() {
                assert!(!union_isomorphic(&queries[i], &queries[j]));
            }
        }
        assert!(stats.algorithm1_calls > 0);
    }

    #[test]
    fn results_are_sorted_by_cost() {
        let (o, examples) = world();
        let cfg = TopKConfig {
            k: 4,
            weights: GeneralizationWeights::example_4_4(),
            ..Default::default()
        };
        let (queries, _) = infer_top_k(&o, &examples, &cfg);
        let costs: Vec<f64> = queries.iter().map(|q| q.cost(cfg.weights)).collect();
        for w in costs.windows(2) {
            assert!(w[0] <= w[1], "costs must be ascending: {costs:?}");
        }
    }

    #[test]
    fn k1_matches_algorithm_2_cost_or_better() {
        use crate::union::{find_consistent_union, UnionConfig};
        let (o, examples) = world();
        let weights = GeneralizationWeights::example_4_3();
        let (single, _) = find_consistent_union(
            &o,
            &examples,
            &UnionConfig {
                weights,
                ..Default::default()
            },
        );
        let (top1, _) = infer_top_k(
            &o,
            &examples,
            &TopKConfig {
                k: 1,
                weights,
                ..Default::default()
            },
        );
        assert!(top1[0].cost(weights) <= single.cost(weights));
    }

    #[test]
    fn larger_k_examines_more_intermediate_queries() {
        let (o, examples) = world();
        let weights = GeneralizationWeights::example_4_4();
        let calls_for = |k: usize| {
            let (_, stats) = infer_top_k(
                &o,
                &examples,
                &TopKConfig {
                    k,
                    weights,
                    ..Default::default()
                },
            );
            stats.algorithm1_calls
        };
        // The Figure 6c/6d trend: more candidates with larger k
        // (monotone here because expansion work only grows with beam
        // width on this fixture).
        assert!(calls_for(5) >= calls_for(1));
    }

    #[test]
    fn threads_do_not_change_beam_or_stats() {
        let (o, examples) = world();
        let base = TopKConfig {
            k: 4,
            weights: GeneralizationWeights::example_4_4(),
            ..Default::default()
        };
        let (q1, s1) = infer_top_k(&o, &examples, &base);
        for threads in [2, 8] {
            let cfg = TopKConfig { threads, ..base };
            let (qn, sn) = infer_top_k(&o, &examples, &cfg);
            let render = |qs: &[UnionQuery]| qs.iter().map(|q| q.to_string()).collect::<Vec<_>>();
            assert_eq!(render(&qn), render(&q1));
            assert_eq!(sn, s1, "stats must be thread-count invariant");
        }
        assert!(s1.consistency_checks > 0);
        assert!(
            s1.consistency_cache_hits > 0,
            "beam states share branches, so the consistency cache must hit"
        );
    }

    #[test]
    fn beam_keeps_unmergeable_parents() {
        // With one explanation the initial state is terminal and must be
        // returned as-is.
        let (o, examples) = world();
        let one = ExampleSet::from_explanations(vec![examples.explanations()[0].clone()]);
        let (queries, _) = infer_top_k(&o, &one, &TopKConfig::default());
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].len(), 1);
        assert_eq!(queries[0].total_vars(), 0);
    }
}
