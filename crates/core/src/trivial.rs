//! The PTIME consistent-query test and construction (Proposition 3.1).
//!
//! A simple consistent query exists for an example-set iff
//!
//! 1. all explanations have the **same set of edge predicates** — an
//!    explanation-only predicate could never be covered by an onto match
//!    of one query into every explanation; and
//! 2. the intersection over explanations of the predicates of edges whose
//!    **source** is the distinguished node is non-empty, **or** the same
//!    holds for **targets** (Lemma 3.2) — otherwise no single projected
//!    node can reach every distinguished node.
//!
//! When the test passes, the *trivial* consistent query takes, for each
//! predicate `l`, the maximum number `m` of `l`-edges in any single
//! explanation and emits `m` disjoint fresh-variable edges, projecting an
//! endpoint of an intersection-predicate edge (Figure 2b's `Q2`).
//!
//! Edge-free explanations are the degenerate case: if every explanation
//! is a bare node, the single-variable query is consistent; if only some
//! are, condition 1 already fails.

use std::collections::BTreeSet;
use std::sync::Arc;

use questpro_query::{QueryError, SimpleQuery};

use crate::pattern::PatternGraph;

/// Result of the PTIME existence test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrivialOutcome {
    /// A consistent simple query exists; here is the trivial one.
    Query(SimpleQuery),
    /// Condition 1 fails: explanations use different predicate sets.
    LabelSetsDiffer,
    /// Condition 2 (Lemma 3.2) fails: no shared distinguished-incident
    /// predicate on either side.
    NoSharedDistinguishedLabel,
}

impl TrivialOutcome {
    /// The query, if one exists.
    pub fn into_query(self) -> Option<SimpleQuery> {
        match self {
            TrivialOutcome::Query(q) => Some(q),
            _ => None,
        }
    }
}

/// Runs the Proposition 3.1 test/construction over pattern graphs.
///
/// # Panics
/// Panics if `graphs` is empty (an empty example-set has no well-defined
/// trivial query).
pub fn trivial_consistent_query(graphs: &[&PatternGraph]) -> TrivialOutcome {
    assert!(!graphs.is_empty(), "example-set must be non-empty");
    let first_labels = graphs[0].edge_label_set();
    for g in &graphs[1..] {
        if g.edge_label_set() != first_labels {
            return TrivialOutcome::LabelSetsDiffer;
        }
    }
    if first_labels.is_empty() {
        // All explanations are bare nodes: the single-variable query.
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.project(x);
        return TrivialOutcome::Query(expect_built(b.build()));
    }
    let src_common = intersect(graphs, PatternGraph::dis_source_labels);
    let tgt_common = intersect(graphs, PatternGraph::dis_target_labels);
    let (proj_label, proj_is_source) = match (src_common.first(), tgt_common.first()) {
        (Some(l), _) => (l.clone(), true),
        (None, Some(l)) => (l.clone(), false),
        (None, None) => return TrivialOutcome::NoSharedDistinguishedLabel,
    };

    let mut b = SimpleQuery::builder();
    let proj = b.var("x");
    b.project(proj);
    let mut first_of_proj_label = true;
    for label in &first_labels {
        let m = graphs
            .iter()
            .map(|g| g.count_label(label))
            .max()
            .expect("graphs is non-empty");
        for _ in 0..m {
            // The projected node sits on one edge of the shared
            // distinguished-incident predicate.
            if *label == proj_label && first_of_proj_label {
                first_of_proj_label = false;
                let other = b.fresh_var();
                if proj_is_source {
                    b.edge(proj, label, other);
                } else {
                    b.edge(other, label, proj);
                }
            } else {
                let s = b.fresh_var();
                let t = b.fresh_var();
                b.edge(s, label, t);
            }
        }
    }
    TrivialOutcome::Query(expect_built(b.build()))
}

fn intersect(
    graphs: &[&PatternGraph],
    side: impl Fn(&PatternGraph) -> BTreeSet<Arc<str>>,
) -> Vec<Arc<str>> {
    let mut acc = side(graphs[0]);
    for g in &graphs[1..] {
        let s = side(g);
        acc.retain(|l| s.contains(l));
    }
    acc.into_iter().collect()
}

fn expect_built(r: Result<SimpleQuery, QueryError>) -> SimpleQuery {
    r.expect("trivial query construction is always well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_engine::consistent_with_explanation;
    use questpro_graph::{Explanation, Ontology};

    fn world() -> (Ontology, Vec<Explanation>) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[
                ("paper1", "wb", "Alice"),
                ("paper1", "wb", "Bob"),
                ("paper2", "wb", "Bob"),
                ("paper2", "wb", "Carol"),
                ("paper3", "wb", "Carol"),
                ("paper3", "wb", "Erdos"),
            ],
            "Alice",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        (o, vec![e1, e2])
    }

    #[test]
    fn builds_disjoint_edge_query_like_figure_2b() {
        let (o, exs) = world();
        let g1 = PatternGraph::from_explanation(&o, &exs[0]);
        let g2 = PatternGraph::from_explanation(&o, &exs[1]);
        let q = trivial_consistent_query(&[&g1, &g2])
            .into_query()
            .expect("consistent query exists");
        // max wb count = 6 (E1), so 6 disjoint wb edges.
        assert_eq!(q.edge_count(), 6);
        assert!(!q.is_connected());
        assert_eq!(q.var_count(), q.node_count());
        // The construction is consistent with both explanations.
        assert!(consistent_with_explanation(&o, &q, &exs[0]));
        assert!(consistent_with_explanation(&o, &q, &exs[1]));
    }

    #[test]
    fn distinct_label_sets_are_rejected() {
        let mut b = Ontology::builder();
        b.edge("a", "wb", "x").unwrap();
        b.edge("c", "cites", "y").unwrap();
        let o = b.build();
        let e1 = Explanation::from_triples(&o, &[("a", "wb", "x")], "x").unwrap();
        let e2 = Explanation::from_triples(&o, &[("c", "cites", "y")], "y").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        assert_eq!(
            trivial_consistent_query(&[&g1, &g2]),
            TrivialOutcome::LabelSetsDiffer
        );
    }

    #[test]
    fn lemma_3_2_rejects_mismatched_distinguished_sides() {
        // E1 distinguishes a node that is only a wb-target; E2
        // distinguishes a node that is only a wb-source. Neither side's
        // intersection is non-empty → no simple consistent query.
        let mut b = Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        b.edge("p2", "wb", "Bob").unwrap();
        let o = b.build();
        let e1 = Explanation::from_triples(&o, &[("p1", "wb", "Alice")], "Alice").unwrap();
        let e2 = Explanation::from_triples(&o, &[("p2", "wb", "Bob")], "p2").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        assert_eq!(
            trivial_consistent_query(&[&g1, &g2]),
            TrivialOutcome::NoSharedDistinguishedLabel
        );
    }

    #[test]
    fn all_bare_nodes_yield_single_variable_query() {
        let mut b = Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        let o = b.build();
        let e1 = Explanation::from_edges(&o, [], "Alice").unwrap();
        let e2 = Explanation::from_edges(&o, [], "p1").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let q = trivial_consistent_query(&[&g1, &g2]).into_query().unwrap();
        assert_eq!(q.node_count(), 1);
        assert_eq!(q.edge_count(), 0);
        assert!(consistent_with_explanation(&o, &q, &e1));
        assert!(consistent_with_explanation(&o, &q, &e2));
    }

    #[test]
    fn mixed_bare_and_edged_explanations_fail_condition_1() {
        let (o, exs) = world();
        let bare = Explanation::from_edges(&o, [], "Alice").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &exs[0]);
        let g2 = PatternGraph::from_explanation(&o, &bare);
        assert_eq!(
            trivial_consistent_query(&[&g1, &g2]),
            TrivialOutcome::LabelSetsDiffer
        );
    }

    #[test]
    fn single_explanation_round_trips() {
        let (o, exs) = world();
        let g2 = PatternGraph::from_explanation(&o, &exs[1]);
        let q = trivial_consistent_query(&[&g2]).into_query().unwrap();
        assert_eq!(q.edge_count(), 2);
        assert!(consistent_with_explanation(&o, &q, &exs[1]));
    }
}
