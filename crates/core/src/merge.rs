//! Extension of Algorithm 1 to `n` explanations (end of Section III).
//!
//! Runs the pairwise greedy merge on every pair of graphs in the pool,
//! merges the pair whose complete relation has the **maximal gain**, and
//! repeats — merging explanations with explanations, explanations with
//! intermediate queries, and queries with queries — until one simple
//! query remains. Consistency w.r.t. the union of the underlying
//! example-sets is preserved by the composition-of-matches argument the
//! paper gives after Proposition 3.13.

use questpro_query::SimpleQuery;

use crate::greedy::{merge_pair, GreedyConfig, MergeOutcome};
use crate::pattern::PatternGraph;

/// Result of merging `n` pattern graphs into one simple query.
#[derive(Debug, Clone)]
pub struct MergeAllOutcome {
    /// The final consistent simple query.
    pub query: SimpleQuery,
    /// Number of Algorithm 1 invocations performed.
    pub algorithm1_calls: usize,
}

/// Greedily merges all graphs into a single simple query.
///
/// Returns `None` if some pair can never be merged (no consistent simple
/// query exists for the whole set), or if `graphs` is empty.
pub fn merge_all(graphs: &[PatternGraph], cfg: &GreedyConfig) -> Option<MergeAllOutcome> {
    let mut calls = 0usize;
    let mut pool: Vec<PatternGraph> = graphs.to_vec();
    if pool.is_empty() {
        return None;
    }
    if pool.len() == 1 {
        // A single graph merges with itself to produce its canonical
        // consistent query (constants kept, projected node generalized).
        let out = merge_pair(&pool[0], &pool[0], cfg)?;
        return Some(MergeAllOutcome {
            query: out.query,
            algorithm1_calls: 1,
        });
    }
    while pool.len() > 1 {
        let mut best: Option<(usize, usize, MergeOutcome)> = None;
        for i in 0..pool.len() {
            for j in (i + 1)..pool.len() {
                calls += 1;
                if let Some(out) = merge_pair(&pool[i], &pool[j], cfg) {
                    let better = match &best {
                        None => true,
                        Some((_, _, b)) => out.gain > b.gain,
                    };
                    if better {
                        best = Some((i, j, out));
                    }
                }
            }
        }
        let (i, j, out) = best?;
        // Replace graphs i and j (j > i) with the merged query's graph.
        pool.swap_remove(j);
        pool.swap_remove(i);
        pool.push(PatternGraph::from_query(&out.query));
        if pool.len() == 1 {
            return Some(MergeAllOutcome {
                query: out.query,
                algorithm1_calls: calls,
            });
        }
    }
    unreachable!("loop always returns when one graph remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_engine::consistent_with_explanation;
    use questpro_graph::{Explanation, Ontology};

    fn world() -> (Ontology, Vec<Explanation>) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper8", "Iris"),
            ("paper8", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let mk = |p: &str, a: &str| {
            Explanation::from_triples(&o, &[(p, "wb", a), (p, "wb", "Erdos")], a).unwrap()
        };
        let exs = vec![
            mk("paper3", "Carol"),
            mk("paper4", "Dave"),
            mk("paper8", "Iris"),
        ];
        (o, exs)
    }

    #[test]
    fn three_way_merge_stays_consistent() {
        let (o, exs) = world();
        let graphs: Vec<PatternGraph> = exs
            .iter()
            .map(|e| PatternGraph::from_explanation(&o, e))
            .collect();
        let out = merge_all(&graphs, &GreedyConfig::default()).expect("merge succeeds");
        for ex in &exs {
            assert!(consistent_with_explanation(&o, &out.query, ex));
        }
        // Three co-author-of-Erdos explanations → the Q3 shape.
        assert_eq!(out.query.edge_count(), 2);
        assert!(out.query.node_of_const("Erdos").is_some());
        // n=3 → first round 3 pairs, second round 1 pair.
        assert_eq!(out.algorithm1_calls, 4);
    }

    #[test]
    fn single_graph_produces_generalized_self_merge() {
        let (o, exs) = world();
        let g = PatternGraph::from_explanation(&o, &exs[0]);
        let out = merge_all(std::slice::from_ref(&g), &GreedyConfig::default()).unwrap();
        assert!(consistent_with_explanation(&o, &out.query, &exs[0]));
        assert_eq!(out.algorithm1_calls, 1);
        // Self-merge keeps all constants except the projected node.
        assert_eq!(out.query.generalization_vars(), 0);
    }

    #[test]
    fn unmergeable_pool_returns_none() {
        let mut b = Ontology::builder();
        b.edge("a", "wb", "x").unwrap();
        b.edge("c", "cites", "d").unwrap();
        let o = b.build();
        let e1 = Explanation::from_triples(&o, &[("a", "wb", "x")], "x").unwrap();
        let e2 = Explanation::from_triples(&o, &[("c", "cites", "d")], "d").unwrap();
        let graphs = vec![
            PatternGraph::from_explanation(&o, &e1),
            PatternGraph::from_explanation(&o, &e2),
        ];
        assert!(merge_all(&graphs, &GreedyConfig::default()).is_none());
    }

    #[test]
    fn empty_pool_returns_none() {
        assert!(merge_all(&[], &GreedyConfig::default()).is_none());
    }
}
