//! `BuildQuery`: assembling the minimum-variable consistent query from a
//! complete relation (Proposition 3.10, operations of Definition 3.7).
//!
//! Each chosen pair `(e1, e2)` contributes one query edge (operation 1).
//! The query's **nodes** are the equivalence classes of endpoint pairs
//! `(endpoint-in-G1, endpoint-in-G2)`: two query-edge endpoints are the
//! same node exactly when both their G1 components and their G2
//! components coincide — the maximal application of operation 3, which
//! is always consistency-preserving (the two projections stay onto
//! homomorphisms) and never increases the variable count. A class whose
//! two components carry the *same constant* becomes that constant
//! (operation 4, also applied maximally); all other classes get fresh
//! variables.
//!
//! The projected node is the class of the distinguished pair
//! `(dis(G1), dis(G2))` (operation 2); condition 4 of Def. 3.6
//! guarantees the class exists. It is forced to be a variable even when
//! both distinguished nodes carry the same constant, because the paper's
//! query model requires a variable projected node.
//!
//! **OPTIONAL extension** (the paper's future work): edges left
//! unpaired by the relation — input edges that are already optional,
//! and, in optional-tolerant mode, required edges whose predicate has no
//! counterpart on the other side — are carried into the merged query as
//! OPTIONAL edges. Their endpoints reuse an existing class that shares
//! the same one-sided coordinate when one exists (keeping the pattern
//! connected), and otherwise become one-sided classes labeled by their
//! own graph's node label. Consistency is preserved in both directions:
//! toward the edge's own side the optional edge maps onto the leftover
//! it came from (covering it), toward the other side it is skipped.

use questpro_graph::fxhash::FxHashMap;
use questpro_query::{QueryBuilder, QueryNodeId, SimpleQuery};

use crate::pattern::{PLabel, PatternGraph};

/// Builds the minimum-variable consistent simple query for a complete
/// relation over `(g1, g2)`. Optional input edges are carried over as
/// OPTIONAL; unpaired *required* edges are ignored (the relation is
/// assumed complete — validate with
/// [`crate::relation::is_complete_relation`] for untrusted input).
pub fn build_query(g1: &PatternGraph, g2: &PatternGraph, pairs: &[(usize, usize)]) -> SimpleQuery {
    assemble(g1, g2, pairs, false)
}

/// Like [`build_query`], but also carries unpaired **required** edges as
/// OPTIONAL edges — the optional-tolerant merge used when the two sides
/// have different predicate shapes.
pub fn build_query_with_optionals(
    g1: &PatternGraph,
    g2: &PatternGraph,
    pairs: &[(usize, usize)],
) -> SimpleQuery {
    assemble(g1, g2, pairs, true)
}

struct Classes {
    by_pair: FxHashMap<(u32, u32), QueryNodeId>,
    first_by_left: FxHashMap<u32, QueryNodeId>,
    first_by_right: FxHashMap<u32, QueryNodeId>,
}

impl Classes {
    fn pair_node(
        &mut self,
        b: &mut QueryBuilder,
        g1: &PatternGraph,
        g2: &PatternGraph,
        key: (u32, u32),
    ) -> QueryNodeId {
        if let Some(&n) = self.by_pair.get(&key) {
            return n;
        }
        let n = match (g1.label(key.0), g2.label(key.1)) {
            (PLabel::Const(x), PLabel::Const(y)) if x == y => b.constant(x),
            _ => b.fresh_var(),
        };
        self.register(key, n);
        n
    }

    fn register(&mut self, key: (u32, u32), n: QueryNodeId) {
        self.by_pair.insert(key, n);
        self.first_by_left.entry(key.0).or_insert(n);
        self.first_by_right.entry(key.1).or_insert(n);
    }

    fn left_node(&mut self, b: &mut QueryBuilder, g1: &PatternGraph, u: u32) -> QueryNodeId {
        if let Some(&n) = self.first_by_left.get(&u) {
            return n;
        }
        let n = match g1.label(u) {
            PLabel::Const(c) => b.constant(c),
            PLabel::Var => b.fresh_var(),
        };
        self.first_by_left.insert(u, n);
        n
    }

    fn right_node(&mut self, b: &mut QueryBuilder, g2: &PatternGraph, v: u32) -> QueryNodeId {
        if let Some(&n) = self.first_by_right.get(&v) {
            return n;
        }
        let n = match g2.label(v) {
            PLabel::Const(c) => b.constant(c),
            PLabel::Var => b.fresh_var(),
        };
        self.first_by_right.insert(v, n);
        n
    }
}

fn assemble(
    g1: &PatternGraph,
    g2: &PatternGraph,
    pairs: &[(usize, usize)],
    carry_required_leftovers: bool,
) -> SimpleQuery {
    let mut b = SimpleQuery::builder();
    let dis_key = (g1.dis(), g2.dis());
    // The projected class must be a variable, created first so its name
    // is stable.
    let proj = b.var("x");
    b.project(proj);
    let mut classes = Classes {
        by_pair: FxHashMap::default(),
        first_by_left: FxHashMap::default(),
        first_by_right: FxHashMap::default(),
    };
    classes.register(dis_key, proj);

    for &(e1, e2) in pairs {
        let ed1 = &g1.edges()[e1];
        let ed2 = &g2.edges()[e2];
        debug_assert_eq!(ed1.pred, ed2.pred, "relation pairs share predicates");
        let s = classes.pair_node(&mut b, g1, g2, (ed1.src, ed2.src));
        let t = classes.pair_node(&mut b, g1, g2, (ed1.dst, ed2.dst));
        b.edge(s, &ed1.pred, t);
    }

    // Leftovers become OPTIONAL edges: input-optional edges always,
    // unpaired required edges only in optional-tolerant mode.
    let mut covered1 = vec![false; g1.edge_count()];
    let mut covered2 = vec![false; g2.edge_count()];
    for &(e1, e2) in pairs {
        covered1[e1] = true;
        covered2[e2] = true;
    }
    for (i, e) in g1.edges().iter().enumerate() {
        if covered1[i] || (!e.optional && !carry_required_leftovers) {
            continue;
        }
        let s = classes.left_node(&mut b, g1, e.src);
        let t = classes.left_node(&mut b, g1, e.dst);
        b.optional_edge(s, &e.pred, t);
    }
    for (i, e) in g2.edges().iter().enumerate() {
        if covered2[i] || (!e.optional && !carry_required_leftovers) {
            continue;
        }
        let s = classes.right_node(&mut b, g2, e.src);
        let t = classes.right_node(&mut b, g2, e.dst);
        b.optional_edge(s, &e.pred, t);
    }

    b.build()
        .expect("relation-derived queries are always well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_engine::consistent_with_explanation;
    use questpro_graph::{Explanation, Ontology};

    /// E1, E2 of the paper's Figure 1 (both 1-chains to Erdos).
    fn world() -> (Ontology, Explanation, Explanation) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        (o, e1, e2)
    }

    fn edge_to(g: &PatternGraph, value: &str) -> usize {
        g.edges()
            .iter()
            .position(|e| g.label(e.dst).as_const() == Some(value))
            .unwrap()
    }

    #[test]
    fn aligned_relation_yields_shared_constant_and_joined_source() {
        let (o, e1, e2) = world();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let pairs = vec![
            (edge_to(&g1, "Carol"), edge_to(&g2, "Dave")),
            (edge_to(&g1, "Erdos"), edge_to(&g2, "Erdos")),
        ];
        let q = build_query(&g1, &g2, &pairs);
        assert_eq!(q.edge_count(), 2);
        assert_eq!(q.var_count(), 2); // ?x and the shared paper var
        assert_eq!(q.generalization_vars(), 1);
        assert!(q.node_of_const("Erdos").is_some());
        assert!(q.is_connected());
        assert!(consistent_with_explanation(&o, &q, &e1));
        assert!(consistent_with_explanation(&o, &q, &e2));
    }

    #[test]
    fn cross_relation_yields_more_variables() {
        let (o, e1, e2) = world();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let pairs = vec![
            (edge_to(&g1, "Carol"), edge_to(&g2, "Dave")),
            (edge_to(&g1, "Erdos"), edge_to(&g2, "Dave")),
            (edge_to(&g1, "Carol"), edge_to(&g2, "Erdos")),
        ];
        let q = build_query(&g1, &g2, &pairs);
        assert_eq!(q.node_of_const("Erdos"), None);
        assert!(q.var_count() > 2);
        assert!(consistent_with_explanation(&o, &q, &e1));
        assert!(consistent_with_explanation(&o, &q, &e2));
    }

    #[test]
    fn projected_class_is_variable_even_for_shared_constants() {
        let (o, e1, _) = world();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let pairs = vec![(0, 0), (1, 1)];
        let q = build_query(&g1, &g1, &pairs);
        assert!(q.label(q.projected()).is_var());
        assert_eq!(q.var_count(), 1);
        assert_eq!(q.generalization_vars(), 0);
        assert!(q.node_of_const("paper3").is_some());
        assert!(q.node_of_const("Erdos").is_some());
        assert!(consistent_with_explanation(&o, &q, &e1));
    }

    #[test]
    fn duplicate_pairs_do_not_duplicate_edges() {
        let (o, e1, e2) = world();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let p = (edge_to(&g1, "Carol"), edge_to(&g2, "Dave"));
        let q = build_query(
            &g1,
            &g2,
            &[p, p, (edge_to(&g1, "Erdos"), edge_to(&g2, "Erdos"))],
        );
        assert_eq!(q.edge_count(), 2);
    }

    #[test]
    fn leftover_required_edges_become_optional() {
        // E1 has a `genre`-style extra edge E2 lacks: merging with
        // optional tolerance keeps it as OPTIONAL, anchored to the
        // shared class via its left coordinate.
        let mut b = Ontology::builder();
        for (s, p, d) in [
            ("film1", "starring", "Ann"),
            ("film1", "genre", "Crime"),
            ("film2", "starring", "Ben"),
        ] {
            b.edge(s, p, d).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("film1", "starring", "Ann"), ("film1", "genre", "Crime")],
            "Ann",
        )
        .unwrap();
        let e2 = Explanation::from_triples(&o, &[("film2", "starring", "Ben")], "Ben").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let star1 = g1
            .edges()
            .iter()
            .position(|e| &*e.pred == "starring")
            .unwrap();
        let q = build_query_with_optionals(&g1, &g2, &[(star1, 0)]);
        assert_eq!(q.required_edge_count(), 1);
        assert_eq!(q.optional_edge_count(), 1);
        // The optional genre edge hangs off the shared film class, so
        // the pattern stays connected.
        assert!(q.is_connected());
        assert!(consistent_with_explanation(&o, &q, &e1));
        assert!(consistent_with_explanation(&o, &q, &e2));
    }
}
