//! Instrumentation counters for the inference algorithms.
//!
//! Figure 6 of the paper plots the "number of intermediate queries
//! considered" — the number of times Algorithm 2 calls Algorithm 1 inside
//! `MergeBestTwo`. [`InferenceStats`] tracks that counter plus a few
//! companions useful for the ablation benches, and — since the parallel
//! hot path landed — per-stage wall-clock timings and the consistency-
//! cache counters that feed `BENCH_1.json`.
//!
//! Equality (`PartialEq`/`Eq`) compares **only the deterministic
//! algorithmic counters**: wall-clock timings and the matcher's global
//! nodes-expanded delta vary run to run (and the latter is indicative
//! under concurrent use of the process-wide counter), so they are
//! excluded. Determinism tests can therefore assert `stats_a == stats_b`
//! across thread counts.

/// Counters accumulated during a union / top-k inference run.
#[derive(Debug, Clone, Copy, Default)]
pub struct InferenceStats {
    /// Number of Algorithm 1 invocations (the Figure 6 metric).
    pub algorithm1_calls: usize,
    /// Number of merges actually applied to some candidate state.
    pub merges_applied: usize,
    /// Number of candidate states examined by the top-k beam.
    pub states_examined: usize,
    /// Number of `MergeBestTwo` rounds executed.
    pub rounds: usize,
    /// Algorithm 1 invocations answered from the pairwise merge cache
    /// (still counted in `algorithm1_calls` — the Figure 6 metric).
    pub merge_cache_hits: usize,
    /// Merge-cache misses whose key was never seen before — the pair
    /// genuinely had to be computed for the first time.
    pub merge_cache_true_misses: usize,
    /// Merge-cache misses whose key *had* been computed earlier but was
    /// no longer resident (an eviction re-compute). Always 0 with the
    /// current unbounded cache — the counter exists to prove that the
    /// hit-rate ceiling comes from key canonicalization, not capacity.
    pub merge_cache_capacity_misses: usize,
    /// Consistency (onto-match) checks requested through the
    /// `questpro_engine::ConsistencyCache`.
    pub consistency_checks: usize,
    /// Consistency checks answered from the cache without re-running the
    /// matcher.
    pub consistency_cache_hits: usize,
    /// Matcher search-tree nodes expanded during this run (delta of the
    /// process-wide `questpro_engine::metrics` counter; **indicative
    /// only** when other threads drive matchers concurrently).
    pub matcher_nodes_expanded: u64,
    /// Wall-clock nanoseconds spent inside `MergeBestTwo` pair scans
    /// (the Algorithm 1 stage).
    pub merge_nanos: u128,
    /// Wall-clock nanoseconds spent in consistency checking.
    pub consistency_nanos: u128,
    /// Total wall-clock nanoseconds of the inference entry point.
    pub total_nanos: u128,
}

impl PartialEq for InferenceStats {
    /// Compares the deterministic counters only (see module docs).
    fn eq(&self, other: &Self) -> bool {
        self.algorithm1_calls == other.algorithm1_calls
            && self.merges_applied == other.merges_applied
            && self.states_examined == other.states_examined
            && self.rounds == other.rounds
            && self.merge_cache_hits == other.merge_cache_hits
            && self.merge_cache_true_misses == other.merge_cache_true_misses
            && self.merge_cache_capacity_misses == other.merge_cache_capacity_misses
            && self.consistency_checks == other.consistency_checks
            && self.consistency_cache_hits == other.consistency_cache_hits
    }
}

impl Eq for InferenceStats {}

impl InferenceStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: InferenceStats) {
        self.algorithm1_calls += other.algorithm1_calls;
        self.merges_applied += other.merges_applied;
        self.states_examined += other.states_examined;
        self.rounds += other.rounds;
        self.merge_cache_hits += other.merge_cache_hits;
        self.merge_cache_true_misses += other.merge_cache_true_misses;
        self.merge_cache_capacity_misses += other.merge_cache_capacity_misses;
        self.consistency_checks += other.consistency_checks;
        self.consistency_cache_hits += other.consistency_cache_hits;
        self.matcher_nodes_expanded += other.matcher_nodes_expanded;
        self.merge_nanos += other.merge_nanos;
        self.consistency_nanos += other.consistency_nanos;
        self.total_nanos += other.total_nanos;
    }

    /// `consistency_cache_hits / consistency_checks`, or 0 when no check
    /// ran.
    pub fn consistency_hit_rate(&self) -> f64 {
        if self.consistency_checks == 0 {
            0.0
        } else {
            self.consistency_cache_hits as f64 / self.consistency_checks as f64
        }
    }

    /// Total pairwise merge-cache lookups: hits plus both miss kinds.
    pub fn merge_cache_lookups(&self) -> usize {
        self.merge_cache_hits + self.merge_cache_true_misses + self.merge_cache_capacity_misses
    }

    /// Consistency-cache lookups that had to run the matcher.
    pub fn consistency_cache_misses(&self) -> usize {
        self.consistency_checks
            .saturating_sub(self.consistency_cache_hits)
    }

    /// `merge_cache_hits / algorithm1_calls`, or 0 when no call ran.
    pub fn merge_hit_rate(&self) -> f64 {
        if self.algorithm1_calls == 0 {
            0.0
        } else {
            self.merge_cache_hits as f64 / self.algorithm1_calls as f64
        }
    }
}

// ---------------------------------------------------------------------
// Process-wide cumulative counters
// ---------------------------------------------------------------------

use std::sync::atomic::{AtomicU64, Ordering};

static RUNS: AtomicU64 = AtomicU64::new(0);
static ALGORITHM1_CALLS: AtomicU64 = AtomicU64::new(0);
static MERGES_APPLIED: AtomicU64 = AtomicU64::new(0);
static STATES_EXAMINED: AtomicU64 = AtomicU64::new(0);
static MERGE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static TOTAL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Cumulative inference totals for this process.
///
/// Per-run [`InferenceStats`] values reset with every call — useful for
/// determinism assertions, useless for a scrape endpoint that wants
/// counters to only ever go up. Every `infer_top_k` run folds its
/// deterministic counters into these **monotonic** relaxed atomics;
/// `questpro-server` exports them at `GET /metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalStats {
    /// Completed top-k inference runs.
    pub runs: u64,
    /// Algorithm 1 invocations across all runs.
    pub algorithm1_calls: u64,
    /// Merges applied across all runs.
    pub merges_applied: u64,
    /// Beam states examined across all runs.
    pub states_examined: u64,
    /// Pairwise merge-cache hits across all runs.
    pub merge_cache_hits: u64,
    /// Wall-clock nanoseconds spent inside inference entry points
    /// (saturated at `u64::MAX`; sums of concurrent runs can exceed
    /// elapsed process time).
    pub total_nanos: u64,
}

/// Snapshots the process-wide cumulative inference counters.
pub fn global_stats() -> GlobalStats {
    GlobalStats {
        runs: RUNS.load(Ordering::Relaxed),
        algorithm1_calls: ALGORITHM1_CALLS.load(Ordering::Relaxed),
        merges_applied: MERGES_APPLIED.load(Ordering::Relaxed),
        states_examined: STATES_EXAMINED.load(Ordering::Relaxed),
        merge_cache_hits: MERGE_CACHE_HITS.load(Ordering::Relaxed),
        total_nanos: TOTAL_NANOS.load(Ordering::Relaxed),
    }
}

/// Folds one finished run into the process-wide totals.
pub(crate) fn record_global(stats: &InferenceStats) {
    RUNS.fetch_add(1, Ordering::Relaxed);
    ALGORITHM1_CALLS.fetch_add(stats.algorithm1_calls as u64, Ordering::Relaxed);
    MERGES_APPLIED.fetch_add(stats.merges_applied as u64, Ordering::Relaxed);
    STATES_EXAMINED.fetch_add(stats.states_examined as u64, Ordering::Relaxed);
    MERGE_CACHE_HITS.fetch_add(stats.merge_cache_hits as u64, Ordering::Relaxed);
    TOTAL_NANOS.fetch_add(
        u64::try_from(stats.total_nanos).unwrap_or(u64::MAX),
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = InferenceStats {
            algorithm1_calls: 3,
            merges_applied: 1,
            states_examined: 2,
            rounds: 1,
            merge_cache_hits: 1,
            merge_cache_true_misses: 2,
            merge_cache_capacity_misses: 0,
            consistency_checks: 4,
            consistency_cache_hits: 2,
            matcher_nodes_expanded: 10,
            merge_nanos: 100,
            consistency_nanos: 50,
            total_nanos: 200,
        };
        a.absorb(InferenceStats {
            algorithm1_calls: 4,
            merges_applied: 2,
            states_examined: 5,
            rounds: 2,
            merge_cache_hits: 2,
            merge_cache_true_misses: 2,
            merge_cache_capacity_misses: 1,
            consistency_checks: 6,
            consistency_cache_hits: 3,
            matcher_nodes_expanded: 5,
            merge_nanos: 11,
            consistency_nanos: 7,
            total_nanos: 23,
        });
        assert_eq!(a.algorithm1_calls, 7);
        assert_eq!(a.merges_applied, 3);
        assert_eq!(a.states_examined, 7);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.merge_cache_hits, 3);
        assert_eq!(a.merge_cache_true_misses, 4);
        assert_eq!(a.merge_cache_capacity_misses, 1);
        assert_eq!(a.consistency_checks, 10);
        assert_eq!(a.consistency_cache_hits, 5);
        assert_eq!(a.matcher_nodes_expanded, 15);
        assert_eq!(a.merge_nanos, 111);
        assert_eq!(a.consistency_nanos, 57);
        assert_eq!(a.total_nanos, 223);
    }

    #[test]
    fn equality_ignores_timings_and_matcher_delta() {
        let a = InferenceStats {
            algorithm1_calls: 3,
            total_nanos: 99,
            matcher_nodes_expanded: 7,
            ..Default::default()
        };
        let b = InferenceStats {
            algorithm1_calls: 3,
            total_nanos: 12345,
            matcher_nodes_expanded: 0,
            ..Default::default()
        };
        assert_eq!(a, b);
        let c = InferenceStats {
            algorithm1_calls: 4,
            ..Default::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn global_counters_are_monotonic() {
        let before = global_stats();
        record_global(&InferenceStats {
            algorithm1_calls: 2,
            states_examined: 3,
            total_nanos: 10,
            ..Default::default()
        });
        let after = global_stats();
        // Other tests may record runs concurrently: lower bounds only.
        assert!(after.runs > before.runs);
        assert!(after.algorithm1_calls >= before.algorithm1_calls + 2);
        assert!(after.states_examined >= before.states_examined + 3);
        assert!(after.total_nanos >= before.total_nanos + 10);
    }

    #[test]
    fn hit_rates() {
        let s = InferenceStats {
            algorithm1_calls: 4,
            merge_cache_hits: 1,
            consistency_checks: 8,
            consistency_cache_hits: 6,
            ..Default::default()
        };
        assert!((s.merge_hit_rate() - 0.25).abs() < 1e-12);
        assert!((s.consistency_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(InferenceStats::default().merge_hit_rate(), 0.0);
        assert_eq!(InferenceStats::default().consistency_hit_rate(), 0.0);
    }
}
