//! Instrumentation counters for the inference algorithms.
//!
//! Figure 6 of the paper plots the "number of intermediate queries
//! considered" — the number of times Algorithm 2 calls Algorithm 1 inside
//! `MergeBestTwo`. [`InferenceStats`] tracks that counter plus a few
//! companions useful for the ablation benches.

/// Counters accumulated during a union / top-k inference run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferenceStats {
    /// Number of Algorithm 1 invocations (the Figure 6 metric).
    pub algorithm1_calls: usize,
    /// Number of merges actually applied to some candidate state.
    pub merges_applied: usize,
    /// Number of candidate states examined by the top-k beam.
    pub states_examined: usize,
    /// Number of `MergeBestTwo` rounds executed.
    pub rounds: usize,
    /// Algorithm 1 invocations answered from the pairwise merge cache
    /// (still counted in `algorithm1_calls` — the Figure 6 metric).
    pub merge_cache_hits: usize,
}

impl InferenceStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: InferenceStats) {
        self.algorithm1_calls += other.algorithm1_calls;
        self.merges_applied += other.merges_applied;
        self.states_examined += other.states_examined;
        self.rounds += other.rounds;
        self.merge_cache_hits += other.merge_cache_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = InferenceStats {
            algorithm1_calls: 3,
            merges_applied: 1,
            states_examined: 2,
            rounds: 1,
            merge_cache_hits: 1,
        };
        a.absorb(InferenceStats {
            algorithm1_calls: 4,
            merges_applied: 2,
            states_examined: 5,
            rounds: 2,
            merge_cache_hits: 2,
        });
        assert_eq!(a.algorithm1_calls, 7);
        assert_eq!(a.merges_applied, 3);
        assert_eq!(a.states_examined, 7);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.merge_cache_hits, 3);
    }
}
