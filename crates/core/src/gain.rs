//! The dynamic gain function of Definition 3.11.
//!
//! For a candidate pair `(e1, e2)` of same-predicate edges and the
//! current partial relation `R`, the gain is a weighted sum of three
//! criteria:
//!
//! * `c1` — **constant agreement**: 1 point for the sources carrying the
//!   same constant, 1 for the targets (prefers pairing edges that will
//!   later yield constants instead of variables);
//! * `c2` — **freshness**: 2 if neither edge is paired yet, 1 if one is,
//!   0 if both are (prefers extending coverage over re-pairing);
//! * `c3` — **neighborhood**: 1 point if the source pair was already
//!   matched by some chosen pair, 1 for the target pair (pairing edges
//!   adjacent to already-merged nodes saves future variables).
//!
//! Pairs with different predicates are invalid (the paper assigns `−1`;
//! we return `None`). The paper fixes the weights to `w1=3, w2=15, w3=1`
//! in Section VI; [`GainWeights::default`] matches that.

use crate::pattern::{PLabel, PatternGraph};
use crate::relation::PartialRelation;

/// Weights `(w1, w2, w3)` of the gain criteria.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainWeights {
    /// Weight of constant agreement (`c1`).
    pub w1: f64,
    /// Weight of freshness (`c2`).
    pub w2: f64,
    /// Weight of neighborhood (`c3`).
    pub w3: f64,
}

impl GainWeights {
    /// Creates a weight triple.
    pub fn new(w1: f64, w2: f64, w3: f64) -> Self {
        Self { w1, w2, w3 }
    }

    /// The paper's weights: `w1=3, w2=15, w3=1` (Section VI).
    pub fn paper() -> Self {
        Self::new(3.0, 15.0, 1.0)
    }
}

impl Default for GainWeights {
    fn default() -> Self {
        Self::paper()
    }
}

/// Computes the gain `G(R, e1, e2)`; `None` when the predicates differ
/// (an invalid pair — the paper's `−1`).
pub fn gain(
    w: GainWeights,
    g1: &PatternGraph,
    g2: &PatternGraph,
    r: &PartialRelation,
    e1: usize,
    e2: usize,
) -> Option<f64> {
    let ed1 = &g1.edges()[e1];
    let ed2 = &g2.edges()[e2];
    if ed1.pred != ed2.pred {
        return None;
    }
    let c1 = same_const(g1.label(ed1.src), g2.label(ed2.src)) as u32
        + same_const(g1.label(ed1.dst), g2.label(ed2.dst)) as u32;
    let c2 = (!r.is_paired1(e1)) as u32 + (!r.is_paired2(e2)) as u32;
    let c3 = r.sources_paired(ed1.src, ed2.src) as u32 + r.targets_paired(ed1.dst, ed2.dst) as u32;
    Some(w.w1 * c1 as f64 + w.w2 * c2 as f64 + w.w3 * c3 as f64)
}

/// Whether two pattern labels are the *same constant*. Variables never
/// agree — a variable endpoint always yields a fresh variable in the
/// merged query.
fn same_const(a: &PLabel, b: &PLabel) -> bool {
    match (a, b) {
        (PLabel::Const(x), PLabel::Const(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::{Explanation, Ontology};

    /// E1 = Figure 1a (Alice's chain), E2 = Figure 1b (Dave's chain):
    /// both end at Erdos.
    fn graphs() -> (PatternGraph, PatternGraph) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        (
            PatternGraph::from_explanation(&o, &e1),
            PatternGraph::from_explanation(&o, &e2),
        )
    }

    fn edge_to(g: &PatternGraph, value: &str) -> usize {
        g.edges()
            .iter()
            .position(|e| g.label(e.dst).as_const() == Some(value))
            .unwrap()
    }

    #[test]
    fn example_3_12_arithmetic() {
        // With R = {((paper3,Carol),(paper4,Dave))}, the pair
        // ((paper3,Erdos),(paper4,Erdos)) gains w1·1 + w2·2 + w3·1.
        let (g1, g2) = graphs();
        let w = GainWeights::paper();
        let carol = edge_to(&g1, "Carol");
        let dave = edge_to(&g2, "Dave");
        let erdos1 = edge_to(&g1, "Erdos");
        let erdos2 = edge_to(&g2, "Erdos");
        let mut r = PartialRelation::new(g1.edge_count(), g2.edge_count());
        let g0 = gain(w, &g1, &g2, &r, carol, dave).unwrap();
        r.push(&g1, &g2, carol, dave, g0);
        let got = gain(w, &g1, &g2, &r, erdos1, erdos2).unwrap();
        assert_eq!(got, 3.0 * 1.0 + 15.0 * 2.0 + 1.0 * 1.0);
    }

    #[test]
    fn c1_counts_shared_constants() {
        let (g1, g2) = graphs();
        let w = GainWeights::new(1.0, 0.0, 0.0);
        let r = PartialRelation::new(g1.edge_count(), g2.edge_count());
        let erdos1 = edge_to(&g1, "Erdos");
        let erdos2 = edge_to(&g2, "Erdos");
        let carol = edge_to(&g1, "Carol");
        let dave = edge_to(&g2, "Dave");
        // (paper3→Erdos, paper4→Erdos): only targets agree → 1.
        assert_eq!(gain(w, &g1, &g2, &r, erdos1, erdos2), Some(1.0));
        // (paper3→Carol, paper4→Dave): nothing agrees → 0.
        assert_eq!(gain(w, &g1, &g2, &r, carol, dave), Some(0.0));
    }

    #[test]
    fn c2_penalizes_already_paired_edges() {
        let (g1, g2) = graphs();
        let w = GainWeights::new(0.0, 1.0, 0.0);
        let carol = edge_to(&g1, "Carol");
        let dave = edge_to(&g2, "Dave");
        let erdos1 = edge_to(&g1, "Erdos");
        let erdos2 = edge_to(&g2, "Erdos");
        let mut r = PartialRelation::new(g1.edge_count(), g2.edge_count());
        assert_eq!(gain(w, &g1, &g2, &r, carol, dave), Some(2.0));
        r.push(&g1, &g2, carol, dave, 2.0);
        assert_eq!(gain(w, &g1, &g2, &r, carol, erdos2), Some(1.0));
        assert_eq!(gain(w, &g1, &g2, &r, carol, dave), Some(0.0));
        let _ = (erdos1,);
    }

    #[test]
    fn c3_rewards_matched_neighborhoods() {
        let (g1, g2) = graphs();
        let w = GainWeights::new(0.0, 0.0, 1.0);
        let carol = edge_to(&g1, "Carol");
        let dave = edge_to(&g2, "Dave");
        let erdos1 = edge_to(&g1, "Erdos");
        let erdos2 = edge_to(&g2, "Erdos");
        let mut r = PartialRelation::new(g1.edge_count(), g2.edge_count());
        assert_eq!(gain(w, &g1, &g2, &r, erdos1, erdos2), Some(0.0));
        r.push(&g1, &g2, carol, dave, 0.0);
        // Sources (paper3,paper4) now matched → c3 = 1.
        assert_eq!(gain(w, &g1, &g2, &r, erdos1, erdos2), Some(1.0));
    }

    #[test]
    fn mismatched_predicates_are_invalid() {
        let mut b = Ontology::builder();
        b.edge("a", "wb", "x").unwrap();
        b.edge("a", "cites", "y").unwrap();
        let o = b.build();
        let e1 = Explanation::from_triples(&o, &[("a", "wb", "x")], "x").unwrap();
        let e2 = Explanation::from_triples(&o, &[("a", "cites", "y")], "y").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let r = PartialRelation::new(1, 1);
        assert_eq!(gain(GainWeights::paper(), &g1, &g2, &r, 0, 0), None);
    }
}
