//! Complete relations between two pattern graphs (Definition 3.6).
//!
//! A complete relation `R ⊆ E(G1) × E(G2)` pairs edges that a single
//! query edge will later map to. It must (1) pair only same-predicate
//! edges, (2)–(3) cover both edge sets, and (4) contain a pair whose
//! sources — or targets — are the two distinguished nodes.
//!
//! [`PartialRelation`] is the growing relation inside Algorithm 1, with
//! the bookkeeping the dynamic gain function needs: which edges are
//! already paired (criterion `c2`) and which source/target node pairs
//! have already been matched (criterion `c3`).

use std::collections::HashSet;

use crate::pattern::PatternGraph;

/// A growing edge relation between two pattern graphs, with the
/// incremental state used by the gain function.
#[derive(Debug, Clone)]
pub struct PartialRelation {
    pairs: Vec<(usize, usize)>,
    paired1: Vec<bool>,
    paired2: Vec<bool>,
    unpaired1: usize,
    unpaired2: usize,
    /// Source-node pairs `(src(e1), src(e2))` of chosen pairs.
    src_pairs: HashSet<(u32, u32)>,
    /// Target-node pairs `(dst(e1), dst(e2))` of chosen pairs.
    tgt_pairs: HashSet<(u32, u32)>,
    has_dis_pair: bool,
    total_gain: f64,
}

impl PartialRelation {
    /// An empty relation over graphs with `m1` and `m2` edges.
    pub fn new(m1: usize, m2: usize) -> Self {
        Self {
            pairs: Vec::new(),
            paired1: vec![false; m1],
            paired2: vec![false; m2],
            unpaired1: m1,
            unpaired2: m2,
            src_pairs: HashSet::new(),
            tgt_pairs: HashSet::new(),
            has_dis_pair: false,
            total_gain: 0.0,
        }
    }

    /// An empty relation over two pattern graphs where the graphs'
    /// OPTIONAL edges are pre-marked as satisfied: completeness
    /// (`all_paired`) only demands the *required* edges, since optional
    /// edges are carried into the merged query as-is rather than paired.
    pub fn for_graphs(g1: &PatternGraph, g2: &PatternGraph) -> Self {
        let mut r = Self::new(g1.edge_count(), g2.edge_count());
        for (i, e) in g1.edges().iter().enumerate() {
            if e.optional {
                r.paired1[i] = true;
                r.unpaired1 -= 1;
            }
        }
        for (i, e) in g2.edges().iter().enumerate() {
            if e.optional {
                r.paired2[i] = true;
                r.unpaired2 -= 1;
            }
        }
        r
    }

    /// The chosen pairs, in choice order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Whether edge `e1` of the first graph is already paired.
    pub fn is_paired1(&self, e1: usize) -> bool {
        self.paired1[e1]
    }

    /// Whether edge `e2` of the second graph is already paired.
    pub fn is_paired2(&self, e2: usize) -> bool {
        self.paired2[e2]
    }

    /// Whether the source-node pair has been matched by a chosen pair.
    pub fn sources_paired(&self, s1: u32, s2: u32) -> bool {
        self.src_pairs.contains(&(s1, s2))
    }

    /// Whether the target-node pair has been matched by a chosen pair.
    pub fn targets_paired(&self, t1: u32, t2: u32) -> bool {
        self.tgt_pairs.contains(&(t1, t2))
    }

    /// Whether every edge on both sides is covered (conditions 2–3).
    pub fn all_paired(&self) -> bool {
        self.unpaired1 == 0 && self.unpaired2 == 0
    }

    /// Whether a distinguished pair was chosen (condition 4).
    pub fn has_dis_pair(&self) -> bool {
        self.has_dis_pair
    }

    /// Accumulated gain of the choices (`curGain` in Algorithm 1).
    pub fn total_gain(&self) -> f64 {
        self.total_gain
    }

    /// Number of chosen pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair has been chosen yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Records the choice of `(e1, e2)` with the gain it was chosen at.
    pub fn push(&mut self, g1: &PatternGraph, g2: &PatternGraph, e1: usize, e2: usize, gain: f64) {
        let ed1 = &g1.edges()[e1];
        let ed2 = &g2.edges()[e2];
        debug_assert_eq!(ed1.pred, ed2.pred, "pairs must share a predicate");
        if !self.paired1[e1] {
            self.paired1[e1] = true;
            self.unpaired1 -= 1;
        }
        if !self.paired2[e2] {
            self.paired2[e2] = true;
            self.unpaired2 -= 1;
        }
        self.src_pairs.insert((ed1.src, ed2.src));
        self.tgt_pairs.insert((ed1.dst, ed2.dst));
        if pair_touches_dis(g1, g2, e1, e2) {
            self.has_dis_pair = true;
        }
        self.total_gain += gain;
        self.pairs.push((e1, e2));
    }
}

/// Whether the pair `(e1, e2)` satisfies Def. 3.6's condition 4: both
/// sources, or both targets, are the distinguished nodes of their graphs.
pub fn pair_touches_dis(g1: &PatternGraph, g2: &PatternGraph, e1: usize, e2: usize) -> bool {
    (g1.edge_touches_dis(e1, true) && g2.edge_touches_dis(e2, true))
        || (g1.edge_touches_dis(e1, false) && g2.edge_touches_dis(e2, false))
}

/// A set of node pairs `(n1, n2) ∈ V(G1) × V(G2)` as a flat bitset.
///
/// Pattern graphs are small (node counts in the tens), so the full
/// `n1 × n2` pair space fits in a handful of `u64` words and the
/// membership test the gain function runs in its innermost loop becomes
/// one shift/AND instead of a hash probe.
#[derive(Debug, Clone)]
pub struct NodePairSet {
    words: Vec<u64>,
    n2: usize,
}

impl NodePairSet {
    /// An empty set over the `n1 × n2` pair space.
    pub fn new(n1: usize, n2: usize) -> Self {
        Self {
            words: vec![0u64; (n1 * n2).div_ceil(64)],
            n2,
        }
    }

    /// Removes every pair without releasing the backing words.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    #[inline]
    fn bit(&self, a: u32, b: u32) -> usize {
        a as usize * self.n2 + b as usize
    }

    /// Inserts the pair `(a, b)`.
    #[inline]
    pub fn insert(&mut self, a: u32, b: u32) {
        let i = self.bit(a, b);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether the pair `(a, b)` is in the set.
    #[inline]
    pub fn contains(&self, a: u32, b: u32) -> bool {
        let i = self.bit(a, b);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }
}

/// The bookkeeping of [`PartialRelation`] with the hash sets replaced
/// by [`NodePairSet`] bitsets — the representation Algorithm 1's inner
/// loop runs on (`crate::greedy`). Unlike [`PartialRelation`] it needs
/// the graphs' *node* counts up front, which is why it is a separate
/// type rather than a change to the public one.
#[derive(Debug, Clone)]
pub struct FastRelation {
    pairs: Vec<(usize, usize)>,
    paired1: Vec<bool>,
    paired2: Vec<bool>,
    unpaired1: usize,
    unpaired2: usize,
    src_pairs: NodePairSet,
    tgt_pairs: NodePairSet,
    has_dis_pair: bool,
    total_gain: f64,
}

impl FastRelation {
    /// An empty relation over two pattern graphs, with OPTIONAL edges
    /// pre-marked as satisfied (same contract as
    /// [`PartialRelation::for_graphs`]).
    pub fn for_graphs(g1: &PatternGraph, g2: &PatternGraph) -> Self {
        let mut paired1 = vec![false; g1.edge_count()];
        let mut paired2 = vec![false; g2.edge_count()];
        let mut unpaired1 = g1.edge_count();
        let mut unpaired2 = g2.edge_count();
        for (i, e) in g1.edges().iter().enumerate() {
            if e.optional {
                paired1[i] = true;
                unpaired1 -= 1;
            }
        }
        for (i, e) in g2.edges().iter().enumerate() {
            if e.optional {
                paired2[i] = true;
                unpaired2 -= 1;
            }
        }
        Self {
            pairs: Vec::new(),
            paired1,
            paired2,
            unpaired1,
            unpaired2,
            src_pairs: NodePairSet::new(g1.node_count(), g2.node_count()),
            tgt_pairs: NodePairSet::new(g1.node_count(), g2.node_count()),
            has_dis_pair: false,
            total_gain: 0.0,
        }
    }

    /// Resets to the just-constructed state (OPTIONAL edges re-marked
    /// as satisfied) while keeping every allocation — the
    /// diversification loop runs one relation per iteration and this
    /// avoids reallocating the bitsets each time.
    pub fn clear(&mut self, g1: &PatternGraph, g2: &PatternGraph) {
        self.pairs.clear();
        self.unpaired1 = 0;
        self.unpaired2 = 0;
        for (i, e) in g1.edges().iter().enumerate() {
            self.paired1[i] = e.optional;
            self.unpaired1 += usize::from(!e.optional);
        }
        for (i, e) in g2.edges().iter().enumerate() {
            self.paired2[i] = e.optional;
            self.unpaired2 += usize::from(!e.optional);
        }
        self.src_pairs.clear();
        self.tgt_pairs.clear();
        self.has_dis_pair = false;
        self.total_gain = 0.0;
    }

    /// The chosen pairs, in choice order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Whether edge `e1` of the first graph is already paired.
    #[inline]
    pub fn is_paired1(&self, e1: usize) -> bool {
        self.paired1[e1]
    }

    /// Whether edge `e2` of the second graph is already paired.
    #[inline]
    pub fn is_paired2(&self, e2: usize) -> bool {
        self.paired2[e2]
    }

    /// Whether the source-node pair has been matched by a chosen pair.
    #[inline]
    pub fn sources_paired(&self, s1: u32, s2: u32) -> bool {
        self.src_pairs.contains(s1, s2)
    }

    /// Whether the target-node pair has been matched by a chosen pair.
    #[inline]
    pub fn targets_paired(&self, t1: u32, t2: u32) -> bool {
        self.tgt_pairs.contains(t1, t2)
    }

    /// Whether every edge on both sides is covered (conditions 2–3).
    pub fn all_paired(&self) -> bool {
        self.unpaired1 == 0 && self.unpaired2 == 0
    }

    /// Whether a distinguished pair was chosen (condition 4).
    pub fn has_dis_pair(&self) -> bool {
        self.has_dis_pair
    }

    /// Accumulated gain of the choices (`curGain` in Algorithm 1).
    pub fn total_gain(&self) -> f64 {
        self.total_gain
    }

    /// Records the choice of `(e1, e2)`. The caller supplies the node
    /// endpoints and the distinguished-pair flag (precomputed per
    /// candidate pair by `crate::greedy`) along with the chosen gain.
    #[inline]
    pub fn push(
        &mut self,
        e1: usize,
        e2: usize,
        ends: (u32, u32, u32, u32),
        touches_dis: bool,
        gain: f64,
    ) {
        let (s1, s2, t1, t2) = ends;
        if !self.paired1[e1] {
            self.paired1[e1] = true;
            self.unpaired1 -= 1;
        }
        if !self.paired2[e2] {
            self.paired2[e2] = true;
            self.unpaired2 -= 1;
        }
        self.src_pairs.insert(s1, s2);
        self.tgt_pairs.insert(t1, t2);
        if touches_dis {
            self.has_dis_pair = true;
        }
        self.total_gain += gain;
        self.pairs.push((e1, e2));
    }
}

/// Validates that `pairs` forms a complete relation over `(g1, g2)`
/// (all four conditions of Def. 3.6).
pub fn is_complete_relation(
    g1: &PatternGraph,
    g2: &PatternGraph,
    pairs: &[(usize, usize)],
) -> bool {
    let mut covered1 = vec![false; g1.edge_count()];
    let mut covered2 = vec![false; g2.edge_count()];
    let mut has_dis = false;
    for &(e1, e2) in pairs {
        if e1 >= g1.edge_count() || e2 >= g2.edge_count() {
            return false;
        }
        if g1.edges()[e1].pred != g2.edges()[e2].pred {
            return false;
        }
        covered1[e1] = true;
        covered2[e2] = true;
        has_dis |= pair_touches_dis(g1, g2, e1, e2);
    }
    has_dis && covered1.iter().all(|&c| c) && covered2.iter().all(|&c| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::{Explanation, Ontology};

    fn graphs() -> (PatternGraph, PatternGraph) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        (
            PatternGraph::from_explanation(&o, &e1),
            PatternGraph::from_explanation(&o, &e2),
        )
    }

    fn edge_to(g: &PatternGraph, value: &str) -> usize {
        g.edges()
            .iter()
            .position(|e| g.label(e.dst).as_const() == Some(value))
            .unwrap()
    }

    #[test]
    fn aligned_pairs_form_complete_relation() {
        let (g1, g2) = graphs();
        let carol = edge_to(&g1, "Carol");
        let erdos1 = edge_to(&g1, "Erdos");
        let dave = edge_to(&g2, "Dave");
        let erdos2 = edge_to(&g2, "Erdos");
        let pairs = vec![(carol, dave), (erdos1, erdos2)];
        assert!(is_complete_relation(&g1, &g2, &pairs));
        // Missing coverage on one side is incomplete.
        assert!(!is_complete_relation(&g1, &g2, &pairs[..1]));
    }

    #[test]
    fn dis_pair_is_required() {
        let (g1, g2) = graphs();
        let carol = edge_to(&g1, "Carol");
        let erdos1 = edge_to(&g1, "Erdos");
        let dave = edge_to(&g2, "Dave");
        let erdos2 = edge_to(&g2, "Erdos");
        // Cross pairing: Carol-edge with Erdos-edge etc. Both sides are
        // covered but no pair has both distinguished endpoints.
        let pairs = vec![(carol, erdos2), (erdos1, dave)];
        assert!(!is_complete_relation(&g1, &g2, &pairs));
    }

    #[test]
    fn partial_relation_tracks_state() {
        let (g1, g2) = graphs();
        let carol = edge_to(&g1, "Carol");
        let erdos1 = edge_to(&g1, "Erdos");
        let dave = edge_to(&g2, "Dave");
        let erdos2 = edge_to(&g2, "Erdos");

        let mut r = PartialRelation::new(g1.edge_count(), g2.edge_count());
        assert!(r.is_empty());
        assert!(!r.all_paired());
        r.push(&g1, &g2, carol, dave, 10.0);
        assert!(r.has_dis_pair());
        assert!(r.is_paired1(carol));
        assert!(!r.is_paired1(erdos1));
        // paper3/paper4 are now a matched source pair.
        let s1 = g1.edges()[carol].src;
        let s2 = g2.edges()[dave].src;
        assert!(r.sources_paired(s1, s2));
        r.push(&g1, &g2, erdos1, erdos2, 5.0);
        assert!(r.all_paired());
        assert_eq!(r.total_gain(), 15.0);
        assert_eq!(r.len(), 2);
        assert!(is_complete_relation(&g1, &g2, r.pairs()));
    }

    #[test]
    fn repeated_edges_do_not_double_count_coverage() {
        let (g1, g2) = graphs();
        let carol = edge_to(&g1, "Carol");
        let dave = edge_to(&g2, "Dave");
        let erdos2 = edge_to(&g2, "Erdos");
        let mut r = PartialRelation::new(g1.edge_count(), g2.edge_count());
        r.push(&g1, &g2, carol, dave, 1.0);
        r.push(&g1, &g2, carol, erdos2, 1.0);
        // g2 fully covered; g1's Erdos edge still unpaired.
        assert!(!r.all_paired());
        assert_eq!(r.len(), 2);
    }
}
