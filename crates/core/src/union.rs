//! Algorithm 2: `FindConsistentUnion` (Section IV).
//!
//! Starts from the trivial over-fit union — one constants-only branch per
//! explanation — and repeatedly merges the two branches whose merged
//! query has the fewest variables (`MergeBestTwo`), as long as the
//! generalization cost `f(Q) = w1·Σvars + w2·|Q|` (Def. 4.1) keeps
//! decreasing.

use questpro_engine::par::map_stealing;
use questpro_engine::{merge_pair_cost, metrics, ConsistencyCache};
use questpro_graph::fxhash::fx_hash_one;
use questpro_graph::{ExampleSet, Ontology};
use questpro_query::{GeneralizationWeights, SimpleQuery, UnionQuery};

use crate::greedy::{merge_pair, GreedyConfig};
use crate::pattern::PatternGraph;
use crate::stats::InferenceStats;

/// Configuration of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct UnionConfig {
    /// Weights of the generalization cost function `f`.
    pub weights: GeneralizationWeights,
    /// Configuration of the inner Algorithm 1 runs.
    pub greedy: GreedyConfig,
    /// Worker threads for the `MergeBestTwo` pair scan (1 = sequential;
    /// results and stats are identical at every value).
    pub threads: usize,
}

impl Default for UnionConfig {
    fn default() -> Self {
        Self {
            weights: GeneralizationWeights::default(),
            greedy: GreedyConfig::default(),
            threads: 1,
        }
    }
}

/// One branch of the evolving union: the query, its pattern graph, and
/// a canonical key used for merge- and consistency-caching.
///
/// The key is the α-invariant [`PatternGraph::canonical_key`] plus the
/// query's disequality pairs (node indexes — `from_query` preserves node
/// order, so indexes are comparable across equal-keyed branches).
/// Branches that differ only in variable *names* share a key, which is
/// sound for both caches: `merge_pair` sees only the pattern graphs, and
/// onto-match existence is α-invariant. The previous SPARQL-text key
/// split such branches into distinct cache entries, capping the merge
/// hit rate well below what the pair structure allows.
#[derive(Debug, Clone)]
pub(crate) struct Branch {
    pub(crate) graph: std::sync::Arc<PatternGraph>,
    pub(crate) query: std::sync::Arc<SimpleQuery>,
    pub(crate) key: std::sync::Arc<str>,
    /// `fx_hash_one(&key)`, memoized: consistency-cache lookups happen
    /// per (branch, example) every round and must not re-hash the key.
    pub(crate) key_hash: u64,
    /// `query.shape_hash()`, memoized for the beam's state fingerprints.
    pub(crate) shape: u64,
}

impl Branch {
    pub(crate) fn from_query(query: SimpleQuery) -> Self {
        let graph = PatternGraph::from_query(&query);
        let mut key = graph.canonical_key();
        for &(a, b) in query.diseqs() {
            key.push('!');
            key.push_str(&a.index().to_string());
            key.push(',');
            key.push_str(&b.index().to_string());
        }
        let key: std::sync::Arc<str> = key.into();
        let key_hash = fx_hash_one(&key);
        let shape = query.shape_hash();
        Self {
            graph: std::sync::Arc::new(graph),
            query: std::sync::Arc::new(query),
            key,
            key_hash,
            shape,
        }
    }
}

/// Memo of pairwise Algorithm 1 outcomes across MergeBestTwo rounds:
/// the branch pool barely changes between rounds (one merge replaces
/// two branches), so most pairs recur. Failures are cached too. Cache
/// hits still count as "intermediate queries considered" in the stats,
/// preserving the Figure 6 metric.
/// Cache key: the canonical keys of the two branches, ordered.
///
/// Live-update note: unlike `ConsistencyCache`, these entries survive
/// any ontology delta. `merge_pair` is a pure function of the two
/// pattern graphs and the greedy config — it never reads the ontology —
/// so a cached merge (query, gain, vars) is identical on every ontology
/// version and needs no predicate-signature invalidation.
type BranchPairKey = (std::sync::Arc<str>, std::sync::Arc<str>);
/// Cached outcome: the merged query, its gain, and its memoized
/// generalization-variable count, or `None` for unmergeable pairs.
type CachedMerge = Option<(SimpleQuery, f64, usize)>;

#[derive(Debug, Default)]
pub(crate) struct MergeCache {
    map: questpro_graph::fxhash::FxHashMap<BranchPairKey, CachedMerge>,
    /// Every key ever installed, kept even if `map` were to evict: lets
    /// the accounting pass split misses into *true* (first computation)
    /// and *capacity* (eviction re-compute) in the stats.
    ever: questpro_graph::fxhash::FxHashSet<BranchPairKey>,
}

/// The order-normalized cache key of a branch pair.
fn pair_key(a: &Branch, b: &Branch) -> BranchPairKey {
    if a.key <= b.key {
        (a.key.clone(), b.key.clone())
    } else {
        (b.key.clone(), a.key.clone())
    }
}

/// The generalization cost of a set of branches.
pub(crate) fn branches_cost(branches: &[Branch], w: GeneralizationWeights) -> f64 {
    let vars: usize = branches.iter().map(|b| b.query.generalization_vars()).sum();
    w.cost(vars, branches.len())
}

/// The initial state: one trivial constants-only branch per explanation.
pub(crate) fn initial_branches(ont: &Ontology, examples: &ExampleSet) -> Vec<Branch> {
    examples
        .iter()
        .map(|ex| Branch::from_query(SimpleQuery::from_explanation(ont, ex)))
        .collect()
}

/// Result of a `MergeBestTwo` scan: the best pair and its merged query.
pub(crate) struct BestMerge {
    pub(crate) i: usize,
    pub(crate) j: usize,
    pub(crate) query: SimpleQuery,
}

/// Scans all branch pairs with Algorithm 1 and returns the candidates
/// sorted best-first (fewest merged-query variables, then highest gain),
/// up to `take` of them. Increments `stats.algorithm1_calls` per pair.
///
/// The pairwise merges are independent, so cache misses run on up to
/// `threads` scoped workers through the cost-aware work-stealing
/// scheduler ([`map_stealing`], items sized by [`merge_pair_cost`]), so
/// one oversized pair cannot serialize the batch. Accounting is done in
/// a sequential pass over the pairs in `i < j` order *before*
/// dispatching, so `algorithm1_calls` and the cache counters are
/// bit-identical to the sequential scan at every thread count: a pair
/// whose key is already cached — or whose key first occurred earlier in
/// this same scan — is a hit; the first occurrence of a missing key is
/// the one miss (split into true vs. capacity misses in the stats).
pub(crate) fn merge_candidates(
    branches: &[Branch],
    cfg: &GreedyConfig,
    take: usize,
    threads: usize,
    stats: &mut InferenceStats,
    cache: &mut MergeCache,
) -> Vec<BestMerge> {
    // Opened on the calling thread; the `map_stealing` workers below
    // record nothing, so the span structure is thread-count invariant.
    let _t = questpro_trace::span("infer.merge_candidates");
    let t0 = std::time::Instant::now();
    let mut pairs: Vec<(usize, usize, BranchPairKey)> = Vec::new();
    for i in 0..branches.len() {
        for j in (i + 1)..branches.len() {
            pairs.push((i, j, pair_key(&branches[i], &branches[j])));
        }
    }
    questpro_trace::add("pairs", pairs.len() as u64);
    // Sequential accounting pass + work-list of distinct missing keys.
    let mut scheduled: questpro_graph::fxhash::FxHashSet<BranchPairKey> = Default::default();
    let mut missing: Vec<(usize, usize)> = Vec::new();
    for (i, j, key) in &pairs {
        stats.algorithm1_calls += 1;
        if cache.map.contains_key(key) || scheduled.contains(key) {
            stats.merge_cache_hits += 1;
        } else {
            if cache.ever.contains(key) {
                stats.merge_cache_capacity_misses += 1;
            } else {
                stats.merge_cache_true_misses += 1;
            }
            scheduled.insert(key.clone());
            missing.push((*i, *j));
        }
    }
    // Solve the misses (possibly in parallel; `merge_pair` is a pure
    // deterministic function) and install them in scan order. Work items
    // are cost-sized by the graphs' edge counts and stolen by idle
    // workers; results land in indexed slots, so the outcome vector is
    // identical at every thread count.
    let outcomes = {
        let _d = questpro_trace::span("infer.merge_dispatch");
        map_stealing(
            &missing,
            |k| {
                let (i, j) = missing[k];
                merge_pair_cost(
                    branches[i].graph.edge_count(),
                    branches[j].graph.edge_count(),
                )
            },
            threads,
            |&(i, j)| {
                merge_pair(&branches[i].graph, &branches[j].graph, cfg).map(|o| {
                    let vars = o.query.generalization_vars();
                    (o.query, o.gain, vars)
                })
            },
        )
    };
    for (&(i, j), outcome) in missing.iter().zip(outcomes) {
        let key = pair_key(&branches[i], &branches[j]);
        cache.ever.insert(key.clone());
        cache.map.insert(key, outcome);
    }
    // Collect results in pair order, exactly as the sequential scan did.
    // Queries are cloned only for the `take` survivors, after the sort.
    let mut all: Vec<(usize, f64, usize, usize, BranchPairKey)> = Vec::new();
    for (i, j, key) in pairs {
        if let Some(Some((_, gain, vars))) = cache.map.get(&key) {
            all.push((*vars, *gain, i, j, key));
        }
    }
    all.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(b.1.partial_cmp(&a.1).expect("finite gains"))
    });
    let picked = all
        .into_iter()
        .take(take)
        .map(|(_, _, i, j, key)| {
            let (query, _, _) = cache.map[&key].as_ref().expect("key was mergeable");
            BestMerge {
                i,
                j,
                query: query.clone(),
            }
        })
        .collect();
    stats.merge_nanos += t0.elapsed().as_nanos();
    questpro_trace::add("cache_misses", missing.len() as u64);
    picked
}

/// Whether every explanation is covered by at least one branch, checked
/// through the shared [`ConsistencyCache`]. Branch keys double as the
/// canonical query hashes, so no re-rendering happens per lookup.
pub(crate) fn union_consistent_cached(
    ont: &Ontology,
    branches: &[Branch],
    examples: &ExampleSet,
    cache: &mut ConsistencyCache,
) -> bool {
    examples.iter().all(|ex| {
        branches.iter().any(|b| {
            cache
                .find_onto_match_keyed(b.key_hash, ont, &b.query, ex)
                .is_some()
        })
    })
}

/// Applies a merge to a branch vector, producing the successor state.
pub(crate) fn apply_merge(branches: &[Branch], m: &BestMerge) -> Vec<Branch> {
    let mut next: Vec<Branch> = Vec::with_capacity(branches.len() - 1);
    for (idx, b) in branches.iter().enumerate() {
        if idx != m.i && idx != m.j {
            next.push(b.clone());
        }
    }
    next.push(Branch::from_query(m.query.clone()));
    next
}

/// Runs Algorithm 2 on an example-set, returning the inferred union and
/// the instrumentation counters.
///
/// The result is always consistent with the example-set: the trivial
/// union is, and every applied merge preserves consistency
/// (Prop. 3.13 + the composition argument of Section III).
///
/// ```
/// use questpro_core::{find_consistent_union, UnionConfig};
/// use questpro_graph::{ExampleSet, Explanation, Ontology};
///
/// let mut b = Ontology::builder();
/// b.edge("paper3", "wb", "Carol")?;
/// b.edge("paper3", "wb", "Erdos")?;
/// b.edge("paper4", "wb", "Dave")?;
/// b.edge("paper4", "wb", "Erdos")?;
/// let ont = b.build();
/// let e1 = Explanation::from_triples(
///     &ont, &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")], "Carol")?;
/// let e2 = Explanation::from_triples(
///     &ont, &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")], "Dave")?;
/// let examples = ExampleSet::from_explanations(vec![e1, e2]);
///
/// let (query, _stats) = find_consistent_union(&ont, &examples, &UnionConfig::default());
/// // One branch: ?x and :Erdos share a paper.
/// assert_eq!(query.len(), 1);
/// assert!(query.to_string().contains(":Erdos"));
/// # Ok::<(), questpro_graph::GraphError>(())
/// ```
pub fn find_consistent_union(
    ont: &Ontology,
    examples: &ExampleSet,
    cfg: &UnionConfig,
) -> (UnionQuery, InferenceStats) {
    assert!(!examples.is_empty(), "example-set must be non-empty");
    let t_total = std::time::Instant::now();
    let nodes0 = metrics::nodes_expanded();
    let mut stats = InferenceStats::default();
    let mut cache = MergeCache::default();
    let mut ccache = ConsistencyCache::new();
    let mut branches = initial_branches(ont, examples);
    let mut cost = branches_cost(&branches, cfg.weights);
    loop {
        stats.rounds += 1;
        let candidates = merge_candidates(
            &branches,
            &cfg.greedy,
            1,
            cfg.threads,
            &mut stats,
            &mut cache,
        );
        let Some(best) = candidates.into_iter().next() else {
            break;
        };
        let next = apply_merge(&branches, &best);
        let next_cost = branches_cost(&next, cfg.weights);
        if next_cost < cost {
            // Re-verify the accepted state (memoized: only the freshly
            // merged branch triggers new onto-match searches).
            let t_c = std::time::Instant::now();
            let ok = union_consistent_cached(ont, &next, examples, &mut ccache);
            stats.consistency_nanos += t_c.elapsed().as_nanos();
            assert!(ok, "applied merge must preserve consistency (Prop. 3.13)");
            branches = next;
            cost = next_cost;
            stats.merges_applied += 1;
        } else {
            break;
        }
    }
    let union = UnionQuery::new(
        branches
            .into_iter()
            .map(|b| std::sync::Arc::try_unwrap(b.query).unwrap_or_else(|q| (*q).clone()))
            .collect(),
    )
    .expect("non-empty example-set yields non-empty union");
    stats.consistency_checks = ccache.lookups() as usize;
    stats.consistency_cache_hits = ccache.hits() as usize;
    stats.matcher_nodes_expanded = metrics::nodes_expanded().wrapping_sub(nodes0);
    stats.total_nanos = t_total.elapsed().as_nanos();
    (union, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_engine::consistent_with_examples;
    use questpro_graph::Explanation;

    /// The four explanations of Figure 1 (structurally): two 1-chains to
    /// Erdos (Carol-like, Dave-like) and two 3-chains (Alice, Felix).
    fn world() -> (Ontology, ExampleSet) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper5", "Felix"),
            ("paper5", "Gina"),
            ("paper6", "Gina"),
            ("paper6", "Hank"),
            ("paper7", "Hank"),
            ("paper7", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[
                ("paper1", "wb", "Alice"),
                ("paper1", "wb", "Bob"),
                ("paper2", "wb", "Bob"),
                ("paper2", "wb", "Carol"),
                ("paper3", "wb", "Carol"),
                ("paper3", "wb", "Erdos"),
            ],
            "Alice",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e3 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        let e4 = Explanation::from_triples(
            &o,
            &[
                ("paper5", "wb", "Felix"),
                ("paper5", "wb", "Gina"),
                ("paper6", "wb", "Gina"),
                ("paper6", "wb", "Hank"),
                ("paper7", "wb", "Hank"),
                ("paper7", "wb", "Erdos"),
            ],
            "Felix",
        )
        .unwrap();
        (o, ExampleSet::from_explanations(vec![e1, e2, e3, e4]))
    }

    #[test]
    fn inferred_union_is_consistent() {
        let (o, examples) = world();
        let (q, stats) = find_consistent_union(&o, &examples, &UnionConfig::default());
        assert!(consistent_with_examples(&o, &q, &examples));
        assert!(stats.algorithm1_calls > 0);
        assert!(stats.rounds >= 1);
    }

    #[test]
    fn example_4_3_merges_the_two_short_chains() {
        // With w1=2, w2=5 and explanations {E1, E2, E3} the paper merges
        // the two short chains into Q3 (cost 15 → 14) and then stops
        // (merging the long chain in would cost 17).
        let (o, examples) = world();
        let three = ExampleSet::from_explanations(examples.explanations()[..3].to_vec());
        let cfg = UnionConfig {
            weights: GeneralizationWeights::example_4_3(),
            ..Default::default()
        };
        let (q, _) = find_consistent_union(&o, &three, &cfg);
        assert_eq!(q.len(), 2);
        // One branch is the merged Q3 with the Erdos constant; the other
        // is E1's trivial branch (0 extra variables).
        assert_eq!(q.total_vars(), 1);
        assert!(consistent_with_examples(&o, &q, &three));
    }

    #[test]
    fn heavy_branch_weight_forces_full_merge() {
        // With a huge w2 the algorithm merges everything into one simple
        // query (unions are expensive).
        let (o, examples) = world();
        let cfg = UnionConfig {
            weights: GeneralizationWeights::new(1.0, 1000.0),
            ..Default::default()
        };
        let (q, _) = find_consistent_union(&o, &examples, &cfg);
        assert_eq!(q.len(), 1);
        assert!(consistent_with_examples(&o, &q, &examples));
    }

    #[test]
    fn heavy_var_weight_keeps_trivial_union() {
        // With w1 enormous any variable is too expensive: stay trivial.
        let (o, examples) = world();
        let cfg = UnionConfig {
            weights: GeneralizationWeights::new(1000.0, 1.0),
            ..Default::default()
        };
        let (q, stats) = find_consistent_union(&o, &examples, &cfg);
        assert_eq!(q.len(), examples.len());
        assert_eq!(q.total_vars(), 0);
        assert_eq!(stats.merges_applied, 0);
    }

    #[test]
    fn threads_do_not_change_result_or_stats() {
        let (o, examples) = world();
        let (q1, s1) = find_consistent_union(&o, &examples, &UnionConfig::default());
        for threads in [2, 4, 8] {
            let cfg = UnionConfig {
                threads,
                ..Default::default()
            };
            let (qn, sn) = find_consistent_union(&o, &examples, &cfg);
            assert_eq!(qn.to_string(), q1.to_string());
            assert_eq!(sn, s1, "stats must be thread-count invariant");
        }
        assert!(s1.consistency_checks > 0);
        assert!(s1.total_nanos > 0);
    }

    #[test]
    fn single_explanation_yields_its_trivial_branch() {
        let (o, examples) = world();
        let one = ExampleSet::from_explanations(vec![examples.explanations()[1].clone()]);
        let (q, _) = find_consistent_union(&o, &one, &UnionConfig::default());
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_vars(), 0);
        assert!(consistent_with_examples(&o, &q, &one));
    }
}
