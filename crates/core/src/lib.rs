//! Query-by-provenance inference — the core contribution of
//! *Interactive Inference of SPARQL Queries Using Provenance* (ICDE 2018).
//!
//! Given an **example-set** (explanations: ontology subgraphs with a
//! distinguished output node, Def. 2.5), this crate infers SPARQL queries
//! — simple graph patterns and unions thereof — that are **consistent**
//! with every explanation (Def. 2.6), while heuristically minimizing the
//! paper's generalization cost.
//!
//! Pipeline, module by module:
//!
//! * [`pattern`] — the shared *pattern graph* representation that both
//!   explanations and intermediate queries are lowered to, so the same
//!   merging machinery serves Section III's "extending to n explanations"
//!   composition;
//! * [`trivial`] — the PTIME existence test and disjoint-edges consistent
//!   query of Proposition 3.1 / Lemma 3.2;
//! * [`relation`] — complete relations between the edge sets of two
//!   pattern graphs (Def. 3.6) and their validation;
//! * [`gain`] — the dynamic gain function of Def. 3.11 (weights
//!   `w1=3, w2=15, w3=1` as fixed in Section VI);
//! * [`assemble`] — `BuildQuery`: turning a complete relation into the
//!   consistent simple query with minimum variables w.r.t. that relation
//!   (Prop. 3.10, applying Def. 3.7's optional operations maximally);
//! * [`greedy`] — Algorithm 1 (`FindRelationGreedy`) with the `numIter`
//!   diversification loop;
//! * [`merge`] — the pairwise extension to `n` explanations;
//! * [`union`] — Algorithm 2 (`FindConsistentUnion`), minimizing
//!   `f(Q) = w1·Σvars + w2·|Q|` (Def. 4.1);
//! * [`topk`] — the beam-search top-k variant of Algorithm 2;
//! * [`diseq`] — disequality inference from explanation matches
//!   (Section V);
//! * [`stats`] — instrumentation counters (the "number of intermediate
//!   queries" metric of Figure 6).

pub mod assemble;
pub mod diagnose;
pub mod diseq;
pub mod exact;
pub mod gain;
pub mod greedy;
pub mod merge;
pub mod pattern;
pub mod relation;
pub mod stats;
pub mod topk;
pub mod trivial;
pub mod union;

pub use diagnose::{diagnose_examples, infer_top_k_robust, ExampleDiagnosis, Suspicion};
pub use diseq::{
    covered_explanations, covered_explanations_cached, infer_diseqs, infer_diseqs_cached,
    with_all_diseqs, with_all_diseqs_cached,
};
pub use exact::{exact_merge_pair, ExactOutcome};
pub use gain::GainWeights;
pub use greedy::{merge_pair, GreedyConfig, MergeOutcome};
pub use pattern::PatternGraph;
pub use stats::{global_stats, GlobalStats, InferenceStats};
pub use topk::{infer_top_k, TopKConfig};
pub use trivial::{trivial_consistent_query, TrivialOutcome};
pub use union::{find_consistent_union, UnionConfig};
