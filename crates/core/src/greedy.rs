//! Algorithm 1: `FindRelationGreedy`.
//!
//! Greedily builds a complete relation between two pattern graphs by
//! repeatedly choosing the candidate pair with the highest *dynamic* gain
//! (Def. 3.11), then assembles the minimum-variable query for the best
//! relation found (Prop. 3.10). The first chosen pair is forced to be a
//! *distinguished pair* (condition 4 of Def. 3.6), mirroring lines 10–12
//! of the paper's pseudo-code.
//!
//! Diversification: iteration `i` removes the `i−1` statically-best pairs
//! from the candidate pool before running the inner loop, so `numIter`
//! different relations are explored.
//!
//! **Deviation from the paper**: the pseudo-code keeps the complete
//! relation with the maximal *accumulated gain* (`maxGain`). Gain
//! accumulates per chosen pair, so relations with more (redundant) pairs
//! systematically out-score tighter ones, and the diversification loop
//! can then prefer a strictly worse query. Since the stated objective is
//! variable minimization and Prop. 3.10 already assembles the
//! minimum-variable query *per relation*, we compare candidate relations
//! by the variable count of their assembled queries, breaking ties by
//! gain — which makes extra iterations monotonically non-harmful.
//!
//! Complexity is `O(numIter · (m1·m2)² )` pair-gain evaluations — the
//! paper's bound up to the log factor of its priority queue, which a
//! linear scan over the (small) pool replaces here. The scan is kept
//! branch-light: everything relation-independent (endpoints, constant
//! agreement, the distinguished flag) is precomputed per candidate pair
//! up front, and the relation state lives in
//! [`crate::relation::FastRelation`] bitsets, so each gain evaluation
//! is a couple of array loads and shift/AND probes — no hashing, no
//! string comparison.

use questpro_query::SimpleQuery;

use crate::assemble::{build_query, build_query_with_optionals};
use crate::gain::GainWeights;
use crate::pattern::{PLabel, PatternGraph};
use crate::relation::{pair_touches_dis, FastRelation};

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig {
    /// Gain weights (defaults to the paper's `3, 15, 1`).
    pub weights: GainWeights,
    /// Number of diversification iterations (`numIter`).
    pub num_iter: usize,
    /// Tolerate shape mismatches by carrying unpairable required edges
    /// into the merged query as OPTIONAL edges (the paper's future-work
    /// operator). Off by default: the strict mode is the paper's
    /// Algorithm 1, which fails when the predicate shapes differ.
    pub allow_optional: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        Self {
            weights: GainWeights::paper(),
            num_iter: 3,
            allow_optional: false,
        }
    }
}

/// Outcome of a successful pairwise merge.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The assembled minimum-variable consistent query.
    pub query: SimpleQuery,
    /// The complete relation that led to it (pairs of edge indexes).
    pub relation: Vec<(usize, usize)>,
    /// The accumulated gain of the relation (`maxGain`).
    pub gain: f64,
}

/// Runs Algorithm 1 on two pattern graphs.
///
/// Returns `None` when no complete relation exists — by Prop. 3.1 this
/// happens exactly when the explanations cannot have a common consistent
/// simple query (different predicate sets, or Lemma 3.2's distinguished-
/// side test fails).
pub fn merge_pair(
    g1: &PatternGraph,
    g2: &PatternGraph,
    cfg: &GreedyConfig,
) -> Option<MergeOutcome> {
    // Degenerate edge-free graphs: the single-variable query merges two
    // bare-node explanations; a bare node cannot merge with an edged one.
    if g1.edge_count() == 0 || g2.edge_count() == 0 {
        if g1.edge_count() == 0 && g2.edge_count() == 0 {
            let mut b = SimpleQuery::builder();
            let x = b.var("x");
            b.project(x);
            return Some(MergeOutcome {
                query: b.build().expect("single-variable query is well-formed"),
                relation: Vec::new(),
                gain: 0.0,
            });
        }
        return None;
    }

    // Intern the predicate labels of both graphs into small integers so
    // the cross-product pair scan compares `u32`s, not strings.
    fn intern<'a>(preds: &mut Vec<&'a str>, p: &'a str) -> u32 {
        match preds.iter().position(|&q| q == p) {
            Some(i) => i as u32,
            None => {
                preds.push(p);
                (preds.len() - 1) as u32
            }
        }
    }
    let mut preds: Vec<&str> = Vec::new();
    let p1: Vec<u32> = g1
        .edges()
        .iter()
        .map(|e| intern(&mut preds, &e.pred))
        .collect();
    let p2: Vec<u32> = g2
        .edges()
        .iter()
        .map(|e| intern(&mut preds, &e.pred))
        .collect();

    // All valid pairs: same predicate, both required (optional input
    // edges are never paired — they are carried over as-is). Everything
    // the inner loop needs per pair is precomputed here: endpoints,
    // the distinguished-pair flag, and the relation-independent part of
    // the gain (`w1·c1`; see Def. 3.11 / `crate::gain`).
    let w = cfg.weights;
    struct PairCtx {
        e1: usize,
        e2: usize,
        ends: (u32, u32, u32, u32),
        dis: bool,
        const_gain: f64,
    }
    let same_const = |a: &PLabel, b: &PLabel| match (a, b) {
        (PLabel::Const(x), PLabel::Const(y)) => x == y,
        _ => false,
    };
    let mut pairs: Vec<PairCtx> = Vec::new();
    for (e1, &q1) in p1.iter().enumerate() {
        if g1.edges()[e1].optional {
            continue;
        }
        for (e2, &q2) in p2.iter().enumerate() {
            if g2.edges()[e2].optional || q1 != q2 {
                continue;
            }
            let (ed1, ed2) = (&g1.edges()[e1], &g2.edges()[e2]);
            let c1 = same_const(g1.label(ed1.src), g2.label(ed2.src)) as u32
                + same_const(g1.label(ed1.dst), g2.label(ed2.dst)) as u32;
            pairs.push(PairCtx {
                e1,
                e2,
                ends: (ed1.src, ed2.src, ed1.dst, ed2.dst),
                dis: pair_touches_dis(g1, g2, e1, e2),
                const_gain: w.w1 * f64::from(c1),
            });
        }
    }
    if pairs.is_empty() {
        return None;
    }

    // Static ranking (empty relation) used by the diversification step.
    // Against the empty relation both edges are fresh and no node pair
    // is matched, so the static gain is `w1·c1 + 2·w2` — computed once
    // per pair, not twice per sort comparison.
    let mut ranked: Vec<usize> = (0..pairs.len()).collect();
    ranked.sort_by(|&a, &b| {
        let (pa, pb) = (&pairs[a], &pairs[b]);
        pb.const_gain
            .partial_cmp(&pa.const_gain)
            .expect("gains are finite")
            .then((pb.e1, pb.e2).cmp(&(pa.e1, pa.e2)))
    });

    // Dynamic gain of pair `k` against the current relation.
    let dyn_gain = |rel: &FastRelation, k: usize| -> f64 {
        let p = &pairs[k];
        let (s1, s2, t1, t2) = p.ends;
        let fresh = (!rel.is_paired1(p.e1)) as u32 + (!rel.is_paired2(p.e2)) as u32;
        let near = rel.sources_paired(s1, s2) as u32 + rel.targets_paired(t1, t2) as u32;
        p.const_gain + w.w2 * f64::from(fresh) + w.w3 * f64::from(near)
    };

    let mut best: Option<MergeOutcome> = None;
    // Relations already assembled in earlier iterations: diversification
    // often re-derives the exact same pair sequence (the removed pair
    // was not load-bearing), and re-assembling it cannot win the
    // strictly-better comparison below, so it is skipped.
    let mut assembled: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut rel = FastRelation::for_graphs(g1, g2);
    let mut available: Vec<usize> = Vec::with_capacity(pairs.len());
    for i in 0..cfg.num_iter.max(1) {
        // Remove the i statically-best pairs for diversification.
        if i >= ranked.len() {
            break;
        }
        let removed = &ranked[..i];
        available.clear();
        available.extend((0..pairs.len()).filter(|k| !removed.contains(k)));

        if i > 0 {
            rel.clear(g1, g2);
        }
        while !rel.all_paired() && !available.is_empty() {
            // The first pick must be a distinguished pair. `>=` keeps
            // `max_by`'s tie-breaking: the *last* maximal candidate in
            // `available` order wins.
            let need_dis = !rel.has_dis_pair();
            let mut pick: Option<(usize, f64)> = None;
            for (idx, &k) in available.iter().enumerate() {
                if need_dis && !pairs[k].dis {
                    continue;
                }
                let g = dyn_gain(&rel, k);
                if pick.is_none_or(|(_, bg)| g >= bg) {
                    pick = Some((idx, g));
                }
            }
            let Some((idx, g)) = pick else {
                break; // no distinguished pair available
            };
            let k = available.swap_remove(idx);
            let p = &pairs[k];
            rel.push(p.e1, p.e2, p.ends, p.dis, g);
        }
        let acceptable = rel.has_dis_pair() && (rel.all_paired() || cfg.allow_optional);
        if acceptable && assembled.iter().any(|a| a == rel.pairs()) {
            continue;
        }
        if acceptable {
            assembled.push(rel.pairs().to_vec());
            let query = if cfg.allow_optional {
                build_query_with_optionals(g1, g2, rel.pairs())
            } else {
                build_query(g1, g2, rel.pairs())
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    let (vb, va) = (b.query.generalization_vars(), query.generalization_vars());
                    va < vb || (va == vb && rel.total_gain() > b.gain)
                }
            };
            if better {
                best = Some(MergeOutcome {
                    relation: rel.pairs().to_vec(),
                    gain: rel.total_gain(),
                    query,
                });
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_engine::{consistent_with_explanation, evaluate};
    use questpro_graph::{Explanation, Ontology};
    use questpro_query::fixtures::erdos_q1;
    use questpro_query::iso::isomorphic;

    /// The full running example: Figure 1's ontology fragment with the
    /// chains of Alice (via Bob, Carol) and Dave.
    fn world() -> (Ontology, Vec<Explanation>) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            // Felix's 3-chain (E3-style) for n-ary tests.
            ("paper5", "Felix"),
            ("paper5", "Gina"),
            ("paper6", "Gina"),
            ("paper6", "Hank"),
            ("paper7", "Hank"),
            ("paper7", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[
                ("paper1", "wb", "Alice"),
                ("paper1", "wb", "Bob"),
                ("paper2", "wb", "Bob"),
                ("paper2", "wb", "Carol"),
                ("paper3", "wb", "Carol"),
                ("paper3", "wb", "Erdos"),
            ],
            "Alice",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e3 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        let e4 = Explanation::from_triples(
            &o,
            &[
                ("paper5", "wb", "Felix"),
                ("paper5", "wb", "Gina"),
                ("paper6", "wb", "Gina"),
                ("paper6", "wb", "Hank"),
                ("paper7", "wb", "Hank"),
                ("paper7", "wb", "Erdos"),
            ],
            "Felix",
        )
        .unwrap();
        (o, vec![e1, e2, e3, e4])
    }

    #[test]
    fn merging_the_two_short_chains_recovers_q3() {
        // E2 (Carol) + E3 (Dave): both are "co-author of Erdos" shapes.
        // The merge should produce ?p -wb-> ?x, ?p -wb-> :Erdos (the
        // paper's Q3 in Figure 4a).
        let (o, exs) = world();
        let g1 = PatternGraph::from_explanation(&o, &exs[1]);
        let g2 = PatternGraph::from_explanation(&o, &exs[2]);
        let out = merge_pair(&g1, &g2, &GreedyConfig::default()).expect("merge succeeds");
        assert_eq!(out.query.edge_count(), 2);
        assert_eq!(out.query.generalization_vars(), 1);
        assert!(out.query.node_of_const("Erdos").is_some());
        assert!(consistent_with_explanation(&o, &out.query, &exs[1]));
        assert!(consistent_with_explanation(&o, &out.query, &exs[2]));
        // Semantically: returns exactly Erdos's co-authors.
        let res = evaluate(&o, &out.query);
        let mut names: Vec<_> = res.iter().map(|&n| o.value_str(n)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["Carol", "Dave", "Erdos", "Hank"]);
    }

    #[test]
    fn merging_the_two_long_chains_recovers_q1_shape() {
        // E1 (Alice) + E4 (Felix): both are 3-paper chains to Erdos; the
        // merge should recover a connected 6-edge chain isomorphic to Q1
        // except for the shared :Erdos constant at the far end.
        let (o, exs) = world();
        let g1 = PatternGraph::from_explanation(&o, &exs[0]);
        let g2 = PatternGraph::from_explanation(&o, &exs[3]);
        let out = merge_pair(&g1, &g2, &GreedyConfig::default()).expect("merge succeeds");
        assert_eq!(out.query.edge_count(), 6);
        assert!(out.query.is_connected());
        assert!(out.query.node_of_const("Erdos").is_some());
        assert!(consistent_with_explanation(&o, &out.query, &exs[0]));
        assert!(consistent_with_explanation(&o, &out.query, &exs[3]));
        // 6 variables besides the projected one minus the Erdos constant:
        // chain has 7 nodes, one is :Erdos → 6 vars, 5 generalization.
        assert_eq!(out.query.generalization_vars(), 5);
    }

    #[test]
    fn incompatible_predicate_sets_fail() {
        let mut b = Ontology::builder();
        b.edge("a", "wb", "x").unwrap();
        b.edge("c", "cites", "d").unwrap();
        let o = b.build();
        let e1 = Explanation::from_triples(&o, &[("a", "wb", "x")], "x").unwrap();
        let e2 = Explanation::from_triples(&o, &[("c", "cites", "d")], "d").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        assert!(merge_pair(&g1, &g2, &GreedyConfig::default()).is_none());
    }

    #[test]
    fn mismatched_distinguished_sides_fail() {
        let mut b = Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        b.edge("p2", "wb", "Bob").unwrap();
        let o = b.build();
        let e1 = Explanation::from_triples(&o, &[("p1", "wb", "Alice")], "Alice").unwrap();
        let e2 = Explanation::from_triples(&o, &[("p2", "wb", "Bob")], "p2").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        assert!(merge_pair(&g1, &g2, &GreedyConfig::default()).is_none());
    }

    #[test]
    fn bare_node_merges() {
        let mut b = Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        let o = b.build();
        let bare1 = Explanation::from_edges(&o, [], "Alice").unwrap();
        let bare2 = Explanation::from_edges(&o, [], "p1").unwrap();
        let edged = Explanation::from_triples(&o, &[("p1", "wb", "Alice")], "Alice").unwrap();
        let gb1 = PatternGraph::from_explanation(&o, &bare1);
        let gb2 = PatternGraph::from_explanation(&o, &bare2);
        let ge = PatternGraph::from_explanation(&o, &edged);
        let out = merge_pair(&gb1, &gb2, &GreedyConfig::default()).expect("bare merge");
        assert_eq!(out.query.node_count(), 1);
        assert!(merge_pair(&gb1, &ge, &GreedyConfig::default()).is_none());
    }

    #[test]
    fn merging_queries_composes() {
        // Merge E1+E4 into a chain query, then merge that query with E1
        // again: consistency with E1 and E4 must be preserved (the
        // composition argument after Prop. 3.13).
        let (o, exs) = world();
        let g1 = PatternGraph::from_explanation(&o, &exs[0]);
        let g4 = PatternGraph::from_explanation(&o, &exs[3]);
        let chain = merge_pair(&g1, &g4, &GreedyConfig::default())
            .unwrap()
            .query;
        let gq = PatternGraph::from_query(&chain);
        let again = merge_pair(&gq, &g1, &GreedyConfig::default()).expect("query-expl merge");
        assert!(consistent_with_explanation(&o, &again.query, &exs[0]));
        assert!(consistent_with_explanation(&o, &again.query, &exs[3]));
        // Merging the chain with E1 can at most lose the :Erdos constant;
        // the shape stays a 6-edge chain similar to Q1.
        assert_eq!(again.query.edge_count(), 6);
        let _ = isomorphic(&again.query, &erdos_q1());
    }

    #[test]
    fn optional_mode_merges_mismatched_shapes() {
        // film1 has a genre edge; film2 does not. Strict Algorithm 1
        // fails (different predicate sets, Prop. 3.1); optional-tolerant
        // merging keeps the genre edge as OPTIONAL.
        let mut b = Ontology::builder();
        for (s, p, d) in [
            ("film1", "starring", "Ann"),
            ("film1", "genre", "Crime"),
            ("film2", "starring", "Ben"),
        ] {
            b.edge(s, p, d).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("film1", "starring", "Ann"), ("film1", "genre", "Crime")],
            "Ann",
        )
        .unwrap();
        let e2 = Explanation::from_triples(&o, &[("film2", "starring", "Ben")], "Ben").unwrap();
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        assert!(merge_pair(&g1, &g2, &GreedyConfig::default()).is_none());
        let cfg = GreedyConfig {
            allow_optional: true,
            ..Default::default()
        };
        let out = merge_pair(&g1, &g2, &cfg).expect("optional merge succeeds");
        assert_eq!(out.query.required_edge_count(), 1);
        assert_eq!(out.query.optional_edge_count(), 1);
        assert!(consistent_with_explanation(&o, &out.query, &e1));
        assert!(consistent_with_explanation(&o, &out.query, &e2));
    }

    #[test]
    fn optional_mode_carries_optionals_through_remerge() {
        // Merge the optional-bearing query with a fresh explanation of
        // the richer shape: optional edges survive and consistency with
        // all three explanations holds.
        let mut b = Ontology::builder();
        for (s, p, d) in [
            ("film1", "starring", "Ann"),
            ("film1", "genre", "Crime"),
            ("film2", "starring", "Ben"),
            ("film3", "starring", "Cid"),
            ("film3", "genre", "Drama"),
        ] {
            b.edge(s, p, d).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("film1", "starring", "Ann"), ("film1", "genre", "Crime")],
            "Ann",
        )
        .unwrap();
        let e2 = Explanation::from_triples(&o, &[("film2", "starring", "Ben")], "Ben").unwrap();
        let e3 = Explanation::from_triples(
            &o,
            &[("film3", "starring", "Cid"), ("film3", "genre", "Drama")],
            "Cid",
        )
        .unwrap();
        let cfg = GreedyConfig {
            allow_optional: true,
            ..Default::default()
        };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let first = merge_pair(&g1, &g2, &cfg).expect("first merge");
        let gq = PatternGraph::from_query(&first.query);
        assert!(gq.has_optional());
        let g3 = PatternGraph::from_explanation(&o, &e3);
        let second = merge_pair(&gq, &g3, &cfg).expect("second merge");
        assert!(second.query.optional_edge_count() >= 1);
        for ex in [&e1, &e2, &e3] {
            assert!(
                consistent_with_explanation(&o, &second.query, ex),
                "inconsistent with {}: {}",
                o.value_str(ex.distinguished()),
                second.query
            );
        }
    }

    #[test]
    fn num_iter_only_improves_variable_count() {
        let (o, exs) = world();
        let g1 = PatternGraph::from_explanation(&o, &exs[0]);
        let g2 = PatternGraph::from_explanation(&o, &exs[3]);
        let vars_for = |num_iter: usize| {
            merge_pair(
                &g1,
                &g2,
                &GreedyConfig {
                    num_iter,
                    ..Default::default()
                },
            )
            .unwrap()
            .query
            .generalization_vars()
        };
        // The selection criterion is primary on variables, so widening
        // the search can only help.
        assert!(vars_for(5) <= vars_for(1));
    }
}
