//! # QuestPro-RS
//!
//! A from-scratch Rust reproduction of *Interactive Inference of SPARQL
//! Queries Using Provenance* (Abramovitz, Deutch, Gilad — ICDE 2018):
//! infer SPARQL graph-pattern queries from output examples annotated
//! with provenance, then converge on the intended query through
//! provenance-backed interactive feedback.
//!
//! ## Quick start
//!
//! ```
//! use questpro::prelude::*;
//! use questpro::rng::StdRng;
//!
//! // The paper's running example: the Erdős co-authorship world.
//! let ont = questpro::data::erdos_ontology();
//! let examples = questpro::data::erdos_example_set(&ont);
//!
//! // Infer the top-3 candidate queries from the four explanations.
//! let cfg = TopKConfig { k: 3, ..Default::default() };
//! let (candidates, _stats) = infer_top_k(&ont, &examples, &cfg);
//! assert!(!candidates.is_empty());
//!
//! // Let a (simulated) user pick among them via difference questions.
//! let intended = candidates[0].clone();
//! let mut oracle = TargetOracle::new(intended);
//! let mut rng = StdRng::seed_from_u64(1);
//! let outcome = choose_query(
//!     &ont, &candidates, &examples, &mut oracle, &mut rng,
//!     &FeedbackConfig::default(),
//! );
//! println!("{}", outcome.chosen);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | ontology model: labeled multigraphs, explanations, subgraphs |
//! | [`query`] | simple/union graph-pattern queries, disequalities, SPARQL text |
//! | [`engine`] | matching, evaluation, provenance, consistency, containment |
//! | [`core`] | the inference algorithms of Sections III–IV |
//! | [`feedback`] | Algorithm 3, oracles, refinement, sessions, study simulation |
//! | [`data`] | synthetic SP2B / BSBM / DBpedia-movie worlds and workloads |
//! | [`telemetry`] | per-session lifecycle records and dimensional aggregation |

pub use questpro_core as core;
pub use questpro_data as data;
pub use questpro_engine as engine;
pub use questpro_feedback as feedback;
pub use questpro_graph as graph;
pub use questpro_graph::rng;
pub use questpro_query as query;
pub use questpro_telemetry as telemetry;
pub use questpro_trace as trace;

/// One-stop imports for typical use of the library.
pub mod prelude {
    pub use questpro_core::{
        diagnose_examples, find_consistent_union, infer_diseqs, infer_top_k, infer_top_k_robust,
        with_all_diseqs, ExampleDiagnosis, GainWeights, GreedyConfig, InferenceStats, Suspicion,
        TopKConfig, UnionConfig,
    };
    pub use questpro_engine::{
        consistent_with_examples, consistent_with_explanation, difference, evaluate,
        evaluate_union, minimize, polynomial_of, polynomial_of_union, provenance_of,
        provenance_of_union, sample_example_set, union_equivalent, Match, Matcher, Polynomial,
    };
    pub use questpro_feedback::{
        choose_query, refine_diseqs, run_session, FeedbackConfig, NoisyOracle, Oracle,
        ScriptedOracle, SessionConfig, TargetOracle,
    };
    pub use questpro_graph::{ExampleSet, Explanation, Ontology, OntologyBuilder, Subgraph};
    pub use questpro_query::{
        GeneralizationWeights, NodeLabel, QueryBuilder, SimpleQuery, UnionQuery,
    };
}
