//! Reconstruction of genuine *union* targets: inference must keep the
//! branches separate among its candidates (each branch needs at least
//! two explanations to generalize, so the loop adds examples as the
//! paper's protocol does), and the feedback loop must reject the
//! over-generalized single-pattern merge (Section V's whole purpose).

use questpro::data::*;
use questpro::prelude::*;
use questpro::rng::StdRng;

fn world_for(kind: OntologyKind) -> Ontology {
    match kind {
        OntologyKind::Sp2b => generate_sp2b(&Sp2bConfig::default()),
        OntologyKind::Bsbm => generate_bsbm(&BsbmConfig::default()),
        OntologyKind::Movies => generate_movies(&MoviesConfig::default()),
    }
}

#[test]
fn union_targets_have_multi_branch_results() {
    for w in union_workload() {
        let ont = world_for(w.kind);
        // Each branch contributes results the other does not (otherwise
        // the union target degenerates).
        let a = evaluate(&ont, &w.query.branches()[0]);
        let b = evaluate(&ont, &w.query.branches()[1]);
        assert!(
            !a.is_subset(&b) && !b.is_subset(&a),
            "{}: branches must be incomparable",
            w.id
        );
    }
}

/// The Section VI-B loop: add sampled explanations until some top-k
/// candidate reproduces the target's result set.
fn explanations_until_reconstructed(
    ont: &Ontology,
    target: &UnionQuery,
    seed: u64,
    cap: usize,
) -> Option<usize> {
    let cfg = TopKConfig {
        k: 4,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let target_results = evaluate_union(ont, target);
    for n in 4..=cap {
        let examples = sample_example_set(ont, target, n, &mut rng, 6);
        if examples.len() < 3 {
            continue;
        }
        let (candidates, _) = infer_top_k(ont, &examples, &cfg);
        if candidates
            .iter()
            .any(|c| evaluate_union(ont, c) == target_results)
        {
            return Some(n);
        }
    }
    None
}

#[test]
fn top_k_reconstructs_union_targets() {
    for w in union_workload() {
        let ont = world_for(w.kind);
        let needed = explanations_until_reconstructed(&ont, &w.query, 0x101, 12);
        assert!(
            needed.is_some(),
            "{}: union target not reconstructed within 12 explanations",
            w.id
        );
    }
}

#[test]
fn feedback_rejects_the_overgeneralized_merge() {
    // The full session: once enough explanations exist, the oracle's
    // no-answers eliminate single-pattern generalizations and keep the
    // true union.
    for w in union_workload() {
        let ont = world_for(w.kind);
        let target_results = evaluate_union(&ont, &w.query);
        let mut reached = false;
        let mut rng = StdRng::seed_from_u64(0x202);
        for n in 4..=12usize {
            let examples = sample_example_set(&ont, &w.query, n, &mut rng, 6);
            if examples.len() < 3 {
                continue;
            }
            let mut oracle = TargetOracle::new(w.query.clone());
            let cfg = SessionConfig {
                topk: TopKConfig {
                    k: 4,
                    ..Default::default()
                },
                refine: true,
                ..Default::default()
            };
            let result = run_session(&ont, &examples, &mut oracle, &mut rng, &cfg);
            if evaluate_union(&ont, &result.query) == target_results {
                reached = true;
                break;
            }
        }
        assert!(
            reached,
            "{}: session never reached the union target within 12 explanations",
            w.id
        );
    }
}
