//! Property-based tests over randomly generated ontologies and
//! explanations: the algebraic invariants that hold for *every* input,
//! not just the paper's fixtures. Driven by the workspace's internal
//! seeded RNG (no external property-test crate).

use questpro::core::trivial_consistent_query;
use questpro::core::{merge_pair, GreedyConfig, PatternGraph, TrivialOutcome};
use questpro::graph::triples;
use questpro::prelude::*;
use questpro::rng::{Rng, StdRng};

const CASES: usize = 64;

/// A random small ontology: up to 10 node values, predicates `p`/`q`,
/// 1–24 distinct edges.
fn arb_edges<R: Rng>(rng: &mut R) -> Vec<(u8, u8, u8)> {
    let target = rng.random_range(1..24usize);
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..target * 2 {
        set.insert((
            rng.random_range(0..10u32) as u8,
            rng.random_range(0..2u32) as u8,
            rng.random_range(0..10u32) as u8,
        ));
        if set.len() >= target {
            break;
        }
    }
    set.into_iter().collect()
}

fn build_ontology(edges: &[(u8, u8, u8)]) -> Ontology {
    let mut b = Ontology::builder();
    for &(s, p, d) in edges {
        let pred = if p == 0 { "p" } else { "q" };
        b.edge(&format!("n{s}"), pred, &format!("n{d}"))
            .expect("btree_set deduplicates edges");
    }
    b.build()
}

/// A random explanation: a non-empty edge subset (by mask) plus a
/// distinguished endpoint of the first selected edge.
fn explanation_from(ont: &Ontology, mask: u32, dis_src: bool) -> Option<Explanation> {
    let chosen: Vec<_> = ont
        .edge_ids()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 24)) != 0)
        .map(|(_, e)| e)
        .collect();
    let first = *chosen.first()?;
    let d = ont.edge(first);
    let dis = if dis_src { d.src } else { d.dst };
    let sub = Subgraph::from_edges(ont, chosen);
    Explanation::new(sub, dis).ok()
}

/// One random world + one explanation, or `None` when the mask selects
/// no edges.
fn arb_world_and_explanation<R: Rng>(rng: &mut R) -> Option<(Ontology, Explanation)> {
    let o = build_ontology(&arb_edges(rng));
    let mask = rng.next_u64() as u32;
    let dis_src = rng.random_bool(0.5);
    let ex = explanation_from(&o, mask, dis_src)?;
    Some((o, ex))
}

/// One random world + two explanations drawn from it.
fn arb_world_and_pair<R: Rng>(rng: &mut R) -> Option<(Ontology, Explanation, Explanation)> {
    let o = build_ontology(&arb_edges(rng));
    let (m1, m2) = (rng.next_u64() as u32, rng.next_u64() as u32);
    let (s1, s2) = (rng.random_bool(0.5), rng.random_bool(0.5));
    let e1 = explanation_from(&o, m1, s1)?;
    let e2 = explanation_from(&o, m2, s2)?;
    Some((o, e1, e2))
}

/// Triple-format round trips preserve the whole edge structure.
#[test]
fn triples_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xa1);
    for _ in 0..CASES {
        let o = build_ontology(&arb_edges(&mut rng));
        let text = triples::serialize(&o);
        let o2 = triples::parse(&text).expect("serialized form parses");
        assert_eq!(o2.edge_count(), o.edge_count());
        assert_eq!(o2.node_count(), o.node_count());
        for e in o.edge_ids() {
            let d = o.edge(e);
            let src = o2.node_by_value(o.value_str(d.src)).expect("node kept");
            let dst = o2.node_by_value(o.value_str(d.dst)).expect("node kept");
            let pred = o2.pred_by_name(o.pred_str(d.pred)).expect("pred kept");
            assert!(o2.find_edge(src, pred, dst).is_some());
        }
    }
}

/// The trivial branch of an explanation is always consistent with it.
#[test]
fn trivial_branch_is_self_consistent() {
    let mut rng = StdRng::seed_from_u64(0xa2);
    for _ in 0..CASES {
        let Some((o, ex)) = arb_world_and_explanation(&mut rng) else {
            continue;
        };
        let q = SimpleQuery::from_explanation(&o, &ex);
        assert!(consistent_with_explanation(&o, &q, &ex));
        // And its evaluation contains the distinguished node.
        assert!(evaluate(&o, &q).contains(&ex.distinguished()));
    }
}

/// Proposition 3.1 agreement: for two explanations, the greedy merge
/// succeeds exactly when the PTIME existence test says a consistent
/// simple query exists.
#[test]
fn merge_agrees_with_existence_test() {
    let mut rng = StdRng::seed_from_u64(0xa3);
    for _ in 0..CASES {
        let Some((o, e1, e2)) = arb_world_and_pair(&mut rng) else {
            continue;
        };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let refs = [&g1, &g2];
        let trivially = matches!(trivial_consistent_query(&refs), TrivialOutcome::Query(_));
        let merged = merge_pair(&g1, &g2, &GreedyConfig::default());
        assert_eq!(
            merged.is_some(),
            trivially,
            "merge and existence test disagree"
        );
    }
}

/// When the merge succeeds, the produced query is consistent with
/// both explanations (Proposition 3.8 via 3.13).
#[test]
fn merged_query_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0xa4);
    for _ in 0..CASES {
        let Some((o, e1, e2)) = arb_world_and_pair(&mut rng) else {
            continue;
        };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        if let Some(out) = merge_pair(&g1, &g2, &GreedyConfig::default()) {
            assert!(
                consistent_with_explanation(&o, &out.query, &e1),
                "merged query {} not consistent with E1",
                out.query
            );
            assert!(
                consistent_with_explanation(&o, &out.query, &e2),
                "merged query {} not consistent with E2",
                out.query
            );
        }
    }
}

/// Provenance soundness: every provenance image of a result contains
/// a derivation of that result.
#[test]
fn provenance_images_derive_their_result() {
    let mut rng = StdRng::seed_from_u64(0xa5);
    for _ in 0..CASES {
        let Some((o, ex)) = arb_world_and_explanation(&mut rng) else {
            continue;
        };
        let q = SimpleQuery::from_explanation(&o, &ex);
        for res in evaluate(&o, &q).into_iter().take(4) {
            let images = provenance_of(&o, &q, res, Some(4));
            assert!(!images.is_empty());
            for img in images {
                assert!(img.contains_node(res));
                let again = Matcher::new(&o, &q)
                    .bind(q.projected(), res)
                    .restrict(&img)
                    .exists();
                assert!(again, "image does not re-derive its result");
            }
        }
    }
}

/// Containment is reflexive, and the SPARQL text round-trips to an
/// isomorphic query.
#[test]
fn query_relations_are_sane() {
    let mut rng = StdRng::seed_from_u64(0xa6);
    for _ in 0..CASES {
        let Some((o, ex)) = arb_world_and_explanation(&mut rng) else {
            continue;
        };
        let q = SimpleQuery::from_explanation(&o, &ex);
        assert!(questpro::engine::contained_in(&q, &q));
        let text = questpro::query::sparql::format_simple(&q);
        let back = questpro::query::sparql::parse_simple(&text).expect("round trip parses");
        assert!(questpro::query::iso::isomorphic(&q, &back), "{text}");
    }
}

/// Core minimization: the result is no larger, semantically
/// equivalent, and idempotent.
#[test]
fn minimization_is_sound_and_idempotent() {
    use questpro::engine::{equivalent, minimize};
    let mut rng = StdRng::seed_from_u64(0xa7);
    for _ in 0..CASES {
        let Some((o, ex)) = arb_world_and_explanation(&mut rng) else {
            continue;
        };
        // A generalized (all-variables) version of the explanation shape
        // gives folding room.
        let trivial = SimpleQuery::from_explanation(&o, &ex);
        let gen = {
            // Replace constants with variables to expose redundancy.
            let mut b = QueryBuilder::new();
            let mut map = std::collections::HashMap::new();
            for n in trivial.node_ids() {
                let qn = b.var(&format!("v{}", n.index()));
                map.insert(n, qn);
            }
            for e in trivial.edges() {
                b.edge(map[&e.src], &e.pred, map[&e.dst]);
            }
            b.project(map[&trivial.projected()]);
            b.build().expect("well-formed")
        };
        let m = minimize(&gen);
        assert!(m.edge_count() <= gen.edge_count());
        assert!(equivalent(&m, &gen), "{m} vs {gen}");
        let mm = minimize(&m);
        assert_eq!(mm.edge_count(), m.edge_count());
        // Semantics on the concrete ontology agree too.
        assert_eq!(evaluate(&o, &m), evaluate(&o, &gen));
    }
}

/// Adding disequalities can only shrink the result set.
#[test]
fn diseqs_are_monotone() {
    let mut rng = StdRng::seed_from_u64(0xa8);
    for _ in 0..CASES {
        let Some((o, e1, e2)) = arb_world_and_pair(&mut rng) else {
            continue;
        };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let Some(out) = merge_pair(&g1, &g2, &GreedyConfig::default()) else {
            continue;
        };
        let q = out.query;
        let examples = ExampleSet::from_explanations(vec![e1, e2]);
        let diseqs = infer_diseqs(&o, &q, &examples);
        let strict = q.with_diseqs(diseqs).expect("inferred diseqs are valid");
        let plain_results = evaluate(&o, &q);
        let strict_results = evaluate(&o, &strict);
        assert!(strict_results.is_subset(&plain_results));
    }
}

/// Optional-tolerant merging (the future-work extension) also always
/// produces queries consistent with both inputs — even when the
/// predicate shapes differ and strict merging fails.
#[test]
fn optional_merge_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0xa9);
    for _ in 0..CASES {
        let Some((o, e1, e2)) = arb_world_and_pair(&mut rng) else {
            continue;
        };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let cfg = GreedyConfig {
            allow_optional: true,
            ..Default::default()
        };
        if let Some(out) = merge_pair(&g1, &g2, &cfg) {
            assert!(
                consistent_with_explanation(&o, &out.query, &e1),
                "optional merge {} not consistent with E1",
                out.query
            );
            assert!(
                consistent_with_explanation(&o, &out.query, &e2),
                "optional merge {} not consistent with E2",
                out.query
            );
            // Whenever the strict merge succeeds, the optional-tolerant
            // one must too (it only relaxes completeness).
        } else {
            assert!(merge_pair(&g1, &g2, &GreedyConfig::default()).is_none());
        }
    }
}

/// The greedy heuristic never beats the exhaustive minimum — and the
/// exhaustive search (where feasible) lower-bounds it, giving the
/// empirical handle on Prop. 3.5's NP-hard objective.
#[test]
fn greedy_never_beats_exact() {
    use questpro::core::exact_merge_pair;
    let mut rng = StdRng::seed_from_u64(0xaa);
    for _ in 0..CASES {
        let Some((o, e1, e2)) = arb_world_and_pair(&mut rng) else {
            continue;
        };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let greedy = merge_pair(&g1, &g2, &GreedyConfig::default());
        let exact = exact_merge_pair(&g1, &g2, 1 << 16);
        if let (Some(g), Some(x)) = (greedy, exact) {
            assert!(
                x.query.generalization_vars() <= g.query.generalization_vars(),
                "exact {} vs greedy {}",
                x.query,
                g.query
            );
            // The exact result is itself consistent.
            assert!(consistent_with_explanation(&o, &x.query, &e1));
            assert!(consistent_with_explanation(&o, &x.query, &e2));
        }
    }
}

/// Union inference stays consistent for arbitrary example-sets, and at
/// every thread count its output and deterministic stats coincide.
#[test]
fn union_inference_always_consistent() {
    let mut rng = StdRng::seed_from_u64(0xab);
    for _ in 0..CASES {
        let o = build_ontology(&arb_edges(&mut rng));
        let n = rng.random_range(2..5usize);
        let mut exps = Vec::new();
        for _ in 0..n {
            let mask = rng.next_u64() as u32;
            let dis_src = rng.random_bool(0.5);
            if let Some(e) = explanation_from(&o, mask, dis_src) {
                exps.push(e);
            }
        }
        if exps.len() < 2 {
            continue;
        }
        let examples = ExampleSet::from_explanations(exps);
        let (q, stats) = find_consistent_union(&o, &examples, &UnionConfig::default());
        assert!(consistent_with_examples(&o, &q, &examples), "{q}");
        assert!(stats.rounds >= 1);
        assert!(q.len() <= examples.len());
        // Parallel scan: same union, same deterministic counters.
        let cfg = UnionConfig {
            threads: 4,
            ..Default::default()
        };
        let (q4, stats4) = find_consistent_union(&o, &examples, &cfg);
        assert_eq!(q4.to_string(), q.to_string());
        assert_eq!(stats4, stats);
    }
}

#[test]
fn random_span_sequences_never_panic_and_stay_balanced() {
    use questpro::trace;
    trace::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(0x7bace);
    for case in 0..CASES {
        let t = trace::begin(format!("prop case {case}")).expect("one trace per thread");
        let mut stack: Vec<trace::SpanGuard> = Vec::new();
        for _ in 0..rng.random_range(1..40usize) {
            match rng.random_range(0..7u32) {
                0..=2 => {
                    let name =
                        trace::STAGES[rng.random_range(0..trace::STAGES.len() as u32) as usize];
                    stack.push(trace::span(name));
                }
                3 | 4 => {
                    // In-order close of the innermost open span.
                    drop(stack.pop());
                }
                5 => {
                    let name =
                        trace::STAGES[rng.random_range(0..trace::STAGES.len() as u32) as usize];
                    trace::add(name, u64::from(rng.random_range(1..5u32)));
                }
                _ => {
                    // Out-of-order teardown: a Vec drops front-to-back,
                    // so an ancestor guard dies before its descendants
                    // and the collector must auto-close the subtree.
                    stack.clear();
                }
            }
        }
        stack.clear();
        let rec = t.finish();
        // Whatever the op sequence, the record is a well-formed forest:
        // parents precede children in pre-order and depths chain by one.
        for (i, depth, parent) in rec
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.depth, s.parent))
        {
            match parent {
                None => assert_eq!(depth, 0, "case {case}: root span at depth {depth}"),
                Some(p) => {
                    assert!(p < i, "case {case}: span {i} points forward to parent {p}");
                    assert_eq!(
                        depth,
                        rec.spans[p].depth + 1,
                        "case {case}: span {i} skips a depth level"
                    );
                }
            }
            assert!(
                rec.total_ns >= rec.self_ns(i).min(rec.total_ns),
                "case {case}: self time exceeds the trace total"
            );
        }
        // Counters only ever attach to spans that were open at the time.
        for s in &rec.spans {
            for (name, n) in &s.counters {
                assert!(trace::STAGES.contains(name), "case {case}: foreign counter");
                assert!(*n > 0, "case {case}: zero counter recorded");
            }
        }
    }
}

#[test]
fn ring_buffer_drops_oldest_first_with_exact_accounting() {
    use questpro::trace::ring::Ring;
    let mut rng = StdRng::seed_from_u64(0x51b6);
    for case in 0..CASES {
        let cap = rng.random_range(1..9usize);
        let pushes = rng.random_range(0..40usize);
        let mut ring: Ring<usize> = Ring::new(cap);
        let mut evicted = Vec::new();
        for v in 0..pushes {
            if let Some(old) = ring.push(v) {
                evicted.push(old);
            }
        }
        // Exact loss accounting: everything pushed is either retained
        // or reported evicted, and the drop counter matches.
        assert_eq!(ring.len(), pushes.min(cap), "case {case}");
        assert_eq!(ring.dropped() as usize, evicted.len(), "case {case}");
        assert_eq!(ring.len() + evicted.len(), pushes, "case {case}");
        // Oldest-first: the evicted prefix is 0..dropped, the retained
        // suffix continues seamlessly and in order.
        assert_eq!(
            evicted,
            (0..evicted.len()).collect::<Vec<_>>(),
            "case {case}"
        );
        let retained: Vec<usize> = ring.iter().copied().collect();
        assert_eq!(
            retained,
            (evicted.len()..pushes).collect::<Vec<_>>(),
            "case {case}: retention must continue where eviction stopped"
        );
        // latest() is the same data, newest-first, truncated.
        let latest: Vec<usize> = ring.latest(3).into_iter().copied().collect();
        let expect: Vec<usize> = retained.iter().rev().copied().take(3).collect();
        assert_eq!(latest, expect, "case {case}");
    }
}

/// Telemetry aggregation conserves records: for any random stream of
/// finished-session records — including streams whose ontology/version
/// spread overflows the `MAX_KEYS` dimensional cap — every record is
/// either bucketed under a live key or counted dropped, with nothing
/// lost and nothing double-counted.
#[test]
fn telemetry_aggregation_conserves_records() {
    use questpro::telemetry::{Aggregator, Outcome, SessionRecord, MAX_KEYS};
    let mut rng = StdRng::seed_from_u64(0xbadc0de);
    for case in 0..CASES {
        let mut agg = Aggregator::new();
        let n = rng.random_range(1..200usize);
        for i in 0..n {
            let rounds = u64::from(rng.random_range(0..12u32));
            let rec = SessionRecord {
                trace_id: i as u64,
                // Twice MAX_KEYS distinct worlds, times versions and
                // outcomes: most cases overflow the cardinality cap.
                ontology: format!("world-{}", rng.random_range(0..2 * MAX_KEYS as u32)),
                version: u64::from(rng.random_range(0..4u32)),
                outcome: Outcome::ALL[rng.random_range(0..3u32) as usize],
                rounds,
                questions: rounds,
                yes: rounds / 2,
                no: rounds - rounds / 2,
                pool_sizes: (0..rounds).map(|r| r + 1).collect(),
                round_wall_ns: (0..rounds)
                    .map(|_| u64::from(rng.random_range(0..u32::MAX)))
                    .collect(),
                wall_ns: u64::from(rng.random_range(0..u32::MAX)),
                consistency_checks: u64::from(rng.random_range(0..1_000u32)),
                consistency_hits: 0,
                merge_lookups: u64::from(rng.random_range(0..1_000u32)),
                merge_hits: 0,
            };
            agg.record(rec);
        }
        let snap = agg.snapshot();
        assert_eq!(snap.records_total, n as u64, "case {case}");
        assert!(snap.keys.len() <= MAX_KEYS, "case {case}: cap breached");

        // The conservation law: bucket counts == records-in − dropped.
        let bucketed: u64 = snap.keys.iter().map(|k| k.rounds.count).sum();
        assert_eq!(
            bucketed + snap.records_dropped,
            snap.records_total,
            "case {case}: records leaked between intake and histograms"
        );
        // Every per-key histogram agrees on how many sessions it saw.
        for k in &snap.keys {
            assert_eq!(k.rounds.count, k.sessions, "case {case}: {}", k.ontology);
            assert_eq!(k.wall_ns.count, k.sessions, "case {case}: {}", k.ontology);
        }
        // The outcome marginals cover exactly the bucketed sessions.
        let marginal: u64 = agg.marginals().iter().map(|m| m.sessions).sum();
        assert_eq!(marginal, bucketed, "case {case}");
    }
}
