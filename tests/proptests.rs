//! Property-based tests over randomly generated ontologies and
//! explanations: the algebraic invariants that hold for *every* input,
//! not just the paper's fixtures.

use proptest::prelude::*;

use questpro::core::trivial_consistent_query;
use questpro::core::{merge_pair, GreedyConfig, PatternGraph, TrivialOutcome};
use questpro::graph::triples;
use questpro::prelude::*;

/// A random small ontology: up to 10 node values, predicates `p`/`q`,
/// 1–24 distinct edges.
fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::btree_set((0u8..10, 0u8..2, 0u8..10), 1..24)
        .prop_map(|s| s.into_iter().collect())
}

fn build_ontology(edges: &[(u8, u8, u8)]) -> Ontology {
    let mut b = Ontology::builder();
    for &(s, p, d) in edges {
        let pred = if p == 0 { "p" } else { "q" };
        b.edge(&format!("n{s}"), pred, &format!("n{d}"))
            .expect("btree_set deduplicates edges");
    }
    b.build()
}

/// A random explanation: a non-empty edge subset (by mask) plus a
/// distinguished endpoint of the first selected edge.
fn explanation_from(ont: &Ontology, mask: u32, dis_src: bool) -> Option<Explanation> {
    let chosen: Vec<_> = ont
        .edge_ids()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 24)) != 0)
        .map(|(_, e)| e)
        .collect();
    let first = *chosen.first()?;
    let d = ont.edge(first);
    let dis = if dis_src { d.src } else { d.dst };
    let sub = Subgraph::from_edges(ont, chosen);
    Explanation::new(sub, dis).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Triple-format round trips preserve the whole edge structure.
    #[test]
    fn triples_round_trip(edges in arb_edges()) {
        let o = build_ontology(&edges);
        let text = triples::serialize(&o);
        let o2 = triples::parse(&text).expect("serialized form parses");
        prop_assert_eq!(o2.edge_count(), o.edge_count());
        prop_assert_eq!(o2.node_count(), o.node_count());
        for e in o.edge_ids() {
            let d = o.edge(e);
            let src = o2.node_by_value(o.value_str(d.src)).expect("node kept");
            let dst = o2.node_by_value(o.value_str(d.dst)).expect("node kept");
            let pred = o2.pred_by_name(o.pred_str(d.pred)).expect("pred kept");
            prop_assert!(o2.find_edge(src, pred, dst).is_some());
        }
    }

    /// The trivial branch of an explanation is always consistent with it.
    #[test]
    fn trivial_branch_is_self_consistent(
        edges in arb_edges(),
        mask in any::<u32>(),
        dis_src in any::<bool>(),
    ) {
        let o = build_ontology(&edges);
        let Some(ex) = explanation_from(&o, mask, dis_src) else { return Ok(()) };
        let q = SimpleQuery::from_explanation(&o, &ex);
        prop_assert!(consistent_with_explanation(&o, &q, &ex));
        // And its evaluation contains the distinguished node.
        prop_assert!(evaluate(&o, &q).contains(&ex.distinguished()));
    }

    /// Proposition 3.1 agreement: for two explanations, the greedy merge
    /// succeeds exactly when the PTIME existence test says a consistent
    /// simple query exists.
    #[test]
    fn merge_agrees_with_existence_test(
        edges in arb_edges(),
        mask1 in any::<u32>(),
        mask2 in any::<u32>(),
        s1 in any::<bool>(),
        s2 in any::<bool>(),
    ) {
        let o = build_ontology(&edges);
        let (Some(e1), Some(e2)) = (explanation_from(&o, mask1, s1), explanation_from(&o, mask2, s2))
        else { return Ok(()) };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let refs = [&g1, &g2];
        let trivially = matches!(trivial_consistent_query(&refs), TrivialOutcome::Query(_));
        let merged = merge_pair(&g1, &g2, &GreedyConfig::default());
        prop_assert_eq!(merged.is_some(), trivially,
            "merge and existence test disagree");
    }

    /// When the merge succeeds, the produced query is consistent with
    /// both explanations (Proposition 3.8 via 3.13).
    #[test]
    fn merged_query_is_consistent(
        edges in arb_edges(),
        mask1 in any::<u32>(),
        mask2 in any::<u32>(),
        s1 in any::<bool>(),
        s2 in any::<bool>(),
    ) {
        let o = build_ontology(&edges);
        let (Some(e1), Some(e2)) = (explanation_from(&o, mask1, s1), explanation_from(&o, mask2, s2))
        else { return Ok(()) };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        if let Some(out) = merge_pair(&g1, &g2, &GreedyConfig::default()) {
            prop_assert!(consistent_with_explanation(&o, &out.query, &e1),
                "merged query {} not consistent with E1", out.query);
            prop_assert!(consistent_with_explanation(&o, &out.query, &e2),
                "merged query {} not consistent with E2", out.query);
        }
    }

    /// Provenance soundness: every provenance image of a result contains
    /// a derivation of that result.
    #[test]
    fn provenance_images_derive_their_result(
        edges in arb_edges(),
        mask in any::<u32>(),
        dis_src in any::<bool>(),
    ) {
        let o = build_ontology(&edges);
        let Some(ex) = explanation_from(&o, mask, dis_src) else { return Ok(()) };
        let q = SimpleQuery::from_explanation(&o, &ex);
        for res in evaluate(&o, &q).into_iter().take(4) {
            let images = provenance_of(&o, &q, res, Some(4));
            prop_assert!(!images.is_empty());
            for img in images {
                prop_assert!(img.contains_node(res));
                let again = Matcher::new(&o, &q)
                    .bind(q.projected(), res)
                    .restrict(&img)
                    .exists();
                prop_assert!(again, "image does not re-derive its result");
            }
        }
    }

    /// Containment is reflexive, and the SPARQL text round-trips to an
    /// isomorphic query.
    #[test]
    fn query_relations_are_sane(
        edges in arb_edges(),
        mask in any::<u32>(),
        dis_src in any::<bool>(),
    ) {
        let o = build_ontology(&edges);
        let Some(ex) = explanation_from(&o, mask, dis_src) else { return Ok(()) };
        let q = SimpleQuery::from_explanation(&o, &ex);
        prop_assert!(questpro::engine::contained_in(&q, &q));
        let text = questpro::query::sparql::format_simple(&q);
        let back = questpro::query::sparql::parse_simple(&text).expect("round trip parses");
        prop_assert!(questpro::query::iso::isomorphic(&q, &back), "{text}");
    }

    /// Core minimization: the result is no larger, semantically
    /// equivalent, and idempotent.
    #[test]
    fn minimization_is_sound_and_idempotent(
        edges in arb_edges(),
        mask in any::<u32>(),
        dis_src in any::<bool>(),
    ) {
        use questpro::engine::{equivalent, minimize};
        let o = build_ontology(&edges);
        let Some(ex) = explanation_from(&o, mask, dis_src) else { return Ok(()) };
        // A generalized (all-variables) version of the explanation shape
        // gives folding room.
        let trivial = SimpleQuery::from_explanation(&o, &ex);
        let gen = {
            // Replace constants with variables to expose redundancy.
            let mut b = QueryBuilder::new();
            let mut map = std::collections::HashMap::new();
            for n in trivial.node_ids() {
                let qn = b.var(&format!("v{}", n.index()));
                map.insert(n, qn);
            }
            for e in trivial.edges() {
                b.edge(map[&e.src], &e.pred, map[&e.dst]);
            }
            b.project(map[&trivial.projected()]);
            b.build().expect("well-formed")
        };
        let m = minimize(&gen);
        prop_assert!(m.edge_count() <= gen.edge_count());
        prop_assert!(equivalent(&m, &gen), "{m} vs {gen}");
        let mm = minimize(&m);
        prop_assert_eq!(mm.edge_count(), m.edge_count());
        // Semantics on the concrete ontology agree too.
        prop_assert_eq!(evaluate(&o, &m), evaluate(&o, &gen));
    }

    /// Adding disequalities can only shrink the result set.
    #[test]
    fn diseqs_are_monotone(
        edges in arb_edges(),
        mask1 in any::<u32>(),
        mask2 in any::<u32>(),
        s1 in any::<bool>(),
        s2 in any::<bool>(),
    ) {
        let o = build_ontology(&edges);
        let (Some(e1), Some(e2)) = (explanation_from(&o, mask1, s1), explanation_from(&o, mask2, s2))
        else { return Ok(()) };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let Some(out) = merge_pair(&g1, &g2, &GreedyConfig::default()) else { return Ok(()) };
        let q = out.query;
        let examples = ExampleSet::from_explanations(vec![e1, e2]);
        let diseqs = infer_diseqs(&o, &q, &examples);
        let strict = q.with_diseqs(diseqs).expect("inferred diseqs are valid");
        let plain_results = evaluate(&o, &q);
        let strict_results = evaluate(&o, &strict);
        prop_assert!(strict_results.is_subset(&plain_results));
    }

    /// Optional-tolerant merging (the future-work extension) also always
    /// produces queries consistent with both inputs — even when the
    /// predicate shapes differ and strict merging fails.
    #[test]
    fn optional_merge_is_consistent(
        edges in arb_edges(),
        mask1 in any::<u32>(),
        mask2 in any::<u32>(),
        s1 in any::<bool>(),
        s2 in any::<bool>(),
    ) {
        let o = build_ontology(&edges);
        let (Some(e1), Some(e2)) = (explanation_from(&o, mask1, s1), explanation_from(&o, mask2, s2))
        else { return Ok(()) };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let cfg = GreedyConfig { allow_optional: true, ..Default::default() };
        if let Some(out) = merge_pair(&g1, &g2, &cfg) {
            prop_assert!(consistent_with_explanation(&o, &out.query, &e1),
                "optional merge {} not consistent with E1", out.query);
            prop_assert!(consistent_with_explanation(&o, &out.query, &e2),
                "optional merge {} not consistent with E2", out.query);
            // Whenever the strict merge succeeds, the optional-tolerant
            // one must too (it only relaxes completeness).
        } else {
            prop_assert!(merge_pair(&g1, &g2, &GreedyConfig::default()).is_none());
        }
    }

    /// The greedy heuristic never beats the exhaustive minimum — and the
    /// exhaustive search (where feasible) lower-bounds it, giving the
    /// empirical handle on Prop. 3.5's NP-hard objective.
    #[test]
    fn greedy_never_beats_exact(
        edges in arb_edges(),
        mask1 in any::<u32>(),
        mask2 in any::<u32>(),
        s1 in any::<bool>(),
        s2 in any::<bool>(),
    ) {
        use questpro::core::exact_merge_pair;
        let o = build_ontology(&edges);
        let (Some(e1), Some(e2)) = (explanation_from(&o, mask1, s1), explanation_from(&o, mask2, s2))
        else { return Ok(()) };
        let g1 = PatternGraph::from_explanation(&o, &e1);
        let g2 = PatternGraph::from_explanation(&o, &e2);
        let greedy = merge_pair(&g1, &g2, &GreedyConfig::default());
        let exact = exact_merge_pair(&g1, &g2, 1 << 16);
        if let (Some(g), Some(x)) = (greedy, exact) {
            prop_assert!(
                x.query.generalization_vars() <= g.query.generalization_vars(),
                "exact {} vs greedy {}",
                x.query, g.query
            );
            // The exact result is itself consistent.
            prop_assert!(consistent_with_explanation(&o, &x.query, &e1));
            prop_assert!(consistent_with_explanation(&o, &x.query, &e2));
        }
    }

    /// The Figure-6 instrumentation grows with the number of
    /// explanations handed to union inference.
    #[test]
    fn union_inference_always_consistent(
        edges in arb_edges(),
        masks in proptest::collection::vec(any::<u32>(), 2..5),
        sides in proptest::collection::vec(any::<bool>(), 2..5),
    ) {
        let o = build_ontology(&edges);
        let mut exps = Vec::new();
        for (m, s) in masks.iter().zip(sides.iter()) {
            if let Some(e) = explanation_from(&o, *m, *s) {
                exps.push(e);
            }
        }
        if exps.len() < 2 { return Ok(()) }
        let examples = ExampleSet::from_explanations(exps);
        let (q, stats) = find_consistent_union(&o, &examples, &UnionConfig::default());
        prop_assert!(consistent_with_examples(&o, &q, &examples), "{q}");
        prop_assert!(stats.rounds >= 1);
        prop_assert!(q.len() <= examples.len());
    }
}
