//! Determinism guarantees: equal seeds and inputs must reproduce every
//! pipeline stage bit-for-bit — the property all experiment numbers in
//! EXPERIMENTS.md rest on.

use questpro::data::*;
use questpro::prelude::*;
use questpro::rng::StdRng;

#[test]
fn generators_are_reproducible() {
    for _ in 0..2 {
        let a = generate_sp2b(&Sp2bConfig::default());
        let b = generate_sp2b(&Sp2bConfig::default());
        assert_eq!(a.edge_count(), b.edge_count());
    }
    let a = generate_bsbm(&BsbmConfig::default());
    let b = generate_bsbm(&BsbmConfig::default());
    assert_eq!(a.edge_count(), b.edge_count());
    let a = generate_movies(&MoviesConfig::default());
    let b = generate_movies(&MoviesConfig::default());
    assert_eq!(a.edge_count(), b.edge_count());
}

#[test]
fn sampling_and_inference_are_seed_deterministic() {
    let ont = generate_sp2b(&Sp2bConfig {
        authors: 100,
        articles: 150,
        inproceedings: 80,
        ..Default::default()
    });
    let target = sp2b_workload()
        .into_iter()
        .find(|w| w.id == "q8a")
        .expect("q8a in catalog")
        .query;
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let examples = sample_example_set(&ont, &target, 4, &mut rng, 6);
        let (candidates, stats) = infer_top_k(&ont, &examples, &TopKConfig::default());
        (
            examples,
            candidates
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            stats,
        )
    };
    let (e1, c1, s1) = run(99);
    let (e2, c2, s2) = run(99);
    assert_eq!(e1, e2);
    assert_eq!(c1, c2);
    assert_eq!(s1, s2);
    // A different seed draws different examples.
    let (e3, _, _) = run(100);
    assert_ne!(e1, e3);
}

#[test]
fn sessions_are_seed_deterministic() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let target = {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        UnionQuery::single(b.build().expect("well-formed"))
    };
    let run = |seed: u64| {
        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SessionConfig {
            refine: true,
            ..Default::default()
        };
        let r = run_session(&ont, &examples, &mut oracle, &mut rng, &cfg);
        (
            r.query.to_string(),
            r.selection_transcript.len(),
            r.refinement_questions,
        )
    };
    assert_eq!(run(7), run(7));
}

/// One seeded world per generator family, kept small so the whole
/// parallel-vs-sequential sweep stays fast.
fn small_worlds() -> Vec<(&'static str, Ontology, UnionQuery)> {
    let sp2b = generate_sp2b(&Sp2bConfig {
        authors: 80,
        articles: 120,
        inproceedings: 60,
        ..Default::default()
    });
    let bsbm = generate_bsbm(&BsbmConfig::default());
    let movies = generate_movies(&MoviesConfig::default());
    let pick = |mut ws: Vec<WorkloadQuery>, id: &str| {
        ws.iter()
            .position(|w| w.id == id)
            .map(|i| ws.swap_remove(i).query)
            .expect("workload query in catalog")
    };
    vec![
        ("sp2b", sp2b, pick(sp2b_workload(), "q8a")),
        ("bsbm", bsbm, pick(bsbm_workload(), "q2v0")),
        ("movies", movies, pick(movie_workload(), "m1")),
    ]
}

/// The tentpole contract: evaluation, provenance, and top-k inference
/// are bit-identical at every thread count, on every world family.
#[test]
fn parallel_pipeline_matches_sequential_on_all_worlds() {
    use questpro::engine::{evaluate_union_with, provenance_of_union_with};

    for (name, ont, target) in small_worlds() {
        // Evaluation.
        let seq_results = evaluate_union(&ont, &target);
        for threads in [2usize, 8] {
            assert_eq!(
                evaluate_union_with(&ont, &target, threads),
                seq_results,
                "{name}: {threads}-thread evaluation diverged"
            );
        }

        // Provenance (limit-truncated, the shape Algorithm 3 relies on).
        if let Some(&res) = seq_results.iter().next() {
            let seq_prov = provenance_of_union(&ont, &target, res, Some(6));
            for threads in [2usize, 8] {
                assert_eq!(
                    provenance_of_union_with(&ont, &target, res, Some(6), threads),
                    seq_prov,
                    "{name}: {threads}-thread provenance diverged"
                );
            }
        }

        // Top-k inference: candidate queries and deterministic counters.
        let mut rng = StdRng::seed_from_u64(0xd15);
        let examples = sample_example_set(&ont, &target, 5, &mut rng, 6);
        if examples.len() < 2 {
            continue;
        }
        let render = |cs: &[UnionQuery]| cs.iter().map(ToString::to_string).collect::<Vec<_>>();
        let (seq_c, seq_s) = infer_top_k(&ont, &examples, &TopKConfig::default());
        for threads in [1usize, 2, 8] {
            let cfg = TopKConfig {
                threads,
                ..Default::default()
            };
            let (par_c, par_s) = infer_top_k(&ont, &examples, &cfg);
            assert_eq!(
                render(&par_c),
                render(&seq_c),
                "{name}: {threads}-thread top-k candidates diverged"
            );
            assert_eq!(
                par_s, seq_s,
                "{name}: {threads}-thread top-k counters diverged"
            );
        }
    }
}

/// Snapshot-path contract: an ontology rebuilt from a dictionary-encoded
/// store (encode → decode → to_ontology) answers every workload query
/// with the same result *values* as the directly interned ontology, on
/// every world family. Node ids may be renumbered (store ids are
/// sorted-label ranks), so results compare as sorted value strings.
#[test]
fn store_backed_evaluation_matches_interned_on_all_worlds() {
    for (name, ont, target) in small_worlds() {
        let store = questpro_store::TripleStore::from_ontology(&ont)
            .expect("generated worlds fit the u32 id space");
        let bytes = questpro_store::encode(&store);
        let restored = questpro_store::decode(&bytes)
            .expect("own snapshot decodes")
            .to_ontology()
            .expect("validated store assembles");
        let render = |o: &Ontology| {
            let mut vals: Vec<String> = evaluate_union(o, &target)
                .iter()
                .map(|&r| o.value_str(r).to_string())
                .collect();
            vals.sort_unstable();
            vals
        };
        let direct = render(&ont);
        assert!(!direct.is_empty(), "{name}: workload query has results");
        assert_eq!(
            render(&restored),
            direct,
            "{name}: store-backed evaluation diverged from the interned path"
        );
    }
}

#[test]
fn study_reports_are_seed_deterministic() {
    use questpro::feedback::{simulate_study, StudyConfig};
    let ont = generate_movies(&MoviesConfig::default());
    let targets: Vec<UnionQuery> = movie_workload().into_iter().map(|w| w.query).collect();
    let cfg = StudyConfig {
        users: 3,
        interactions_per_user: 2,
        ..Default::default()
    };
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = simulate_study(&ont, &targets, &cfg, &mut rng);
        (r.successes(), r.redo_successes(), r.failures())
    };
    assert_eq!(run(5), run(5));
}

/// The differential trace battery: the *structure* of a recorded trace
/// (span names, nesting, counters — never timings) must be identical at
/// every thread count, on every world family. This is what makes
/// `questpro trace` output and `/debug/traces` comparable across hosts:
/// spans only ever open on the orchestrating thread, so `map_chunked`
/// worker threads can never add or remove tree nodes.
#[test]
fn trace_structure_is_thread_invariant_on_all_worlds() {
    questpro::trace::set_enabled(true);
    for (name, ont, target) in small_worlds() {
        let run = |threads: usize| {
            let trace = questpro::trace::begin(format!("det {name} x{threads}"))
                .expect("no other trace is active on this thread");
            let mut rng = StdRng::seed_from_u64(0xd15);
            let examples = sample_example_set(&ont, &target, 5, &mut rng, 6);
            if examples.len() >= 2 {
                let cfg = SessionConfig {
                    topk: TopKConfig {
                        threads,
                        ..Default::default()
                    },
                    refine: true,
                    ..Default::default()
                };
                let mut oracle = TargetOracle::new(target.clone());
                let _ = run_session(&ont, &examples, &mut oracle, &mut rng, &cfg);
            }
            trace.finish().structure()
        };
        let seq = run(1);
        assert!(!seq.is_empty(), "{name}: the traced run recorded no spans");
        assert!(
            seq.iter().any(|(_, n, _)| *n == "infer.topk"),
            "{name}: the pipeline must pass through top-k inference"
        );
        for threads in [2usize, 8] {
            assert_eq!(
                run(threads),
                seq,
                "{name}: {threads}-thread trace structure diverged from sequential"
            );
        }
    }
}
