//! Differential oracle for live ontology updates.
//!
//! The incremental paths ([`questpro_store::TripleStore::apply_update`]
//! and [`Ontology::apply_delta`](questpro::graph::Ontology::apply_delta))
//! must be indistinguishable from throwing the world away and
//! rebuilding it from scratch — after *every* step of a fuzzed update
//! sequence, at every thread count, and while interactive sessions
//! pinned to an older version keep answering questions in between
//! updates. This is the tier-1 counterpart of
//! `questpro fuzz --surface update`: small enough to run on every CI
//! push, but exercising the same three oracles (accept/reject
//! agreement, byte-identical snapshots, identical query answers).

use std::collections::BTreeSet;

use questpro::data::{erdos_example_set, erdos_ontology};
use questpro::engine::evaluate_union_with;
use questpro::feedback::{InteractiveSession, SessionConfig};
use questpro::graph::{triples, Ontology, TripleDelta};
use questpro::prelude::*;
use questpro::rng::{Rng, StdRng};
use questpro_store::TripleStore;

/// The projection `?x --pred--> ?y` over one predicate label: the
/// smallest query whose answer set is sensitive to every triple carrying
/// that predicate.
fn one_edge_query(pred: &str) -> UnionQuery {
    let mut b = QueryBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    b.edge(x, pred, y).project(x);
    UnionQuery::single(b.build().expect("one-edge query is well-formed"))
}

/// Evaluates `q` on `ont` and renders the answers as sorted label
/// strings, so ontologies with different internal node numbering (the
/// direct incremental graph vs. the store-rebuilt one) compare equal.
fn answers(ont: &Ontology, q: &UnionQuery, threads: usize) -> Vec<String> {
    let mut vals: Vec<String> = evaluate_union_with(ont, q, threads)
        .iter()
        .map(|&r| ont.value_str(r).to_string())
        .collect();
    vals.sort_unstable();
    vals
}

/// Draws a small random batch against the current store: deletes are
/// mostly real rows (sometimes fabricated misses), inserts are mostly
/// fresh labels (sometimes deliberate duplicates), so both the accept
/// and the reject paths get traffic.
fn random_delta(rng: &mut StdRng, store: &TripleStore, round: usize) -> TripleDelta {
    let row_labels = |row: usize| {
        let [s, p, o] = store.triples()[row];
        [
            store.nodes().label(s).to_string(),
            store.preds().label(p).to_string(),
            store.nodes().label(o).to_string(),
        ]
    };
    let mut delta = TripleDelta::default();
    for _ in 0..rng.random_range(0..3u32) {
        if !store.triples().is_empty() && rng.random_bool(0.8) {
            delta
                .deletes
                .push(row_labels(rng.random_range(0..store.triples().len())));
        } else {
            delta
                .deletes
                .push(["ghost".into(), "haunts".into(), "nobody".into()]);
        }
    }
    for i in 0..rng.random_range(0..4u32) {
        if !store.triples().is_empty() && rng.random_bool(0.15) {
            // Deliberate collision with a surviving row.
            delta
                .inserts
                .push(row_labels(rng.random_range(0..store.triples().len())));
        } else {
            let preds = ["knows", "cites", "likes"];
            delta.inserts.push([
                format!("n{round}_{i}"),
                preds[rng.random_range(0..preds.len())].to_string(),
                format!("m{round}_{i}"),
            ]);
        }
    }
    if delta.inserts.is_empty() && delta.deletes.is_empty() {
        delta.inserts.push([
            format!("lone{round}"),
            "knows".into(),
            format!("lone{round}_dst"),
        ]);
    }
    delta
}

/// The tentpole oracle: fuzzed update sequences where, at every step,
/// the incremental store is byte-identical to a scratch rebuild, both
/// layers agree on accept/reject, and every predicate's one-edge query
/// answers identically on the incremental and scratch worlds at
/// threads 1, 2, and 8.
#[test]
fn fuzzed_update_sequences_match_scratch_rebuilds_at_all_thread_counts() {
    let base = triples::parse("a knows b\nb knows c\nc cites d\nd cites a\na likes d")
        .expect("base world parses");
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + seed);
        let mut ont = base.clone();
        let mut store = TripleStore::from_ontology(&ont).expect("base store builds");
        let mut accepted = 0usize;
        for round in 0..10 {
            let delta = random_delta(&mut rng, &store, round);
            let inc_store = store.apply_update(&delta);
            let inc_graph = ont.apply_delta(&delta);
            match (inc_store, inc_graph) {
                (Ok(new_store), Ok((new_ont, summary))) => {
                    accepted += 1;
                    assert_eq!(summary.inserted, delta.inserts.len());
                    assert_eq!(summary.deleted, delta.deletes.len());
                    // Snapshot-byte oracle: incremental == from scratch.
                    let scratch =
                        TripleStore::from_ontology(&new_ont).expect("scratch rebuild fits");
                    assert_eq!(
                        questpro_store::encode(&new_store),
                        questpro_store::encode(&scratch),
                        "seed {seed} round {round}: incremental snapshot diverged from scratch"
                    );
                    // Query oracle: identical answers on both worlds, at
                    // every thread count, for every live predicate.
                    let rebuilt = new_store
                        .to_ontology()
                        .expect("incremental store assembles");
                    let preds: BTreeSet<String> = (0..new_store.preds().len())
                        .map(|i| new_store.preds().label(i as u32).to_string())
                        .collect();
                    for pred in &preds {
                        let q = one_edge_query(pred);
                        let seq = answers(&new_ont, &q, 1);
                        for threads in [1usize, 2, 8] {
                            assert_eq!(
                                answers(&new_ont, &q, threads),
                                seq,
                                "seed {seed} round {round} pred {pred:?}: threaded eval diverged"
                            );
                            assert_eq!(
                                answers(&rebuilt, &q, threads),
                                seq,
                                "seed {seed} round {round} pred {pred:?}: store-backed eval \
                                 diverged from the incremental graph"
                            );
                        }
                    }
                    store = new_store;
                    ont = new_ont;
                }
                (Err(_), Err(_)) => {} // both layers reject: fine
                (s, g) => panic!(
                    "seed {seed} round {round}: store and graph disagree on the batch \
                     (store={:?}, graph={:?})",
                    s.is_ok(),
                    g.err(),
                ),
            }
        }
        assert!(
            accepted >= 3,
            "seed {seed}: the generator should accept most rounds (got {accepted})"
        );
    }
}

/// Session snapshots persist wall clocks for telemetry continuity;
/// those are explicitly outside the determinism contract (exactly the
/// fields `SessionRecord::deterministic_key` excludes), so the drift
/// oracle zeroes every `wall_ns` value before comparing.
fn zero_wall_clocks(mut text: String) -> String {
    let needle = "\"wall_ns\":\"";
    let mut at = 0;
    while let Some(i) = text[at..].find(needle) {
        let start = at + i + needle.len();
        let end = start + text[start..].find('"').expect("terminated wall field");
        text.replace_range(start..end, "0");
        at = start + 1;
    }
    text
}

/// Sessions pinned to a version are completely unaffected by later
/// updates: an [`InteractiveSession`] answering questions interleaved
/// with head mutations stays bit-identical (full snapshot JSON, wall
/// clocks zeroed) to a control session that ran with the world frozen.
#[test]
fn interleaved_sessions_on_pinned_versions_are_unaffected_by_updates() {
    let pinned = erdos_ontology();
    let examples = erdos_example_set(&pinned);
    let cfg = SessionConfig::default();

    let mut live = InteractiveSession::start(&pinned, &examples, &cfg, 42).expect("session starts");
    let mut control =
        InteractiveSession::start(&pinned, &examples, &cfg, 42).expect("control starts");

    // Head evolves while the pinned session keeps answering.
    let mut rng = StdRng::seed_from_u64(7);
    let mut head = pinned.clone();
    let mut head_store = TripleStore::from_ontology(&head).expect("head store builds");
    let mut round = 0usize;
    while !live.is_done() {
        // One head mutation between every pair of questions.
        let delta = random_delta(&mut rng, &head_store, round);
        if let (Ok(s), Ok((o, _))) = (head_store.apply_update(&delta), head.apply_delta(&delta)) {
            head_store = s;
            head = o;
        }
        round += 1;
        live.answer(&pinned, true).expect("a question was pending");
        control
            .answer(&pinned, true)
            .expect("control has the same question");
        assert_eq!(
            zero_wall_clocks(live.snapshot(&pinned).to_text()),
            zero_wall_clocks(control.snapshot(&pinned).to_text()),
            "round {round}: the pinned session drifted from the frozen-world control"
        );
        assert!(round < 1000, "session failed to converge");
    }
    assert!(control.is_done());
    assert_eq!(
        live.final_query()
            .expect("done session has a query")
            .to_string(),
        control
            .final_query()
            .expect("control finished too")
            .to_string(),
    );
    // Make sure the head really diverged (random rounds may cancel out):
    // one guaranteed insert, then the pinned world must differ.
    let bump = TripleDelta {
        inserts: vec![["paperX".into(), "wb".into(), "Newcomer".into()]],
        deletes: vec![],
    };
    head_store = head_store
        .apply_update(&bump)
        .expect("fresh insert applies");
    head = head.apply_delta(&bump).expect("fresh insert applies").0;
    assert_ne!(
        questpro_store::encode(&head_store),
        questpro_store::encode(&TripleStore::from_ontology(&pinned).expect("pinned store builds")),
        "the interleaved updates should actually have changed the head"
    );

    // And a fresh session against the mutated head still works end to
    // end — new sessions see the new world, old sessions never do.
    let target = one_edge_query("wb");
    let mut srng = StdRng::seed_from_u64(9);
    let head_examples = questpro::engine::sample_example_set(&head, &target, 3, &mut srng, 6);
    if head_examples.len() >= 2 {
        let mut s =
            InteractiveSession::start(&head, &head_examples, &cfg, 1).expect("head session starts");
        let mut guard = 0;
        while !s.is_done() {
            s.answer(&head, true).expect("pending question");
            guard += 1;
            assert!(guard < 1000, "head session failed to converge");
        }
        assert!(s.final_query().is_some());
    }
}
