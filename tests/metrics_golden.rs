//! Golden-file test freezing the `GET /metrics` exposition format.
//!
//! Scrapers and dashboards key on metric *names, types, and label
//! sets*; those must never change silently. Sample values vary run to
//! run, so every value is normalized to `V` before comparison — the
//! golden freezes the shape, not the numbers.
//!
//! To intentionally change the format, update the golden with:
//! `UPDATE_GOLDEN=1 cargo test --test metrics_golden`.

use questpro_server::metrics::{render, HttpCounters, OntologyCounters};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.golden")
}

/// Replaces the trailing sample value of every non-comment line with
/// `V`, leaving names, labels, and `# HELP`/`# TYPE` lines verbatim.
fn normalize(exposition: &str) -> String {
    let mut out = String::new();
    for line in exposition.lines() {
        if line.starts_with('#') || line.is_empty() {
            out.push_str(line);
        } else {
            let cut = line.rfind(' ').expect("sample lines are `name value`");
            out.push_str(&line[..cut]);
            out.push_str(" V");
        }
        out.push('\n');
    }
    out
}

#[test]
fn metrics_exposition_format_is_frozen() {
    // Exercise the counters so every status class renders — the *shape*
    // must be identical whether or not traffic happened.
    let http = HttpCounters::default();
    http.record_request();
    http.record_response(200);
    http.record_response(404);
    http.record_overload();
    let onto = OntologyCounters::default();
    onto.record_update();
    onto.record_rejection();
    let got = normalize(&render(&http, 2, &onto, 3));

    // The format is also traffic-independent: a cold scrape has the
    // exact same lines.
    assert_eq!(
        got,
        normalize(&render(
            &HttpCounters::default(),
            0,
            &OntologyCounters::default(),
            0
        )),
        "exposition shape must not depend on traffic"
    );

    // The live-update counters are part of the frozen surface.
    for name in [
        "questpro_ontology_updates_total",
        "questpro_ontology_update_rejections_total",
        "questpro_ontology_versions_open",
    ] {
        assert!(got.contains(name), "{name} missing from the exposition");
    }

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "GET /metrics exposition changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test metrics_golden"
    );
}

#[test]
fn every_trace_stage_appears_in_the_exposition() {
    let text = render(&HttpCounters::default(), 0, &OntologyCounters::default(), 0);
    for stage in questpro_trace::STAGES {
        assert!(
            text.contains(&format!("stage=\"{stage}\",le=\"+Inf\"")),
            "stage {stage} missing from the histogram family"
        );
    }
}

#[test]
fn route_labels_and_the_exposition_cannot_drift_apart() {
    use questpro_server::router::ROUTES;

    let text = render(&HttpCounters::default(), 0, &OntologyCounters::default(), 0);
    // Forward: every dispatchable route renders its full histogram even
    // with zero traffic.
    for route in ROUTES {
        assert!(
            text.contains(&format!("route=\"{route}\",le=\"+Inf\"")),
            "route {route} missing from the histogram family"
        );
    }
    // Backward: the exposition carries no label outside the dispatch
    // table (a stale label here means ROUTES and the router diverged).
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let Some(rest) = line.split("route=\"").nth(1) else {
            continue;
        };
        let label = rest.split('"').next().expect("closing quote");
        assert!(
            ROUTES.contains(&label),
            "exposition carries unknown route label {label:?}"
        );
    }
}
