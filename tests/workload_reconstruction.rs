//! End-to-end reconstruction of every workload target query from
//! sampled provenance — the invariant behind the paper's Section VI-B
//! experiments, at reduced scale so the suite stays fast.

use questpro::data::*;
use questpro::prelude::*;
use questpro::rng::StdRng;

fn small_sp2b() -> Ontology {
    generate_sp2b(&Sp2bConfig {
        authors: 120,
        articles: 220,
        inproceedings: 140,
        ..Default::default()
    })
}

fn small_bsbm() -> Ontology {
    generate_bsbm(&BsbmConfig {
        products: 120,
        offers: 220,
        reviews: 220,
        ..Default::default()
    })
}

/// The reconstruction loop of Section VI-B: add sampled explanations
/// until some top-k candidate has the target's semantics.
fn explanations_needed(
    ont: &Ontology,
    target: &UnionQuery,
    seed: u64,
    cap: usize,
) -> Option<usize> {
    let cfg = TopKConfig::default();
    let mut rng = StdRng::seed_from_u64(seed);
    for n in 2..=cap {
        let examples = sample_example_set(ont, target, n, &mut rng, 6);
        if examples.len() < 2 {
            return None;
        }
        let (candidates, _) = infer_top_k(ont, &examples, &cfg);
        // The full pipeline augments candidates with inferred
        // disequalities (Section V); targets with diseqs are only
        // reachable through that step.
        let target_results = evaluate_union(ont, target);
        if candidates.iter().any(|c| {
            let c_all = with_all_diseqs(ont, c, &examples);
            union_equivalent(c, target)
                || union_equivalent(&c_all, target)
                || evaluate_union(ont, c) == target_results
                || evaluate_union(ont, &c_all) == target_results
        }) {
            return Some(n);
        }
    }
    None
}

#[test]
fn sp2b_targets_are_reconstructible() {
    let ont = small_sp2b();
    for w in sp2b_workload() {
        let needed = explanations_needed(&ont, &w.query, 42, 11);
        assert!(
            needed.is_some(),
            "{} not reconstructed within 11 explanations",
            w.id
        );
    }
}

#[test]
fn bsbm_targets_are_reconstructible() {
    let ont = small_bsbm();
    for w in bsbm_workload() {
        let needed = explanations_needed(&ont, &w.query, 43, 11);
        assert!(
            needed.is_some(),
            "{} not reconstructed within 11 explanations",
            w.id
        );
    }
}

#[test]
fn movie_targets_are_reconstructible() {
    let ont = generate_movies(&MoviesConfig::default());
    for w in movie_workload() {
        let needed = explanations_needed(&ont, &w.query, 44, 11);
        assert!(
            needed.is_some(),
            "{} not reconstructed within 11 explanations",
            w.id
        );
    }
}

#[test]
fn sampled_explanations_are_consistent_with_their_target() {
    // The generative invariant behind all experiments: a query is always
    // consistent with examples sampled from its own provenance.
    let ont = small_sp2b();
    let mut rng = StdRng::seed_from_u64(7);
    for w in sp2b_workload() {
        let examples = sample_example_set(&ont, &w.query, 4, &mut rng, 6);
        assert!(
            consistent_with_examples(&ont, &w.query, &examples),
            "{} inconsistent with its own samples",
            w.id
        );
    }
}

#[test]
fn inference_output_is_always_consistent() {
    let ont = small_bsbm();
    let mut rng = StdRng::seed_from_u64(17);
    for w in bsbm_workload() {
        let examples = sample_example_set(&ont, &w.query, 3, &mut rng, 6);
        if examples.len() < 2 {
            continue;
        }
        let (candidates, _) = infer_top_k(&ont, &examples, &TopKConfig::default());
        for c in &candidates {
            assert!(
                consistent_with_examples(&ont, c, &examples),
                "{}: candidate {c} inconsistent",
                w.id
            );
        }
    }
}
