//! Property and differential tests for the Volcano-style cost
//! estimator behind the matcher's edge ordering (DESIGN.md §9).
//!
//! Three contracts:
//!
//! 1. **Total ordering** — every estimate is a finite, non-negative
//!    `f64`, so sorting candidate edges by cost (via `total_cmp`) is a
//!    total order on any mix of predicates and binding states.
//! 2. **Stability under id remapping** — estimates depend only on
//!    per-predicate statistics (cardinality, distinct subjects/objects),
//!    never on interned ids, so re-inserting the same triples in a
//!    different order leaves every per-predicate estimate unchanged.
//! 3. **Ordering differential** — cost-based and classic ordering are
//!    pure search-effort knobs: top-k inference output is byte-identical
//!    on all three benchmark worlds.

use questpro::data::*;
use questpro::engine::{edge_cost, sample_example_set, set_ordering_mode, OrderingMode};
use questpro::graph::{Ontology, PredId};
use questpro::prelude::*;
use questpro::rng::StdRng;

fn small_worlds() -> Vec<(&'static str, Ontology)> {
    vec![
        (
            "sp2b",
            generate_sp2b(&Sp2bConfig {
                authors: 120,
                articles: 220,
                inproceedings: 140,
                ..Default::default()
            }),
        ),
        (
            "bsbm",
            generate_bsbm(&BsbmConfig {
                products: 120,
                offers: 220,
                reviews: 220,
                ..Default::default()
            }),
        ),
        ("movies", generate_movies(&MoviesConfig::default())),
    ]
}

const BINDINGS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

/// Every estimate over every (predicate, binding) combination of every
/// world is finite and non-negative, so `total_cmp` sorting is a total
/// order with no NaN poison values.
#[test]
fn cost_ordering_is_total_over_all_worlds() {
    for (name, ont) in small_worlds() {
        let mut costs = Vec::new();
        for praw in 0..ont.pred_count() {
            let p = PredId::from_usize(praw);
            for (sb, db) in BINDINGS {
                let c = edge_cost(&ont, p, sb, db);
                assert!(
                    c.is_finite() && c >= 0.0,
                    "{name}: pred {praw} ({sb},{db}) produced {c}"
                );
                costs.push(c);
            }
        }
        costs.sort_by(f64::total_cmp);
        // Antisymmetry + transitivity spot-check on the sorted run.
        for w in costs.windows(2) {
            assert_ne!(w[0].total_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
    }
}

/// More-bound never costs more: binding an extra endpoint can only
/// shrink the expected scan (the estimator divides by distinct counts).
#[test]
fn binding_an_endpoint_never_increases_cost() {
    for (name, ont) in small_worlds() {
        for praw in 0..ont.pred_count() {
            let p = PredId::from_usize(praw);
            let free = edge_cost(&ont, p, false, false);
            for (sb, db) in [(true, false), (false, true)] {
                let one = edge_cost(&ont, p, sb, db);
                let both = edge_cost(&ont, p, true, true);
                assert!(one <= free, "{name}: pred {praw} one-bound > free");
                assert!(both <= one, "{name}: pred {praw} both-bound > one-bound");
            }
        }
    }
}

/// Re-inserting the same triples in reversed order gives every node and
/// edge a different interned id, but the per-predicate-name estimates
/// must be bit-identical: the estimator reads only statistics.
#[test]
fn estimates_are_stable_under_id_remapping() {
    for (name, ont) in small_worlds() {
        // Collect the triples, then rebuild in reverse insertion order.
        let mut triples: Vec<(String, String, String)> = ont
            .edge_ids()
            .map(|e| {
                let ed = ont.edge(e);
                (
                    ont.value_str(ed.src).to_string(),
                    ont.pred_str_of(e).to_string(),
                    ont.value_str(ed.dst).to_string(),
                )
            })
            .collect();
        triples.reverse();
        let mut b = Ontology::builder();
        for (s, p, d) in &triples {
            b.edge(s, p, d).expect("round-tripped triple");
        }
        let remapped = b.build();
        assert_eq!(remapped.edge_count(), ont.edge_count(), "{name}: lossless");

        for praw in 0..ont.pred_count() {
            let p = PredId::from_usize(praw);
            let p2 = remapped
                .pred_by_name(ont.pred_str(p))
                .expect("same predicate set");
            for (sb, db) in BINDINGS {
                assert_eq!(
                    edge_cost(&ont, p, sb, db).to_bits(),
                    edge_cost(&remapped, p2, sb, db).to_bits(),
                    "{name}: pred {:?} estimate moved under id remapping",
                    ont.pred_str(p)
                );
            }
        }
    }
}

/// Cost-based vs classic ordering: identical top-k output (candidate
/// SPARQL text, rank order, and search-order-independent counters) on
/// SP2B, BSBM, and movies.
///
/// Kept as a single `#[test]` because the ordering mode is process
/// global: splitting per world would race with the harness's parallel
/// test execution.
#[test]
fn ordering_mode_is_output_invariant() {
    let cfg = TopKConfig {
        k: 3,
        ..Default::default()
    };
    let worlds = small_worlds();
    let workload: Vec<(&str, _)> = vec![
        ("sp2b", sp2b_workload()),
        ("bsbm", bsbm_workload()),
        ("movies", movie_workload()),
    ];
    for (name, queries) in workload {
        let ont = &worlds.iter().find(|(n, _)| *n == name).expect("world").1;
        for w in queries.iter().take(3) {
            let mut rng = StdRng::seed_from_u64(0xc0);
            let examples = sample_example_set(ont, &w.query, 5, &mut rng, 6);
            if examples.len() < 2 {
                continue;
            }
            set_ordering_mode(OrderingMode::CostBased);
            let (cost_out, _) = infer_top_k(ont, &examples, &cfg);
            set_ordering_mode(OrderingMode::Classic);
            let (classic_out, _) = infer_top_k(ont, &examples, &cfg);
            set_ordering_mode(OrderingMode::CostBased);
            let render =
                |out: &[UnionQuery]| out.iter().map(ToString::to_string).collect::<Vec<_>>();
            assert_eq!(
                render(&cost_out),
                render(&classic_out),
                "{name}/{}: ordering mode changed the inferred top-k",
                w.id
            );
        }
    }
}
