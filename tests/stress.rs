//! Stress cases for the evaluation engine: inputs where naive match
//! enumeration explodes combinatorially, but the result-anchored
//! evaluation strategy (existence checks per candidate) must stay fast.
//!
//! All cases run in the default suite: the two formerly-`#[ignore]`d
//! variants finish in milliseconds under the anchored strategy and were
//! promoted to tier-1 (see CONTRIBUTING.md, "Test tiers").

use std::time::Instant;

use questpro::prelude::*;

/// A complete bipartite `wb` graph: `papers × authors`, every pair
/// connected. Homomorphism counts over chain queries are `n^k`-ish,
/// while the result set is trivially "all authors".
fn bipartite(n: usize) -> Ontology {
    let mut b = Ontology::builder();
    for p in 0..n {
        for a in 0..n {
            b.edge(&format!("paper_{p}"), "wb", &format!("author_{a}"))
                .expect("unique edges");
        }
    }
    b.build()
}

/// The diseq-free Erdős chain of length `k` (2k edges).
fn chain(k: usize) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let mut authors = Vec::new();
    let mut papers = Vec::new();
    for i in 0..=k {
        authors.push(b.var(&format!("a{i}")));
    }
    for i in 0..k {
        papers.push(b.var(&format!("p{i}")));
    }
    for i in 0..k {
        b.edge(papers[i], "wb", authors[i]);
        b.edge(papers[i], "wb", authors[i + 1]);
    }
    b.project(authors[0]);
    b.build().expect("well-formed")
}

#[test]
fn anchored_evaluation_sidesteps_match_explosion() {
    // 20×20 bipartite graph, 3-paper chain: ~20^7 homomorphisms exist,
    // but evaluation needs only 20 existence checks.
    let ont = bipartite(20);
    let q = chain(3);
    let start = Instant::now();
    let results = evaluate(&ont, &q);
    let elapsed = start.elapsed();
    assert_eq!(results.len(), 20); // all authors
    assert!(
        elapsed.as_millis() < 2_000,
        "anchored evaluation took {elapsed:?}"
    );
}

#[test]
fn consistency_check_prunes_on_large_explanations() {
    // Consistency of a 12-edge chain against a 12-edge explanation: the
    // coverage-pruned onto search must finish promptly.
    let mut b = Ontology::builder();
    for i in 0..6 {
        b.edge(&format!("p{i}"), "wb", &format!("a{i}")).unwrap();
        b.edge(&format!("p{i}"), "wb", &format!("a{}", i + 1))
            .unwrap();
    }
    let ont = b.build();
    let triples: Vec<(String, String, String)> = ont
        .edge_ids()
        .map(|e| {
            let d = ont.edge(e);
            (
                ont.value_str(d.src).to_string(),
                "wb".to_string(),
                ont.value_str(d.dst).to_string(),
            )
        })
        .collect();
    let triple_refs: Vec<(&str, &str, &str)> = triples
        .iter()
        .map(|(s, p, d)| (s.as_str(), p.as_str(), d.as_str()))
        .collect();
    let ex = Explanation::from_triples(&ont, &triple_refs, "a0").expect("valid");
    let q = chain(6);
    let start = Instant::now();
    let ok = consistent_with_explanation(&ont, &q, &ex);
    assert!(ok);
    assert!(start.elapsed().as_millis() < 2_000);
}

#[test]
fn anchored_evaluation_at_larger_scale() {
    let ont = bipartite(60);
    let q = chain(5);
    let start = Instant::now();
    let results = evaluate(&ont, &q);
    assert_eq!(results.len(), 60);
    assert!(start.elapsed().as_secs() < 30);
}

#[test]
fn inference_on_wide_explanations() {
    // Merge two 12-edge star explanations (the paper's upper envelope).
    let mut b = Ontology::builder();
    for s in 0..2 {
        for i in 0..12 {
            b.edge(
                &format!("hub{s}"),
                &format!("r{i}"),
                &format!("leaf{s}_{i}"),
            )
            .unwrap();
        }
    }
    let ont = b.build();
    let star = |s: usize| {
        let triples: Vec<(String, String, String)> = (0..12)
            .map(|i| (format!("hub{s}"), format!("r{i}"), format!("leaf{s}_{i}")))
            .collect();
        let refs: Vec<(&str, &str, &str)> = triples
            .iter()
            .map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str()))
            .collect();
        Explanation::from_triples(&ont, &refs, &format!("hub{s}")).expect("valid")
    };
    let examples = ExampleSet::from_explanations(vec![star(0), star(1)]);
    let start = Instant::now();
    let (q, _) = find_consistent_union(&ont, &examples, &UnionConfig::default());
    assert!(consistent_with_examples(&ont, &q, &examples));
    assert!(start.elapsed().as_secs() < 30);
}
