//! Integration tests that replay the paper's worked examples end to end
//! on the running-example world (Figures 1–4, Examples 2.3–5.5).

use questpro::data::{erdos_example_set, erdos_ontology};
use questpro::prelude::*;
use questpro::query::fixtures::{erdos_q1, erdos_q2};
use questpro::rng::StdRng;

/// Example 2.3: Q1 matches E1's chain and outputs Alice.
#[test]
fn example_2_3_q1_outputs_alice() {
    let ont = erdos_ontology();
    let q1 = erdos_q1();
    let results = evaluate(&ont, &q1);
    let alice = ont.node_by_value("Alice").expect("Alice exists");
    assert!(results.contains(&alice));
}

/// Example 2.7: both Q1 and Q2 are consistent with the example-set.
#[test]
fn example_2_7_consistency_of_q1_and_q2() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    for ex in examples.iter() {
        assert!(
            consistent_with_explanation(&ont, &erdos_q1(), ex),
            "Q1 must be consistent with {}",
            ont.value_str(ex.distinguished())
        );
        assert!(
            consistent_with_explanation(&ont, &erdos_q2(), ex),
            "Q2 must be consistent with {}",
            ont.value_str(ex.distinguished())
        );
    }
}

/// Example 3.3 / Proposition 3.1: the trivial query has 6 disjoint `wb`
/// edges (the max per explanation) and is consistent with everything.
#[test]
fn example_3_3_trivial_query_shape() {
    use questpro::core::{trivial_consistent_query, PatternGraph};
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let graphs: Vec<PatternGraph> = examples
        .iter()
        .map(|e| PatternGraph::from_explanation(&ont, e))
        .collect();
    let refs: Vec<&PatternGraph> = graphs.iter().collect();
    let q = trivial_consistent_query(&refs)
        .into_query()
        .expect("a consistent query exists");
    assert_eq!(q.edge_count(), 6);
    assert!(!q.is_connected());
    for ex in examples.iter() {
        assert!(consistent_with_explanation(&ont, &q, ex));
    }
}

/// Example 4.2: cost arithmetic of the trivial union vs Q1.
#[test]
fn example_4_2_costs() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let two = ExampleSet::from_explanations(examples.explanations()[..2].to_vec());
    let trivial = UnionQuery::trivial(&ont, &two).expect("non-empty");
    let w = GeneralizationWeights::new(2.0, 5.0);
    assert_eq!(trivial.cost(w), 10.0); // w1·0 + w2·2
    let q1 = UnionQuery::single(erdos_q1());
    assert_eq!(q1.cost(w), 17.0); // w1·6 + w2·1
}

/// Example 4.3's dynamics: with (w1=2, w2=5) on {E1, E2, E3} the
/// algorithm merges the two short chains and then stops.
#[test]
fn example_4_3_union_inference() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let three = ExampleSet::from_explanations(examples.explanations()[..3].to_vec());
    let cfg = UnionConfig {
        weights: GeneralizationWeights::example_4_3(),
        ..Default::default()
    };
    let (q, stats) = find_consistent_union(&ont, &three, &cfg);
    assert_eq!(q.len(), 2, "one merge then stop: {q}");
    assert!(consistent_with_examples(&ont, &q, &three));
    assert!(stats.merges_applied >= 1);
}

/// Example 4.4 flavor: top-3 inference over all four explanations with
/// (w1=1, w2=7) yields distinct consistent candidates sorted by cost,
/// and the best merges everything into one simple query.
#[test]
fn example_4_4_top_3() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let cfg = TopKConfig {
        k: 3,
        weights: GeneralizationWeights::example_4_4(),
        ..Default::default()
    };
    let (candidates, _) = infer_top_k(&ont, &examples, &cfg);
    assert!(!candidates.is_empty());
    assert!(candidates.len() <= 3);
    for c in &candidates {
        assert!(consistent_with_examples(&ont, c, &examples));
    }
    // The best candidate is a single merged pattern (like Q1), strictly
    // cheaper than the trivial 4-branch union (cost 28).
    assert!(candidates[0].cost(cfg.weights) < 28.0);
    assert_eq!(candidates[0].len(), 1);
}

/// Example 5.1: no disequality may relate the first two authors of the
/// Q1 chain, because Dave's explanation assigns Dave to both.
#[test]
fn example_5_1_dave_blocks_diseqs() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let q1 = erdos_q1();
    // Q1 covers all four explanations (via folding for the short ones).
    let diseqs = infer_diseqs(&ont, &q1, &examples);
    let a1 = q1.node_of_var("a1").expect("?a1 exists");
    let a2 = q1.node_of_var("a2").expect("?a2 exists");
    let pair = if a1 < a2 { (a1, a2) } else { (a2, a1) };
    assert!(
        !diseqs.contains(&pair),
        "E2/E3 fold ?a1 and ?a2 onto the same author, blocking the diseq"
    );
}

/// Example 5.5 flavor: feedback distinguishes "co-author of Erdős"
/// (the intent) from the over-general "co-author of anyone".
#[test]
fn example_5_5_feedback_selects_intended() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let mut b = QueryBuilder::new();
    let x = b.var("x");
    let p = b.var("p");
    let e = b.constant("Erdos");
    b.edge(p, "wb", x).edge(p, "wb", e).project(x);
    let intended = UnionQuery::single(b.build().expect("well-formed"));

    let mut b = QueryBuilder::new();
    let x = b.var("x");
    let p = b.var("p");
    let other = b.var("other");
    b.edge(p, "wb", x).edge(p, "wb", other).project(x);
    let broad = UnionQuery::single(b.build().expect("well-formed"));

    let candidates = vec![broad, intended.clone()];
    let mut oracle = TargetOracle::new(intended.clone());
    let mut rng = StdRng::seed_from_u64(555);
    let outcome = choose_query(
        &ont,
        &candidates,
        &examples,
        &mut oracle,
        &mut rng,
        &FeedbackConfig::default(),
    );
    assert_eq!(outcome.chosen_index, 1);
    assert!(!outcome.transcript.is_empty());
    // The distinguishing witness is a co-author pair without Erdős
    // (Frank/Gina-style in the extended world).
    let rec = &outcome.transcript[0];
    assert!(!rec.answer);
}

/// End-to-end: a full session over the running example reconstructs the
/// intended query's semantics.
#[test]
fn full_session_on_running_example() {
    let ont = erdos_ontology();
    let mut b = QueryBuilder::new();
    let x = b.var("x");
    let p = b.var("p");
    let e = b.constant("Erdos");
    b.edge(p, "wb", x).edge(p, "wb", e).project(x);
    let intended = UnionQuery::single(b.build().expect("well-formed"));

    let mut rng = StdRng::seed_from_u64(7);
    let examples = sample_example_set(&ont, &intended, 3, &mut rng, 8);
    assert!(examples.len() >= 2);
    let mut oracle = TargetOracle::new(intended.clone());
    let cfg = SessionConfig {
        refine: true,
        ..Default::default()
    };
    let result = run_session(&ont, &examples, &mut oracle, &mut rng, &cfg);
    assert_eq!(
        evaluate_union(&ont, &result.query),
        evaluate_union(&ont, &intended),
        "final query: {}",
        result.query
    );
}
