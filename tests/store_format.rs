//! Golden-file pin of the version-1 snapshot byte layout.
//!
//! `tests/golden/store_v1.qps` holds the exact bytes `encode` produced
//! for the fixture below when the format shipped. Any layout change —
//! new sections, reordered fields, different sort contracts — fails
//! this test until [`questpro_store::FORMAT_VERSION`] is bumped and a
//! regenerated golden file is committed alongside the bump.

use std::fs;
use std::path::PathBuf;

use questpro_store::{decode, encode, StoreBuilder, TripleStore, FORMAT_VERSION};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/store_v1.qps")
}

/// The pinned fixture: triples, an isolated node, types, and a
/// non-ASCII label so the arena layout is exercised.
fn fixture() -> TripleStore {
    let mut b = StoreBuilder::new();
    b.add_triple("alice", "wb", "paper1");
    b.add_triple("bob", "wb", "paper1");
    b.add_triple("bob", "cites", "alice");
    b.add_triple("na\u{EF}ve", "wb", "paper1");
    b.add_node("lonely");
    b.add_type("alice", "Author").unwrap();
    b.add_type("paper1", "Paper").unwrap();
    b.build().expect("fixture fits the u32 id space")
}

#[test]
fn golden_snapshot_bytes_are_pinned() {
    assert_eq!(
        FORMAT_VERSION, 1,
        "FORMAT_VERSION moved past 1: regenerate tests/golden/store_v{FORMAT_VERSION}.qps, \
         point this test at it, and keep the old golden for the rejected-version check"
    );
    let golden = fs::read(golden_path()).expect("committed golden snapshot");
    assert_eq!(
        encode(&fixture()),
        golden,
        "snapshot byte layout drifted from the committed version-1 golden: if the \
         change is intentional, bump FORMAT_VERSION in crates/store/src/snapshot.rs \
         and commit a regenerated golden file with it"
    );
}

#[test]
fn golden_snapshot_still_decodes() {
    let golden = fs::read(golden_path()).expect("committed golden snapshot");
    let store = decode(&golden).expect("version-1 golden must stay readable");
    assert_eq!(store, fixture());
    let ont = store.to_ontology().expect("golden store assembles");
    assert!(ont.validate().is_ok());
    assert_eq!(ont.edge_count(), 4);
}
