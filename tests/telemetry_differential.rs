//! Differential battery for session telemetry: the deterministic
//! projection of a finished session's [`SessionRecord`] — outcome,
//! rounds, verdicts, pool sizes, cache counters — must be identical at
//! every thread count, on every world family. Wall-clock fields and
//! trace IDs are explicitly excluded (that is what
//! `SessionRecord::deterministic_key` encodes), so this battery is what
//! makes `/debug/sessions` output comparable across hosts and
//! `--threads` settings.

use questpro::data::*;
use questpro::prelude::*;
use questpro::rng::StdRng;
use questpro::telemetry::{Aggregator, Outcome, SessionRecord};
use questpro_feedback::InteractiveSession;

/// One seeded world per generator family, kept small so the whole
/// sweep stays fast (mirrors the determinism battery).
fn small_worlds() -> Vec<(&'static str, Ontology, UnionQuery)> {
    let sp2b = generate_sp2b(&Sp2bConfig {
        authors: 80,
        articles: 120,
        inproceedings: 60,
        ..Default::default()
    });
    let bsbm = generate_bsbm(&BsbmConfig::default());
    let movies = generate_movies(&MoviesConfig::default());
    let pick = |mut ws: Vec<WorkloadQuery>, id: &str| {
        ws.iter()
            .position(|w| w.id == id)
            .map(|i| ws.swap_remove(i).query)
            .expect("workload query in catalog")
    };
    vec![
        ("sp2b", sp2b, pick(sp2b_workload(), "q8a")),
        ("bsbm", bsbm, pick(bsbm_workload(), "q2v0")),
        ("movies", movies, pick(movie_workload(), "m1")),
    ]
}

/// Drives one interactive session to `Done` against the target oracle
/// and returns its telemetry record.
fn drive(name: &str, ont: &Ontology, target: &UnionQuery, threads: usize) -> Option<SessionRecord> {
    let mut rng = StdRng::seed_from_u64(0xd15);
    let examples = sample_example_set(ont, target, 5, &mut rng, 6);
    if examples.len() < 2 {
        return None;
    }
    let cfg = SessionConfig {
        topk: TopKConfig {
            threads,
            ..Default::default()
        },
        refine: true,
        ..Default::default()
    };
    let mut session = InteractiveSession::start(ont, &examples, &cfg, 0xd15).expect("a session");
    let mut oracle = TargetOracle::new(target.clone());
    let mut rounds = 0u32;
    while !session.is_done() {
        let q = session.pending().expect("an undone session has a question");
        let verdict = oracle.accept(ont, q.result(), q.provenance());
        session.answer(ont, verdict).expect("answering");
        rounds += 1;
        assert!(rounds < 500, "{name}: session must converge");
    }
    Some(session.telemetry_record(name, 1, Outcome::Converged, 0))
}

/// The satellite contract: records agree across `--threads {1,2,8}` on
/// every world, and aggregating them lands every session in a rounds
/// bucket (nothing vanishes between record and histogram).
#[test]
fn session_records_are_thread_invariant_on_all_worlds() {
    let mut agg = Aggregator::new();
    let mut recorded = 0u64;
    let mut rounds_seen = 0u64;
    for (name, ont, target) in small_worlds() {
        let Some(seq) = drive(name, &ont, &target, 1) else {
            continue;
        };
        assert_eq!(seq.outcome, Outcome::Converged, "{name}");
        // A session may converge cold (one candidate wins outright,
        // zero rounds); at least one world must actually ask questions
        // for the battery to mean anything — asserted after the loop.
        rounds_seen += seq.rounds;
        assert_eq!(
            seq.pool_sizes.len(),
            seq.rounds as usize,
            "{name}: one pool size per answered round"
        );
        assert_eq!(
            seq.yes + seq.no,
            seq.rounds,
            "{name}: every round has a verdict"
        );
        for threads in [2usize, 8] {
            let par = drive(name, &ont, &target, threads).expect("the world stays drivable");
            assert_eq!(
                par.deterministic_key(),
                seq.deterministic_key(),
                "{name}: {threads}-thread session telemetry diverged"
            );
        }
        agg.record(seq);
        recorded += 1;
    }
    assert!(recorded > 0, "at least one world produced a session");
    assert!(
        rounds_seen > 0,
        "at least one world asked feedback questions"
    );

    // Aggregation conserves sessions: bucketed rounds counts equal the
    // records accepted, per key and in total.
    let snap = agg.snapshot();
    assert_eq!(snap.records_total, recorded);
    assert_eq!(snap.records_dropped, 0);
    let bucketed: u64 = snap.keys.iter().map(|k| k.rounds.count).sum();
    assert_eq!(bucketed, recorded, "every record lands in a rounds bucket");
}
