//! Replays the committed fuzz corpus (`tests/corpus/<surface>/`)
//! through each input surface's parser and asserts the verdict that
//! was recorded when the reproducer was minimized, so a bug fixed by
//! the fuzzing sweep can never silently regress.
//!
//! Each surface directory carries a `MANIFEST` with one line per file:
//!
//! ```text
//! <filename> ok                  # must parse and round-trip
//! <filename> err:<substring>     # must fail, error mentions substring
//! ```
//!
//! The manifest is checked for drift in both directions: every listed
//! file must exist, and every committed file must be listed.

use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use questpro::graph::triples;
use questpro::query::iso::union_isomorphic;
use questpro::query::sparql;

/// One parsed `MANIFEST` line.
struct Entry {
    file: String,
    verdict: Verdict,
}

enum Verdict {
    Ok,
    Err(String),
}

fn corpus_dir(surface: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(surface)
}

/// Loads a surface's manifest and checks it against the directory
/// contents (no unlisted files, no missing files).
fn manifest(surface: &str) -> Vec<Entry> {
    let dir = corpus_dir(surface);
    let text = fs::read_to_string(dir.join("MANIFEST"))
        .unwrap_or_else(|e| panic!("corpus {surface}: missing MANIFEST: {e}"));
    let mut entries = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let (file, verdict) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("corpus {surface}: malformed manifest line {line:?}"));
        let verdict = match verdict.strip_prefix("err:") {
            Some(sub) => Verdict::Err(sub.to_string()),
            None => {
                assert_eq!(verdict, "ok", "corpus {surface}: bad verdict in {line:?}");
                Verdict::Ok
            }
        };
        assert!(
            dir.join(file).is_file(),
            "corpus {surface}: manifest lists {file} but the file is missing"
        );
        entries.push(Entry {
            file: file.to_string(),
            verdict,
        });
    }
    for dirent in fs::read_dir(&dir).expect("corpus dir") {
        let name = dirent.expect("dirent").file_name();
        let name = name.to_string_lossy();
        if name == "MANIFEST" {
            continue;
        }
        assert!(
            entries.iter().any(|e| e.file == name),
            "corpus {surface}: {name} is committed but not listed in MANIFEST"
        );
    }
    assert!(!entries.is_empty(), "corpus {surface}: empty manifest");
    entries
}

/// Runs every entry of a surface through `replay`, which returns
/// `Ok(())` on accept or the error's display text on reject.
fn check(surface: &str, replay: impl Fn(&[u8]) -> Result<(), String>) {
    for entry in manifest(surface) {
        let bytes = fs::read(corpus_dir(surface).join(&entry.file)).expect("corpus file");
        let got = replay(&bytes);
        match (&entry.verdict, &got) {
            (Verdict::Ok, Ok(())) => {}
            (Verdict::Err(sub), Err(msg)) => assert!(
                msg.contains(sub.as_str()),
                "corpus {surface}/{}: error {msg:?} does not mention {sub:?}",
                entry.file
            ),
            _ => panic!(
                "corpus {surface}/{}: expected {}, got {got:?}",
                entry.file,
                match &entry.verdict {
                    Verdict::Ok => "ok".to_string(),
                    Verdict::Err(sub) => format!("err:{sub}"),
                },
            ),
        }
    }
}

#[test]
fn wire_corpus_replays_to_recorded_verdicts() {
    check("wire", |bytes| {
        let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        let v = questpro_wire::parse(text).map_err(|e| e.to_string())?;
        let again = questpro_wire::parse(&v.to_text()).map_err(|e| e.to_string())?;
        if again != v {
            return Err("serialize/parse round-trip changed the value".into());
        }
        Ok(())
    });
}

#[test]
fn sparql_corpus_replays_to_recorded_verdicts() {
    check("sparql", |bytes| {
        let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        let q = sparql::parse_union(text).map_err(|e| e.to_string())?;
        let again = sparql::parse_union(&sparql::format_union(&q)).map_err(|e| e.to_string())?;
        if !union_isomorphic(&q, &again) {
            return Err("format/parse round-trip changed the query".into());
        }
        Ok(())
    });
}

#[test]
fn triples_corpus_replays_to_recorded_verdicts() {
    check("triples", |bytes| {
        let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        let ont = triples::parse(text).map_err(|e| e.to_string())?;
        let first = triples::serialize(&ont);
        let again = triples::parse(&first).map_err(|e| e.to_string())?;
        if triples::serialize(&again) != first {
            return Err("serialize/parse round-trip changed the ontology".into());
        }
        Ok(())
    });
}

#[test]
fn store_corpus_replays_to_recorded_verdicts() {
    check("store", |bytes| {
        let store = questpro_store::decode(bytes).map_err(|e| e.to_string())?;
        let again = questpro_store::encode(&store);
        if questpro_store::decode(&again).map_err(|e| e.to_string())? != store {
            return Err("encode/decode round-trip changed the store".into());
        }
        Ok(())
    });
}

#[test]
fn update_corpus_replays_to_recorded_verdicts() {
    // Every batch replays against the same small seed world, so the
    // recorded verdicts (e.g. "no such triple") are deterministic.
    let seed =
        triples::parse("alice writes paper1\npaper1 cites paper2").expect("seed world parses");
    let store = questpro_store::TripleStore::from_ontology(&seed).expect("seed store builds");
    check("update", |bytes| {
        let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        let body = questpro_wire::parse(text).map_err(|e| e.to_string())?;
        let delta = questpro_wire::update::parse_update(&body).map_err(|e| e.to_string())?;
        let incremental = store.apply_update(&delta).map_err(|e| e.to_string())?;
        // Accepted batches must also satisfy the differential oracle:
        // the incremental store is byte-identical to a scratch rebuild.
        let (scratch_ont, _) = seed
            .apply_delta(&delta)
            .map_err(|e| format!("store accepted but graph rejected: {e}"))?;
        let scratch =
            questpro_store::TripleStore::from_ontology(&scratch_ont).map_err(|e| e.to_string())?;
        if questpro_store::encode(&incremental) != questpro_store::encode(&scratch) {
            return Err("incremental update diverged from the scratch rebuild".into());
        }
        Ok(())
    });
}

#[test]
fn http_corpus_replays_to_recorded_verdicts() {
    check("http", |bytes| {
        let mut reader = BufReader::new(bytes);
        questpro_server::http::read_request(&mut reader, 1 << 20)
            .map(|_| ())
            .map_err(|e| format!("{e:?}"))
    });
}
