//! Feedback under imperfect users: the loop must terminate within its
//! question budget and still return one of the candidates even when
//! answers are noisy or adversarial.

use questpro::data::{erdos_example_set, erdos_ontology};
use questpro::prelude::*;
use questpro::rng::StdRng;

fn candidates(ont: &Ontology, examples: &ExampleSet) -> Vec<UnionQuery> {
    let cfg = TopKConfig {
        k: 4,
        ..Default::default()
    };
    infer_top_k(ont, examples, &cfg).0
}

#[test]
fn noisy_oracle_still_terminates_with_a_candidate() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let cands = candidates(&ont, &examples);
    let intended = cands[0].clone();
    for error_rate in [0.0, 0.3, 1.0] {
        let inner = TargetOracle::new(intended.clone());
        let mut oracle = NoisyOracle::new(inner, StdRng::seed_from_u64(3), error_rate);
        let mut rng = StdRng::seed_from_u64(4);
        let out = choose_query(
            &ont,
            &cands,
            &examples,
            &mut oracle,
            &mut rng,
            &FeedbackConfig::default(),
        );
        assert!(out.chosen_index < cands.len());
        assert!(out.transcript.len() < cands.len());
    }
}

#[test]
fn adversarial_scripted_answers_cannot_overrun_the_budget() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let cands = candidates(&ont, &examples);
    // Alternating answers, more than could ever be consumed.
    let mut oracle = ScriptedOracle::new((0..64).map(|i| i % 2 == 0).collect());
    let mut rng = StdRng::seed_from_u64(9);
    let cfg = FeedbackConfig {
        max_questions: 2,
        ..Default::default()
    };
    let out = choose_query(&ont, &cands, &examples, &mut oracle, &mut rng, &cfg);
    assert!(out.transcript.len() <= 2);
}

#[test]
fn refinement_under_always_yes_drops_every_observable_diseq() {
    // A user who accepts every extra result ends with the least
    // restrictive query: no observable disequality survives.
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let cands = candidates(&ont, &examples);
    let q_all = with_all_diseqs(&ont, &cands[0], &examples);
    let mut oracle = ScriptedOracle::new(vec![true; 64]);
    let mut rng = StdRng::seed_from_u64(1);
    let (refined, _questions) = refine_diseqs(
        &ont,
        &q_all,
        &mut oracle,
        &mut rng,
        &FeedbackConfig::default(),
    );
    // Remaining diseqs (if any) are observationally vacuous on this
    // ontology: removing them changes nothing.
    for (b, branch) in refined.branches().iter().enumerate() {
        for &pair in branch.diseqs() {
            let without = {
                let remaining = branch.diseqs().iter().copied().filter(|&d| d != pair);
                branch.with_diseqs(remaining).expect("valid diseqs")
            };
            let mut branches: Vec<SimpleQuery> = refined.branches().to_vec();
            branches[b] = without;
            let candidate = UnionQuery::new(branches).expect("non-empty");
            assert_eq!(
                evaluate_union(&ont, &candidate),
                evaluate_union(&ont, &refined),
                "diseq {pair:?} in branch {b} was observable but survived an always-yes user"
            );
        }
    }
}

#[test]
fn refinement_under_always_no_keeps_all_diseqs() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    let cands = candidates(&ont, &examples);
    let q_all = with_all_diseqs(&ont, &cands[0], &examples);
    let before = q_all.diseq_count();
    let mut oracle = ScriptedOracle::new(vec![false; 64]);
    let mut rng = StdRng::seed_from_u64(1);
    let (refined, _) = refine_diseqs(
        &ont,
        &q_all,
        &mut oracle,
        &mut rng,
        &FeedbackConfig::default(),
    );
    assert_eq!(refined.diseq_count(), before);
}
