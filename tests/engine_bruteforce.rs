//! Cross-validation of the backtracking matcher against a brute-force
//! reference: enumerate *all* node assignments naively and check edge
//! constraints last. The optimized engine must produce exactly the same
//! result sets and match counts.

use proptest::prelude::*;

use questpro::prelude::*;
use questpro::query::QueryNodeId;

fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::btree_set((0u8..6, 0u8..2, 0u8..6), 1..14)
        .prop_map(|s| s.into_iter().collect())
}

fn build_ontology(edges: &[(u8, u8, u8)]) -> Ontology {
    let mut b = Ontology::builder();
    for &(s, p, d) in edges {
        let pred = if p == 0 { "p" } else { "q" };
        b.edge(&format!("n{s}"), pred, &format!("n{d}"))
            .expect("unique edges");
    }
    b.build()
}

/// A random small query: a handful of variable nodes, optional constant,
/// random edges between them, random diseqs.
#[derive(Debug, Clone)]
struct QuerySpec {
    nodes: usize,
    constant: Option<u8>,
    edges: Vec<(u8, u8, u8)>,
    diseq: Option<(u8, u8)>,
    projected: u8,
}

fn arb_query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        2usize..5,
        proptest::option::of(0u8..6),
        proptest::collection::vec((0u8..5, 0u8..2, 0u8..5), 1..5),
        proptest::option::of((0u8..5, 0u8..5)),
        0u8..5,
    )
        .prop_map(|(nodes, constant, edges, diseq, projected)| QuerySpec {
            nodes,
            constant,
            edges,
            diseq,
            projected,
        })
}

/// Builds the query; returns `None` when the spec is degenerate (e.g.
/// projection on the constant).
fn build_query(spec: &QuerySpec) -> Option<SimpleQuery> {
    let mut b = QueryBuilder::new();
    let total = spec.nodes + spec.constant.is_some() as usize;
    let mut ids = Vec::new();
    for i in 0..spec.nodes {
        ids.push(b.var(&format!("x{i}")));
    }
    if let Some(c) = spec.constant {
        ids.push(b.constant(&format!("n{c}")));
    }
    let pick = |i: u8| ids[i as usize % total];
    for &(s, p, d) in &spec.edges {
        let pred = if p == 0 { "p" } else { "q" };
        b.edge(pick(s), pred, pick(d));
    }
    b.project(pick(spec.projected));
    if let Some((x, y)) = spec.diseq {
        if pick(x) != pick(y) {
            b.diseq(pick(x), pick(y));
        }
    }
    b.build().ok()
}

/// Reference semantics: try every total node assignment.
fn brute_force(
    ont: &Ontology,
    q: &SimpleQuery,
) -> (std::collections::BTreeSet<questpro::graph::NodeId>, u64) {
    let nodes: Vec<_> = ont.node_ids().collect();
    let k = q.node_count();
    let mut results = std::collections::BTreeSet::new();
    let mut count = 0u64;
    let mut assign = vec![0usize; k];
    'outer: loop {
        // Check the assignment.
        let ok = (0..k).all(|i| {
            let qi = QueryNodeId::from_index(i);
            match q.label(qi).as_const() {
                Some(c) => ont.value_str(nodes[assign[i]]) == c,
                None => true,
            }
        }) && q.edges().iter().all(|e| {
            let s = nodes[assign[e.src.index()]];
            let d = nodes[assign[e.dst.index()]];
            ont.pred_by_name(&e.pred)
                .and_then(|p| ont.find_edge(s, p, d))
                .is_some()
        }) && q
            .diseqs()
            .iter()
            .all(|&(a, bnode)| nodes[assign[a.index()]] != nodes[assign[bnode.index()]]);
        if ok {
            count += 1;
            results.insert(nodes[assign[q.projected().index()]]);
        }
        // Next assignment (odometer).
        for slot in (0..k).rev() {
            assign[slot] += 1;
            if assign[slot] < nodes.len() {
                continue 'outer;
            }
            assign[slot] = 0;
        }
        break;
    }
    (results, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The optimized matcher agrees with the brute-force reference on
    /// result sets and on the number of homomorphisms.
    #[test]
    fn matcher_matches_bruteforce(
        edges in arb_edges(),
        spec in arb_query_spec(),
    ) {
        let o = build_ontology(&edges);
        let Some(q) = build_query(&spec) else { return Ok(()) };
        let (expected_results, expected_count) = brute_force(&o, &q);
        let got_results = evaluate(&o, &q);
        prop_assert_eq!(&got_results, &expected_results,
            "result sets differ for {}", q);
        let got_count = Matcher::new(&o, &q).count();
        prop_assert_eq!(got_count, expected_count,
            "match counts differ for {}", q);
    }
}
