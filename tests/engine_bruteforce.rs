//! Cross-validation of the backtracking matcher against a brute-force
//! reference: enumerate *all* node assignments naively and check edge
//! constraints last. The optimized engine must produce exactly the same
//! result sets and match counts. Driven by the workspace's internal
//! seeded RNG.

use std::collections::BTreeSet;

use questpro::prelude::*;
use questpro::query::QueryNodeId;
use questpro::rng::{Rng, StdRng};

const CASES: usize = 96;

fn arb_edges<R: Rng>(rng: &mut R) -> Vec<(u8, u8, u8)> {
    let want = rng.random_range(1..14usize);
    let mut set = BTreeSet::new();
    // Rejection-sample distinct triples, mirroring a btree_set strategy.
    while set.len() < want {
        set.insert((
            rng.random_range(0..6u32) as u8,
            rng.random_range(0..2u32) as u8,
            rng.random_range(0..6u32) as u8,
        ));
    }
    set.into_iter().collect()
}

fn build_ontology(edges: &[(u8, u8, u8)]) -> Ontology {
    let mut b = Ontology::builder();
    for &(s, p, d) in edges {
        let pred = if p == 0 { "p" } else { "q" };
        b.edge(&format!("n{s}"), pred, &format!("n{d}"))
            .expect("unique edges");
    }
    b.build()
}

/// A random small query: a handful of variable nodes, optional constant,
/// random edges between them, random diseqs.
#[derive(Debug, Clone)]
struct QuerySpec {
    nodes: usize,
    constant: Option<u8>,
    edges: Vec<(u8, u8, u8)>,
    diseq: Option<(u8, u8)>,
    projected: u8,
}

fn arb_query_spec<R: Rng>(rng: &mut R) -> QuerySpec {
    let nodes = rng.random_range(2..5usize);
    let constant = rng
        .random_bool(0.5)
        .then(|| rng.random_range(0..6u32) as u8);
    let n_edges = rng.random_range(1..5usize);
    let edges = (0..n_edges)
        .map(|_| {
            (
                rng.random_range(0..5u32) as u8,
                rng.random_range(0..2u32) as u8,
                rng.random_range(0..5u32) as u8,
            )
        })
        .collect();
    let diseq = rng.random_bool(0.5).then(|| {
        (
            rng.random_range(0..5u32) as u8,
            rng.random_range(0..5u32) as u8,
        )
    });
    let projected = rng.random_range(0..5u32) as u8;
    QuerySpec {
        nodes,
        constant,
        edges,
        diseq,
        projected,
    }
}

/// Builds the query; returns `None` when the spec is degenerate (e.g.
/// projection on the constant).
fn build_query(spec: &QuerySpec) -> Option<SimpleQuery> {
    let mut b = QueryBuilder::new();
    let total = spec.nodes + spec.constant.is_some() as usize;
    let mut ids = Vec::new();
    for i in 0..spec.nodes {
        ids.push(b.var(&format!("x{i}")));
    }
    if let Some(c) = spec.constant {
        ids.push(b.constant(&format!("n{c}")));
    }
    let pick = |i: u8| ids[i as usize % total];
    for &(s, p, d) in &spec.edges {
        let pred = if p == 0 { "p" } else { "q" };
        b.edge(pick(s), pred, pick(d));
    }
    b.project(pick(spec.projected));
    if let Some((x, y)) = spec.diseq {
        if pick(x) != pick(y) {
            b.diseq(pick(x), pick(y));
        }
    }
    b.build().ok()
}

/// Reference semantics: try every total node assignment.
fn brute_force(
    ont: &Ontology,
    q: &SimpleQuery,
) -> (std::collections::BTreeSet<questpro::graph::NodeId>, u64) {
    let nodes: Vec<_> = ont.node_ids().collect();
    let k = q.node_count();
    let mut results = std::collections::BTreeSet::new();
    let mut count = 0u64;
    let mut assign = vec![0usize; k];
    'outer: loop {
        // Check the assignment.
        let ok = (0..k).all(|i| {
            let qi = QueryNodeId::from_index(i);
            match q.label(qi).as_const() {
                Some(c) => ont.value_str(nodes[assign[i]]) == c,
                None => true,
            }
        }) && q.edges().iter().all(|e| {
            let s = nodes[assign[e.src.index()]];
            let d = nodes[assign[e.dst.index()]];
            ont.pred_by_name(&e.pred)
                .and_then(|p| ont.find_edge(s, p, d))
                .is_some()
        }) && q
            .diseqs()
            .iter()
            .all(|&(a, bnode)| nodes[assign[a.index()]] != nodes[assign[bnode.index()]]);
        if ok {
            count += 1;
            results.insert(nodes[assign[q.projected().index()]]);
        }
        // Next assignment (odometer).
        for slot in (0..k).rev() {
            assign[slot] += 1;
            if assign[slot] < nodes.len() {
                continue 'outer;
            }
            assign[slot] = 0;
        }
        break;
    }
    (results, count)
}

/// The optimized matcher agrees with the brute-force reference on
/// result sets and on the number of homomorphisms — and the sharded
/// parallel evaluator agrees with both.
#[test]
fn matcher_matches_bruteforce() {
    let mut rng = StdRng::seed_from_u64(0xb1);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let spec = arb_query_spec(&mut rng);
        let o = build_ontology(&edges);
        let Some(q) = build_query(&spec) else {
            continue;
        };
        let (expected_results, expected_count) = brute_force(&o, &q);
        let got_results = evaluate(&o, &q);
        assert_eq!(
            &got_results, &expected_results,
            "result sets differ for {q}"
        );
        let got_count = Matcher::new(&o, &q).count();
        assert_eq!(got_count, expected_count, "match counts differ for {q}");
        for threads in [2usize, 4] {
            let par = questpro::engine::evaluate_with(&o, &q, threads);
            assert_eq!(
                &par, &expected_results,
                "{threads}-thread eval differs for {q}"
            );
        }
    }
}
