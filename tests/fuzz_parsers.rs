//! Robustness fuzzing: every text-format parser must return a clean
//! `Result` — never panic, never loop — on arbitrary input, including
//! structured near-miss inputs built from valid tokens. Driven by the
//! workspace's internal seeded RNG.

use questpro::data::erdos_ontology;
use questpro::graph::{exformat, triples};
use questpro::query::sparql;
use questpro::rng::{Rng, SliceRandom, StdRng};

const CASES: usize = 256;

/// Tokens the grammars care about, plus a junk-fragment generator.
const TOKENS: &[&str] = &[
    "SELECT", "WHERE", "UNION", "FILTER", "OPTIONAL", "dis", "@type", "{", "}", "(", ")", ".",
    "!=", "?x", ":c", "paper1", "wb", "Alice", "\n",
];

/// Characters the junk fragments draw from (the grammars' alphabet).
const JUNK: &[char] = &[
    'a', 'Z', '0', '9', '_', '?', ':', '!', '{', '}', '(', ')', '.', '#', '@', ' ', '-',
];

/// Arbitrary near-miss text built from valid tokens and junk fragments.
fn arb_text<R: Rng>(rng: &mut R) -> String {
    let len = rng.random_range(0..40usize);
    let mut parts: Vec<String> = Vec::with_capacity(len);
    for _ in 0..len {
        if rng.random_bool(0.8) {
            parts.push((*TOKENS.choose(rng).expect("non-empty")).to_string());
        } else {
            let flen = rng.random_range(0..=6usize);
            parts.push(
                (0..flen)
                    .map(|_| *JUNK.choose(rng).expect("non-empty"))
                    .collect(),
            );
        }
    }
    parts.join(" ")
}

/// Arbitrary unicode soup (any char except the unpaired-surrogate gap).
fn arb_unicode<R: Rng>(rng: &mut R) -> String {
    let len = rng.random_range(0..120usize);
    (0..len)
        .map(|_| loop {
            if let Some(c) = char::from_u32(rng.random_range(0..0x11_0000u32)) {
                return c;
            }
        })
        .collect()
}

#[test]
fn triples_parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xf1);
    for _ in 0..CASES {
        let _ = triples::parse(&arb_text(&mut rng));
    }
}

#[test]
fn sparql_parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xf2);
    for _ in 0..CASES {
        let text = arb_text(&mut rng);
        let _ = sparql::parse_union(&text);
        let _ = sparql::parse_simple(&text);
    }
}

#[test]
fn exformat_parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xf3);
    let ont = erdos_ontology();
    for _ in 0..CASES {
        let _ = exformat::parse_examples(&ont, &arb_text(&mut rng));
    }
}

#[test]
fn parsers_survive_raw_unicode() {
    let mut rng = StdRng::seed_from_u64(0xf4);
    let ont = erdos_ontology();
    for _ in 0..CASES {
        let text = arb_unicode(&mut rng);
        let _ = triples::parse(&text);
        let _ = sparql::parse_union(&text);
        let _ = exformat::parse_examples(&ont, &text);
    }
}
