//! Robustness fuzzing: every text-format parser must return a clean
//! `Result` — never panic, never loop — on arbitrary input, including
//! structured near-miss inputs built from valid tokens.

use proptest::prelude::*;

use questpro::data::erdos_ontology;
use questpro::graph::{exformat, triples};
use questpro::query::sparql;

/// Arbitrary junk built from characters the grammars care about.
fn arb_text() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("SELECT".to_string()),
        Just("WHERE".to_string()),
        Just("UNION".to_string()),
        Just("FILTER".to_string()),
        Just("OPTIONAL".to_string()),
        Just("dis".to_string()),
        Just("@type".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just(".".to_string()),
        Just("!=".to_string()),
        Just("?x".to_string()),
        Just(":c".to_string()),
        Just("paper1".to_string()),
        Just("wb".to_string()),
        Just("Alice".to_string()),
        Just("\n".to_string()),
        "[a-zA-Z0-9_?:!{}().#@ -]{0,6}",
    ];
    proptest::collection::vec(token, 0..40).prop_map(|v| v.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn triples_parser_never_panics(text in arb_text()) {
        let _ = triples::parse(&text);
    }

    #[test]
    fn sparql_parser_never_panics(text in arb_text()) {
        let _ = sparql::parse_union(&text);
        let _ = sparql::parse_simple(&text);
    }

    #[test]
    fn exformat_parser_never_panics(text in arb_text()) {
        let ont = erdos_ontology();
        let _ = exformat::parse_examples(&ont, &text);
    }

    #[test]
    fn parsers_survive_raw_unicode(text in "\\PC{0,120}") {
        let _ = triples::parse(&text);
        let _ = sparql::parse_union(&text);
        let ont = erdos_ontology();
        let _ = exformat::parse_examples(&ont, &text);
    }
}
