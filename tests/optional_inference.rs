//! End-to-end tests of the OPTIONAL extension (the paper's named
//! future-work operator): inferring a single pattern with an OPTIONAL
//! edge from explanations of *different shapes*, which the strict
//! algorithms of Sections III–IV cannot merge.

use questpro::core::GreedyConfig;
use questpro::data::{generate_movies, MoviesConfig};
use questpro::prelude::*;

/// Builds two mixed-shape explanations for "films starring A" for some
/// actor A who appears both in a genre-annotated film and in a
/// genre-less one: the first explanation includes the genre edge, the
/// second cannot. Searching instead of hard-coding the actor keeps the
/// fixture robust to generator-stream changes.
fn mixed_world() -> (Ontology, ExampleSet, questpro::graph::NodeId) {
    let ont = generate_movies(&MoviesConfig::default());
    let genre_pred = ont.pred_by_name("genre").expect("genre predicate");
    let starring = ont.pred_by_name("starring").expect("starring predicate");

    fn film_genre_edge(
        ont: &Ontology,
        f: questpro::graph::NodeId,
        genre_pred: questpro::graph::PredId,
    ) -> Option<questpro::graph::EdgeId> {
        ont.out_edges(f)
            .iter()
            .copied()
            .find(|&e| ont.edge(e).pred == genre_pred)
    }
    // Find an actor with one genre-annotated film and one genre-less one.
    let actors: Vec<_> = ont.node_ids().collect();
    for actor in actors {
        let films: Vec<_> = ont
            .in_edges(actor)
            .iter()
            .filter(|&&e| ont.edge(e).pred == starring)
            .map(|&e| ont.edge(e).src)
            .collect();
        if films.len() < 2 {
            continue;
        }
        let with = films
            .iter()
            .copied()
            .find(|&f| film_genre_edge(&ont, f, genre_pred).is_some());
        let without = films
            .iter()
            .copied()
            .find(|&f| film_genre_edge(&ont, f, genre_pred).is_none());
        let (Some(fw), Some(fo)) = (with, without) else {
            continue;
        };
        let e_star = ont.find_edge(fw, starring, actor).expect("by construction");
        let e_genre = film_genre_edge(&ont, fw, genre_pred).expect("by construction");
        let with_genre = Explanation::new(Subgraph::from_edges(&ont, [e_star, e_genre]), fw)
            .expect("valid explanation");
        let e_star2 = ont.find_edge(fo, starring, actor).expect("by construction");
        let without_genre =
            Explanation::new(Subgraph::from_edges(&ont, [e_star2]), fo).expect("valid explanation");
        let examples = ExampleSet::from_explanations(vec![with_genre, without_genre]);
        return (ont, examples, actor);
    }
    panic!("the generator always yields an actor with mixed-genre filmography");
}

#[test]
fn strict_inference_cannot_merge_mixed_shapes() {
    let (ont, examples, _) = mixed_world();
    let cfg = TopKConfig {
        k: 1,
        ..Default::default()
    };
    let (candidates, _) = infer_top_k(&ont, &examples, &cfg);
    // The best strict candidate keeps two branches (the trivial union or
    // equivalent): the shapes cannot fuse without OPTIONAL.
    assert_eq!(candidates[0].len(), 2, "{}", candidates[0]);
}

#[test]
fn optional_inference_fuses_mixed_shapes_into_one_pattern() {
    let (ont, examples, actor) = mixed_world();
    let cfg = TopKConfig {
        k: 3,
        greedy: GreedyConfig {
            allow_optional: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let (candidates, _) = infer_top_k(&ont, &examples, &cfg);
    let single = candidates
        .iter()
        .find(|c| c.len() == 1)
        .expect("optional-tolerant merging produces a one-branch candidate");
    let q = &single.branches()[0];
    assert!(q.has_optional(), "{q}");
    assert_eq!(q.required_edge_count(), 1);
    assert!(consistent_with_examples(&ont, single, &examples));
    // Semantics: the required part is "films starring the actor".
    let results = evaluate_union(&ont, single);
    let starring = ont.pred_by_name("starring").expect("pred");
    let expected: std::collections::BTreeSet<_> = ont
        .in_edges(actor)
        .iter()
        .filter(|&&e| ont.edge(e).pred == starring)
        .map(|&e| ont.edge(e).src)
        .collect();
    assert_eq!(results, expected);
}

#[test]
fn optional_provenance_includes_the_extension_when_present() {
    let (ont, examples, _) = mixed_world();
    let cfg = TopKConfig {
        k: 3,
        greedy: GreedyConfig {
            allow_optional: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let (candidates, _) = infer_top_k(&ont, &examples, &cfg);
    let single = candidates
        .iter()
        .find(|c| c.len() == 1)
        .expect("one-branch candidate exists");
    let q = &single.branches()[0];
    // The first explanation's film has a genre: its provenance under the
    // inferred query must be able to show it.
    let genreful = examples.explanations()[0].distinguished();
    let images = provenance_of(&ont, q, genreful, None);
    assert!(!images.is_empty());
    // Some provenance image of Pulp Fiction includes a genre edge: the
    // optional part extends where it can.
    let genre_pred = ont.pred_by_name("genre").expect("pred");
    assert!(
        images
            .iter()
            .any(|img| img.edges().iter().any(|&e| ont.edge(e).pred == genre_pred)),
        "expected a genre edge in some provenance image"
    );
}
